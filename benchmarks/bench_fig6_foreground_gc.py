"""Fig. 6 — foreground garbage collection under random updates at 80% fill.

Paper setup: fill 80% of device capacity with 16 B keys / 4 KiB values,
then update every stored key (uniform-random, and the sliding-window
pseudo-random pattern of the paper's footnote 2), watching device
bandwidth over time.

Paper findings this bench checks:
* both KV-SSD update scenarios collapse once over-provisioning runs out —
  updates stall behind foreground GC (bandwidth troughs);
* RocksDB on the block device shows no such collapse: compaction rewrites
  whole files sequentially and TRIMs the old ones, so device GC always
  finds fully dead blocks.
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig6_foreground_gc
from repro.kvbench.report import format_table, sparkline


def test_fig6_foreground_gc(benchmark):
    result = run_once(
        benchmark, lambda: fig6_foreground_gc(blocks_per_plane=4, runner=figure_runner())
    )

    print(banner("Fig. 6 — bandwidth during the update phase"))
    rows = []
    for scenario in result.series:
        series = result.series[scenario]
        rows.append([
            scenario,
            result.trough_ratio(scenario),
            result.foreground_gc_runs.get(scenario, 0),
            sparkline(series[:48]),
        ])
    print(format_table(
        ["scenario", "trough/head", "foreground GCs", "bandwidth (time ->)"],
        rows,
    ))
    print(f"(fill {result.fill_fraction:.0%}, {result.n_updates:,} updates "
          f"of {result.value_bytes} B values; paper: 80% of 3.84 TB)")

    # Both KV scenarios collapse into foreground GC...
    assert result.foreground_gc_runs["kv-uniform"] > 0
    assert result.foreground_gc_runs["kv-window"] > 0
    assert result.trough_ratio("kv-uniform") < 0.5
    assert result.trough_ratio("kv-window") < 0.5
    # ...while RocksDB on block triggers none.
    assert result.foreground_gc_runs["rocksdb-uniform"] == 0
