"""Engine throughput benchmark: figure-cell points per second.

Measures how fast the simulation substrate executes one *point* of the
Fig. 4 value-size sweep — a KV cell and a block cell, each comprising
its prefill plus the measured update/read workloads at fixed seeds.
This is the unit of work every figure sweep is made of, so points/sec is
the number that decides whether regenerating the paper's figures takes
minutes or hours.  Events/sec (engine events processed per wall second)
is reported alongside as the substrate-level metric.

Unlike the committed fig4 cells (which cap their populations), this
cell's prefill is sized the way the paper's setups are — 55% of the KV
device's pages and 70% of the block device's capacity — so the fixed
cell weights prefill and measured phases the way real experiment points
do.

The cell is fixed — same sizes, seeds, geometry, and operation counts on
every run — so successive entries in ``BENCH_engine.json`` form a
comparable trajectory.  CI's perf-smoke job runs with ``--gate`` and
fails when throughput regresses more than the threshold against the last
committed entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_points_per_sec.py
        [--reps N] [--record LABEL] [--gate] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
from repro.core.figures import _drain
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.units import MIB

#: Fixed cell parameters (fig4-style: random updates then random reads
#: over a prefilled population, both personalities, same geometry).
VALUE_BYTES = 4096
QUEUE_DEPTH = 8
N_OPS = 800
BLOCKS_PER_PLANE = 64

#: Default trajectory file, at the repository root.
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: perf-smoke failure threshold: measured points/sec below this fraction
#: of the last committed entry fails the gate.
GATE_FRACTION = 0.8


def _measured_phases(env, adapter, population, scheme=None) -> None:
    """The two fixed-seed measured workloads every fig4 cell runs."""
    for op_kind, seed in (("update", 31), ("read", 37)):
        kwargs = dict(
            n_ops=N_OPS,
            op=op_kind,
            pattern=Pattern.UNIFORM,
            population=population,
            value_bytes=VALUE_BYTES,
            seed=seed,
        )
        if scheme is not None:
            kwargs["key_scheme"] = scheme
        spec = WorkloadSpec(**kwargs)
        execute_workload(
            env, adapter, generate_operations(spec),
            queue_depth=QUEUE_DEPTH, name=f"bench.{op_kind}",
        )


def kv_cell() -> int:
    """One KV cell; returns engine events processed."""
    rig = build_kv_rig(
        lab_geometry(BLOCKS_PER_PLANE),
        config=KVSSDConfig(index_dram_bytes=64 * MIB),
    )
    scheme = KeyScheme(prefix=b"fill", digits=12)
    layout = rig.device.layout_for(scheme.key_bytes, VALUE_BYTES)
    per_page = rig.device.usable_page // layout.footprint_bytes
    geometry = rig.device.array.geometry
    data_blocks = geometry.total_blocks - len(rig.device._index_region)
    pages_available = data_blocks * geometry.pages_per_block
    population = max(N_OPS, int(pages_available * 0.55) * per_page)
    rig.device.fast_fill(population, VALUE_BYTES, scheme)
    _measured_phases(rig.env, rig.adapter, population, scheme)
    _drain(rig)
    return rig.env.processed_events


def block_cell() -> int:
    """One block cell; returns engine events processed."""
    rig = build_block_rig(lab_geometry(BLOCKS_PER_PLANE))
    adapter = rig.adapter(VALUE_BYTES)
    population = max(
        N_OPS, int(rig.device.user_capacity_bytes * 0.7 // adapter.io_bytes)
    )
    fill_units = max(1, population * adapter.io_bytes // rig.device.map_unit)
    rig.device.prime_sequential_fill(min(fill_units, rig.device.n_units))
    _measured_phases(rig.env, adapter, population)
    _drain(rig)
    return rig.env.processed_events


def run_benchmark(reps: int) -> dict:
    """Run the fixed cell ``reps`` times; report the best repetition."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        kv_events = kv_cell()
        block_events = block_cell()
        wall_s = time.perf_counter() - started
        if best is None or wall_s < best["wall_s"]:
            best = {"wall_s": wall_s, "events": kv_events + block_events}
    assert best is not None
    return {
        "points_per_sec": round(2.0 / best["wall_s"], 3),
        "events_per_sec": round(best["events"] / best["wall_s"], 1),
        "wall_s_per_point_pair": round(best["wall_s"], 4),
        "events_per_point_pair": best["events"],
        "reps": reps,
    }


def load_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="ascii"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append an entry labelled LABEL to the trajectory file",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="fail (exit 1) if points/sec < %.0f%% of the last entry"
        % (GATE_FRACTION * 100),
    )
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    result = run_benchmark(args.reps)
    print(
        f"cell: value={VALUE_BYTES}B qd={QUEUE_DEPTH} n_ops={N_OPS} "
        f"blocks_per_plane={BLOCKS_PER_PLANE}"
    )
    print(
        f"best of {args.reps}: {result['points_per_sec']:.3f} points/s, "
        f"{result['events_per_sec']:,.0f} events/s "
        f"({result['wall_s_per_point_pair']:.3f}s per kv+block pair)"
    )

    trajectory = load_trajectory(args.json)

    if args.gate and trajectory:
        reference = trajectory[-1]["points_per_sec"]
        floor = reference * GATE_FRACTION
        status = "PASS" if result["points_per_sec"] >= floor else "FAIL"
        print(
            f"gate: {result['points_per_sec']:.3f} points/s vs committed "
            f"{reference:.3f} (floor {floor:.3f}) -> {status}"
        )
        if status == "FAIL":
            return 1

    if args.record:
        entry = {
            "label": args.record,
            "date": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "cell": {
                "value_bytes": VALUE_BYTES,
                "queue_depth": QUEUE_DEPTH,
                "n_ops": N_OPS,
                "blocks_per_plane": BLOCKS_PER_PLANE,
            },
        }
        entry.update(result)
        trajectory.append(entry)
        args.json.write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="ascii"
        )
        print(f"recorded {args.record!r} in {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
