"""Extension — YCSB core workloads A–F (the paper's future work).

The paper's conclusion: "In future, we plan to explore KV-SSD performance
behavior under real-world workloads and benchmarks, such as YCSB."  This
bench delivers that exploration on the simulated testbed, comparing the
KV-SSD against the RocksDB stand-in across all six core workloads.

The measurement itself lives in :mod:`repro.kvbench.ycsb_sweep` as
sweep-engine cells — each (workload, system) pair is an independent
point, so ``REPRO_PARALLEL=N`` fans the grid over worker processes and
re-runs hit the on-disk result cache.

Expected shape (following the paper's Fig. 2 findings plus the known
weakness of hash indexes):

* update-heavy point workloads (A, F): KV-SSD competitive;
* read-heavy point workloads (B, C, D): RocksDB ahead (Fig. 2c);
* scans (E): RocksDB far ahead — the KV-SSD has only 4-byte-prefix
  iterator buckets, no ordered iteration, so range scans devolve into
  point reads.
"""

from conftest import banner, figure_runner, run_once

from repro.kvbench.report import format_table
from repro.kvbench.ycsb_sweep import run_ycsb_sweep

POPULATION = 3000
N_OPS = 600


def _run_all():
    table = run_ycsb_sweep(
        n_ops=N_OPS,
        population=POPULATION,
        runner=figure_runner(),
    )
    return {
        workload: (cells["kv"].mean_us, cells["lsm"].mean_us)
        for workload, cells in table.items()
    }


def test_ycsb_workloads(benchmark):
    results = run_once(benchmark, _run_all)

    print(banner("YCSB A-F — mean latency (us), KV-SSD vs RocksDB"))
    rows = [
        [workload, kv, lsm, kv / lsm]
        for workload, (kv, lsm) in results.items()
    ]
    print(format_table(["workload", "KV-SSD", "RocksDB", "KV/RocksDB"], rows))
    print("(paper future work; E = scans, the hash index's blind spot)")

    ratio = {w: kv / lsm for w, (kv, lsm) in results.items()}
    # Scans are the decisive LSM win.
    assert ratio["E"] > 5.0
    assert ratio["E"] > 2 * max(ratio[w] for w in "ABCDF")
    # Read-heavy point workloads favor RocksDB (Fig. 2c's finding).
    assert ratio["C"] > 1.0
    # The update-heavy mix is the KV-SSD's best point workload.
    assert ratio["A"] < ratio["C"]
