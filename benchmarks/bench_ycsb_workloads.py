"""Extension — YCSB core workloads A–F (the paper's future work).

The paper's conclusion: "In future, we plan to explore KV-SSD performance
behavior under real-world workloads and benchmarks, such as YCSB."  This
bench delivers that exploration on the simulated testbed, comparing the
KV-SSD against the RocksDB stand-in across all six core workloads.

Expected shape (following the paper's Fig. 2 findings plus the known
weakness of hash indexes):

* update-heavy point workloads (A, F): KV-SSD competitive;
* read-heavy point workloads (B, C, D): RocksDB ahead (Fig. 2c);
* scans (E): RocksDB far ahead — the KV-SSD has only 4-byte-prefix
  iterator buckets, no ordered iteration, so range scans devolve into
  point reads.
"""

from conftest import banner, run_once

from repro.core.experiment import build_kv_rig, build_lsm_rig, lab_geometry
from repro.kvbench.report import format_table
from repro.kvbench.runner import execute_workload
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec, generate_ycsb
from repro.kvftl.population import KeyScheme

POPULATION = 3000
N_OPS = 600
SCHEME = KeyScheme(prefix=b"user", digits=12)


def _run_all():
    results = {}
    for workload in ("A", "B", "C", "D", "E", "F"):
        spec = YCSBSpec(
            workload=workload,
            n_ops=N_OPS,
            population=POPULATION,
            key_scheme=SCHEME,
            value_bytes=1000,
            scan_length=20,
        )
        kv_rig = build_kv_rig(lab_geometry(8))
        kv_rig.device.fast_fill(POPULATION, 1000, SCHEME)
        kv_run = execute_workload(
            kv_rig.env,
            YCSBDriver(kv_rig.adapter, spec),
            generate_ycsb(spec),
            queue_depth=8,
            name=f"ycsb{workload}.kv",
        )
        lsm_rig = build_lsm_rig(lab_geometry(8))
        lsm_rig.store.prime_fill(
            {SCHEME.key_for(i): 1000 for i in range(POPULATION)}, level=3
        )
        lsm_run = execute_workload(
            lsm_rig.env,
            YCSBDriver(lsm_rig.adapter, spec),
            generate_ycsb(spec),
            queue_depth=8,
            name=f"ycsb{workload}.lsm",
        )
        results[workload] = (kv_run.latency.mean(), lsm_run.latency.mean())
    return results


def test_ycsb_workloads(benchmark):
    results = run_once(benchmark, _run_all)

    print(banner("YCSB A-F — mean latency (us), KV-SSD vs RocksDB"))
    rows = [
        [workload, kv, lsm, kv / lsm]
        for workload, (kv, lsm) in results.items()
    ]
    print(format_table(["workload", "KV-SSD", "RocksDB", "KV/RocksDB"], rows))
    print("(paper future work; E = scans, the hash index's blind spot)")

    ratio = {w: kv / lsm for w, (kv, lsm) in results.items()}
    # Scans are the decisive LSM win.
    assert ratio["E"] > 5.0
    assert ratio["E"] > 2 * max(ratio[w] for w in "ABCDF")
    # Read-heavy point workloads favor RocksDB (Fig. 2c's finding).
    assert ratio["C"] > 1.0
    # The update-heavy mix is the KV-SSD's best point workload.
    assert ratio["A"] < ratio["C"]
