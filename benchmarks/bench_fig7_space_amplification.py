"""Fig. 7 — space amplification vs value size, across systems.

Paper setup: fill each system with pairs of one value size; space
amplification = device space consumed / application bytes written.

Paper findings this bench checks:
* KV-SSD: up to ~17-20x for 50 B values (the 1 KiB minimum allocation),
  dropping to ~1 for 1-4 KiB values (tight packing beyond 1 KiB);
* Aerospike on raw block: below 2x even at 50 B (16 B record rounding);
* RocksDB: ~1.11x steady state (leveled obsolescence bound);
* the KVP limit this padding implies: ~3.1 billion pairs on 3.84 TB.
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig7_space_amplification
from repro.kvbench.report import format_table


def test_fig7_space_amplification(benchmark):
    result = run_once(benchmark, lambda: fig7_space_amplification(runner=figure_runner()))

    print(banner("Fig. 7 — space amplification (device bytes / app bytes)"))
    rows = []
    for size in result.value_sizes:
        rows.append([
            f"{size}B",
            result.sa["kvssd"][size],
            result.kv_analytic[size],
            result.sa["aerospike"][size],
            result.sa["rocksdb"][size],
        ])
    print(format_table(
        ["value", "KV-SSD", "KV analytic", "Aerospike", "RocksDB"], rows
    ))
    print("max KVPs extrapolated to 3.84 TB: "
          f"{result.max_kvps_full_scale / 1e9:.2f} billion "
          "(paper: ~3.1 billion)")

    # Paper-shape assertions.
    assert 14.0 < result.sa["kvssd"][50] < 21.0        # "up to ~17-20x"
    assert result.sa["kvssd"][1024] < 1.1              # "close to 1"
    assert result.sa["kvssd"][4096] < 1.05
    assert result.sa["aerospike"][50] < 2.0            # "less than 2"
    assert abs(result.sa["rocksdb"][50] - 1.111) < 0.01
    assert 2.8e9 < result.max_kvps_full_scale < 3.4e9  # "~3.1 billion"
    # Measured device accounting matches the analytic blob layout.
    for size in result.value_sizes:
        measured = result.sa["kvssd"][size]
        analytic = result.kv_analytic[size]
        assert abs(measured - analytic) / analytic < 0.02
