"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one figure (or the headline scalars) of the paper
and prints the same rows/series the figure shows, annotated with the
paper-reported values.  ``pytest benchmarks/ --benchmark-only`` therefore
produces the complete reproduction record (EXPERIMENTS.md mirrors it).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exec.runner import SweepRunner


def figure_runner() -> Optional[SweepRunner]:
    """Sweep runner configured from the environment, or ``None``.

    ``REPRO_PARALLEL=N`` fans each figure's independent points over
    ``N`` worker processes, ``REPRO_NO_CACHE=1`` disables the result
    cache, and ``REPRO_CACHE_DIR=PATH`` relocates it.  With none of
    them set the benches run exactly as before (serial, in-process,
    uncached) — results are byte-identical in every configuration, so
    the knob only changes host wall-clock time.
    """
    workers = int(os.environ.get("REPRO_PARALLEL", "0") or "0")
    no_cache = os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if workers < 1 and not no_cache and cache_dir is None:
        return None
    return SweepRunner(
        workers=max(1, workers),
        cache=not no_cache,
        cache_dir=cache_dir,
    )


def banner(title: str) -> str:
    """Section header used by every bench's printed report."""
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiments are deterministic simulations — repeated rounds would
    measure the host machine, not the model — so one round is the policy.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
