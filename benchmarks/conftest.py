"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one figure (or the headline scalars) of the paper
and prints the same rows/series the figure shows, annotated with the
paper-reported values.  ``pytest benchmarks/ --benchmark-only`` therefore
produces the complete reproduction record (EXPERIMENTS.md mirrors it).
"""

from __future__ import annotations


def banner(title: str) -> str:
    """Section header used by every bench's printed report."""
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiments are deterministic simulations — repeated rounds would
    measure the host machine, not the model — so one round is the policy.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
