"""Fig. 4 — KV/block latency ratio vs value size and concurrency.

Paper setup: 1.53 M direct-access I/Os per value size over a prefilled
device, at queue depths 1 and 64; the plotted metric is mean KV-SSD
latency over mean block-SSD latency (<1 favors KV-SSD).

Paper findings this bench checks:
* QD1: key handling makes the KV-SSD slower (up to 5.4x for large,
  split values; ~2.5x writes / ~1.7x reads at 4 KiB);
* QD64: the KV-SSD's simple packing and full-width striping win for
  values below ~32 KiB (down to 0.86x writes / 0.37x reads);
* at >=32 KiB values, splitting plus offset management flips the ratio
  back above 1 even at QD64 — the crossover the paper highlights.
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig4_value_size_concurrency
from repro.kvbench.report import format_table
from repro.units import KIB

SIZES = (512, 4 * KIB, 16 * KIB, 32 * KIB, 64 * KIB)


def test_fig4_value_size_concurrency(benchmark):
    result = run_once(
        benchmark,
        lambda: fig4_value_size_concurrency(
            value_sizes=SIZES, queue_depths=(1, 64), n_ops=1200,
            runner=figure_runner()
        ),
    )

    print(banner("Fig. 4 — KV/block mean-latency ratio (<1 favors KV-SSD)"))
    rows = []
    for size in SIZES:
        rows.append([
            f"{size // KIB or 0.5}KiB" if size >= KIB else f"{size}B",
            result.ratio["write"][1][size],
            result.ratio["read"][1][size],
            result.ratio["write"][64][size],
            result.ratio["read"][64][size],
        ])
    print(format_table(
        ["value", "write QD1", "read QD1", "write QD64", "read QD64"], rows
    ))
    print("paper: QD1 ratios > 1 (up to 5.4x); QD64 < 1 below ~32 KiB "
          "(0.86x writes / 0.37x reads), > 1 at >=32 KiB")

    # QD1: the KV-SSD pays for key handling at 4 KiB (the 2.5x/1.7x zone).
    assert 1.5 < result.ratio["write"][1][4 * KIB] < 4.0
    assert 1.3 < result.ratio["read"][1][4 * KIB] < 2.5
    # QD64: boon below 32 KiB...
    assert result.ratio["write"][64][4 * KIB] < 1.0
    assert result.ratio["read"][64][4 * KIB] < 1.0
    # ...bane at and beyond 32 KiB.
    assert result.ratio["write"][64][32 * KIB] > 1.0
    assert result.ratio["read"][64][32 * KIB] > 1.0
    # The splitting penalty peaks the QD1 write ratio at large values.
    assert result.ratio["write"][1][32 * KIB] > 2.5
