"""Fig. 3 — I/O latency vs index occupancy.

Paper setup: 1.53 M (low) vs 3 B (high) pairs of 16 B keys / 512 B values
on a 3.84 TB KV-SSD and the same byte volumes of 512 B blocks on its
block-firmware twin; then random reads and writes are measured.

Paper findings this bench checks:
* KV-SSD read latency degrades up to 2x and write latency up to 16.4x as
  the global index outgrows device DRAM;
* the block device stays near-constant (its page map always fits DRAM).

Scaled setup: the same *fractions of the device's KVP limit* on a ~2 GiB
geometry (the knee is set by the DRAM:index ratio, which is preserved).
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig3_index_occupancy
from repro.kvbench.report import format_table


def test_fig3_index_occupancy(benchmark):
    result = run_once(
        benchmark,
        lambda: fig3_index_occupancy(
            measured_ops=1500, blocks_per_plane=16, runner=figure_runner()
        ),
    )

    print(banner("Fig. 3 — latency (us) at low vs high index occupancy"))
    rows = []
    for device in ("kv", "block"):
        for occupancy in ("low", "high"):
            cell = result.latency_us[device][occupancy]
            rows.append([device, occupancy, cell["read"], cell["write"]])
    print(format_table(["device", "occupancy", "read us", "write us"], rows))

    print(banner("Fig. 3 — degradation high/low (paper vs measured)"))
    print(format_table(
        ["metric", "paper", "measured"],
        [
            ["KV write degradation", "up to 16.4x",
             result.degradation("kv", "write")],
            ["KV read degradation", "up to 2x",
             result.degradation("kv", "read")],
            ["block write degradation", "~1x (near-constant)",
             result.degradation("block", "write")],
            ["block read degradation", "~1x (near-constant)",
             result.degradation("block", "read")],
        ],
    ))
    print(f"(scaled fills: low={result.low_kvps:,} high={result.high_kvps:,} "
          f"pairs of {result.value_bytes} B values; paper used 1.53M / 3B)")

    assert result.degradation("kv", "write") > 4.0
    assert 1.5 < result.degradation("kv", "read") < 4.0
    assert result.degradation("block", "write") < 1.5
    assert result.degradation("block", "read") < 1.5
