"""Fig. 5 — write bandwidth vs value size (the packing zig-zag).

Paper setup: sustained stores sweeping the value size across the flash
page boundary; device bandwidth is sampled per size.

Paper findings this bench checks:
* the block device's bandwidth is smooth in value size;
* the KV-SSD's bandwidth rises toward ~24 KiB (a page's usable blob
  area), then drops sharply at 25 KiB and again at 49 KiB, where blobs
  start needing one more fragment plus offset management — the paper's
  evidence for 32 KiB pages holding up to 24 KiB of value.
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig5_packing_bandwidth
from repro.kvbench.report import format_table
from repro.units import KIB


def test_fig5_packing_bandwidth(benchmark):
    result = run_once(benchmark, lambda: fig5_packing_bandwidth(n_ops=800, runner=figure_runner()))

    print(banner("Fig. 5 — write bandwidth vs value size (MiB/s)"))
    rows = [
        [f"{size / KIB:g}KiB", result.kv_mib_s[size], result.block_mib_s[size],
         result.kv_fragments[size]]
        for size in result.value_sizes
    ]
    print(format_table(["value", "KV-SSD", "block-SSD", "KV fragments"], rows))
    print("paper: KV-SSD dips at 25 KiB and 49 KiB (page-boundary "
          "splitting); block-SSD smooth")

    kv = result.kv_mib_s
    block = result.block_mib_s
    # The KV zig-zag: bandwidth collapses right past the 24 KiB boundary...
    assert kv[25 * KIB] < 0.6 * kv[24 * KIB]
    # ...partially recovers toward 48 KiB...
    assert kv[48 * KIB] > 1.2 * kv[25 * KIB]
    # ...and dips again at 49 KiB.
    assert kv[49 * KIB] < 0.8 * kv[48 * KIB]
    # The block device is smooth: adjacent sizes within 15%.
    sizes = result.value_sizes
    for left, right in zip(sizes, sizes[1:]):
        assert abs(block[right] - block[left]) / block[left] < 0.15
    # Fragment counts explain the dips.
    assert result.kv_fragments[24 * KIB] == 1
    assert result.kv_fragments[25 * KIB] == 3   # 2 data + 1 offset page
    assert result.kv_fragments[49 * KIB] == 5   # 3 data + 2 offset pages
