"""Tail-latency inflation under statistical fault injection.

Sweeps the fault-rate knob over the same mixed workload on both firmware
personalities (KV-SSD and block-SSD) and writes ``BENCH_fault_tail.json``
with latency percentiles per (personality, rate) plus each point's
inflation over its own rate-0 baseline.  The interesting number is the
p99/p999 inflation: read-retry recovery is invisible at the median but
stretches the tail, the classic reliability-vs-latency trade.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tail.py [--n-ops N]
        [--rates R,R,...] [--seed S] [--out PATH] [--parallel N]
        [--no-cache]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.exec.runner import SweepRunner
from repro.faults.run import DEFAULT_RATES, run_fault_sweep


def _inflation(value: float, baseline: float) -> float:
    return round(value / baseline, 3) if baseline > 0 else 0.0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-ops", type=int, default=1500)
    parser.add_argument(
        "--rates", default=",".join(f"{r:g}" for r in DEFAULT_RATES),
        help="comma-separated statistical fault rates (include 0 for "
             "the baseline)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_fault_tail.json")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the sweep points "
                             "(results are byte-identical at any N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point; skip .repro-cache/")
    args = parser.parse_args(argv)

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if 0.0 not in rates:
        rates.insert(0, 0.0)
    runner = SweepRunner(workers=args.parallel, cache=not args.no_cache)
    points = run_fault_sweep(rates=rates, n_ops=args.n_ops, seed=args.seed,
                             runner=runner)
    if runner.last_report is not None:
        print(runner.last_report.format(), file=sys.stderr)

    baselines = {
        p.personality: p.latency_summary()
        for p in points if p.rate == 0.0
    }
    results = []
    for point in points:
        latency = point.latency_summary()
        base = baselines[point.personality]
        stats = point.stats
        entry = {
            "personality": point.personality,
            "rate": point.rate,
            "completed_ops": point.run.completed_ops,
            "failed_ops": point.run.failed_ops,
            "latency_us": {k: round(v, 2) for k, v in latency.items()},
            "inflation": {
                k: _inflation(latency[k], base[k])
                for k in ("mean", "p50", "p99", "p999")
            },
            "recovery": {
                "read_retries": stats.read_retries,
                "corrected_reads": stats.corrected_reads,
                "uncorrectable_reads": stats.uncorrectable_reads,
                "program_fails": stats.program_fails,
                "erase_fails": stats.erase_fails,
                "reallocations": stats.reallocations,
                "retired_blocks": stats.retired_blocks,
                "recovery_us": round(stats.recovery_us, 2),
            },
            "injected": point.injected,
            "read_only": point.read_only,
        }
        results.append(entry)
        print(f"{point.personality:>10} rate {point.rate:<6g} "
              f"p99 {latency['p99']:9.1f}us "
              f"({entry['inflation']['p99']:.2f}x) "
              f"retries {stats.read_retries:4d} "
              f"uncorr {stats.uncorrectable_reads:3d} "
              f"retired {stats.retired_blocks:2d}")

    document = {"n_ops": args.n_ops, "seed": args.seed, "rates": rates,
                "results": results}
    with open(args.out, "w", encoding="ascii") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
