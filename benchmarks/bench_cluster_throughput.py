"""Cluster throughput benchmark: shard cells per second.

Measures how fast the host executes one fixed cluster run — 4 shards,
R=2, two tenants (YCSB A and B) — end to end: routing-plan derivation,
per-shard priming, the routed segments, and result assembly.  Shards/sec
is the per-shard unit cost that decides how the cluster figures scale on
a laptop; cluster device-ops/sec is reported alongside.

The cell is fixed — same spec, seeds, and geometry on every run — so
successive entries in ``BENCH_cluster.json`` form a comparable
trajectory.  CI's perf-smoke job runs with ``--gate`` and fails when
throughput regresses more than the threshold against the last committed
entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_throughput.py
        [--reps N] [--record LABEL] [--gate] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.cluster import ClusterSpec, TenantSpec, run_cluster

#: Fixed cell parameters (the cluster figures' acceptance shape, minus
#: the degradation so the measurement is pure routed throughput).
SHARDS = 4
REPLICATION = 2
PARTITIONS = 16
N_OPS = 300
POPULATION = 600

#: Default trajectory file, at the repository root.
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: perf-smoke failure threshold: measured shards/sec below this fraction
#: of the last committed entry fails the gate.
GATE_FRACTION = 0.8


def cluster_cell() -> int:
    """One fixed serial cluster run; returns completed device ops."""
    spec = ClusterSpec(
        shards=SHARDS,
        replication=REPLICATION,
        partitions=PARTITIONS,
        tenants=(
            TenantSpec(name="ta", workload="A", n_ops=N_OPS,
                       population=POPULATION, seed=11),
            TenantSpec(name="tb", workload="B", n_ops=N_OPS,
                       population=POPULATION, seed=12),
        ),
        seed=21,
        verify=False,
    )
    result = run_cluster(spec)
    assert result.zero_lost_writes
    return result.completed_ops


def run_benchmark(reps: int) -> dict:
    """Run the fixed cell ``reps`` times; report the best repetition."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        completed = cluster_cell()
        wall_s = time.perf_counter() - started
        if best is None or wall_s < best["wall_s"]:
            best = {"wall_s": wall_s, "completed": completed}
    assert best is not None
    return {
        "shards_per_sec": round(SHARDS / best["wall_s"], 3),
        "cluster_ops_per_sec": round(best["completed"] / best["wall_s"], 1),
        "wall_s_per_cluster": round(best["wall_s"], 4),
        "completed_ops": best["completed"],
        "reps": reps,
    }


def load_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="ascii"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append an entry labelled LABEL to the trajectory file",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="fail (exit 1) if shards/sec < %.0f%% of the last entry"
        % (GATE_FRACTION * 100),
    )
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    result = run_benchmark(args.reps)
    print(
        f"cell: shards={SHARDS} R={REPLICATION} partitions={PARTITIONS} "
        f"n_ops=2x{N_OPS} population=2x{POPULATION}"
    )
    print(
        f"best of {args.reps}: {result['shards_per_sec']:.3f} shards/s, "
        f"{result['cluster_ops_per_sec']:,.0f} cluster ops/s "
        f"({result['wall_s_per_cluster']:.3f}s per cluster)"
    )

    trajectory = load_trajectory(args.json)

    if args.gate and trajectory:
        reference = trajectory[-1]["shards_per_sec"]
        floor = reference * GATE_FRACTION
        status = "PASS" if result["shards_per_sec"] >= floor else "FAIL"
        print(
            f"gate: {result['shards_per_sec']:.3f} shards/s vs committed "
            f"{reference:.3f} (floor {floor:.3f}) -> {status}"
        )
        if status == "FAIL":
            return 1

    if args.record:
        entry = {
            "label": args.record,
            "date": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "cell": {
                "shards": SHARDS,
                "replication": REPLICATION,
                "partitions": PARTITIONS,
                "n_ops": N_OPS,
                "population": POPULATION,
            },
        }
        entry.update(result)
        trajectory.append(entry)
        args.json.write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="ascii"
        )
        print(f"recorded {args.record!r} in {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
