"""Fig. 2 — end-to-end I/O latency: KV-SSD vs RocksDB vs Aerospike.

Paper setup: 10 M asynchronous operations of 16 B keys / 4 KiB values per
(system, pattern, phase) cell on a 3.84 TB device.  Scaled here to 2,500
operations per cell on a ~2 GiB device at queue depth 8.

Paper findings this bench checks:
* sequential access buys the KV-SSD nothing (hash-ordered indexing);
* KV-SSD beats RocksDB for inserts and updates, loses on reads;
* KV-SSD beats Aerospike only for updates (roughly parity on inserts);
* host CPU per op: KV stack far below RocksDB (the ~13x of RQ1).
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig2_end_to_end
from repro.kvbench.report import format_table

N_OPS = 2500


def test_fig2_end_to_end(benchmark):
    result = run_once(benchmark, lambda: fig2_end_to_end(n_ops=N_OPS, runner=figure_runner()))

    print(banner("Fig. 2 — end-to-end latency (us), async QD8, 16B/4KiB"))
    rows = []
    for system in result.latency_us:
        for pattern, phases in result.latency_us[system].items():
            rows.append(
                [system, pattern, phases["insert"], phases["update"],
                 phases["read"]]
            )
    print(format_table(["system", "pattern", "insert", "update", "read"], rows))

    print(banner("Fig. 2 — derived comparisons (paper vs measured)"))
    print(format_table(
        ["comparison", "paper", "measured"],
        [
            ["KV seq/rand insert latency", "~1.0 (no seq benefit)",
             result.latency_us["kvssd"]["seq"]["insert"]
             / result.latency_us["kvssd"]["rand"]["insert"]],
            ["RocksDB/KV insert (rand)", "KV wins, up to 23.08x",
             result.ratio("rocksdb", "kvssd", "rand", "insert")],
            ["RocksDB/KV update (rand)", "KV wins",
             result.ratio("rocksdb", "kvssd", "rand", "update")],
            ["KV/RocksDB read (rand)", "KV suffers (>1)",
             result.ratio("kvssd", "rocksdb", "rand", "read")],
            ["Aerospike/KV update (rand)", "KV wins, up to 3.64x",
             result.ratio("aerospike", "kvssd", "rand", "update")],
            ["KV/Aerospike insert (rand)", ">=1 (AS at least matches)",
             result.ratio("kvssd", "aerospike", "rand", "insert")],
            ["RocksDB/KV host CPU per op", "~13x",
             result.cpu_us_per_op["rocksdb"] / result.cpu_us_per_op["kvssd"]],
        ],
    ))

    # Shape assertions: who wins, per the paper.
    assert result.ratio("rocksdb", "kvssd", "rand", "insert") > 2.0
    assert result.ratio("rocksdb", "kvssd", "rand", "update") > 2.0
    assert result.ratio("kvssd", "rocksdb", "rand", "read") > 1.2
    assert result.ratio("aerospike", "kvssd", "rand", "update") > 1.2
    seq_over_rand = (
        result.latency_us["kvssd"]["seq"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    assert 0.8 < seq_over_rand < 1.25
