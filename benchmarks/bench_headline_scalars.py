"""Headline scalars — the paper's abstract/introduction numbers.

One bench collecting every summary number the paper leads with, measured
on the simulated stacks (Sec. I / Sec. IV).  Shape, not absolute
microseconds, is the reproduction target; the table prints paper-reported
vs measured side by side.
"""

from conftest import banner, run_once

from repro.core.headline import headline_scalars
from repro.kvbench.report import format_table


def test_headline_scalars(benchmark):
    result = run_once(benchmark, headline_scalars)

    print(banner("Headline scalars (paper vs measured)"))
    print(format_table(["metric", "paper", "measured"], result.rows()))

    # Direction-of-effect assertions for every headline claim.
    assert result.cpu_reduction_vs_rocksdb > 5.0
    assert result.cpu_reduction_vs_aerospike < result.cpu_reduction_vs_rocksdb
    assert result.bw_ratio_4k_rand_read < 1.0
    assert result.bw_ratio_4k_rand_write < 1.0
    assert 1.3 < result.latency_ratio_read_qd1 < 2.5
    assert 1.8 < result.latency_ratio_write_qd1 < 4.0
    assert result.latency_ratio_read_high_occupancy > (
        result.latency_ratio_read_qd1
    )
    assert result.e2e_insert_gain_vs_rocksdb > 2.0
    assert result.e2e_update_gain_vs_aerospike > 1.2
    assert 2.8e9 < result.max_kvps_full_scale < 3.4e9
