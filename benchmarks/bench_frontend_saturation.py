"""Frontend saturation benchmark: offered-load points per second.

Measures how fast the host executes one fixed serial frontend load sweep
— the calibrated two-tenant scenario at four offered loads bracketing
the saturation knee — end to end: per-tenant priming, the open-loop
arrival/batch/dispatch machinery, and per-class summarization.
Points/sec is the unit cost that decides how the frontend figure scales
on a laptop; the sim-domain knee location is reported alongside as a
deterministic sanity anchor (it must never move between runs of the
same code).

The cell is fixed — same spec, seeds, and geometry on every run — so
successive entries in ``BENCH_frontend.json`` form a comparable
trajectory.  CI's perf-smoke job runs with ``--gate`` and fails when
throughput regresses more than the threshold against the last committed
entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_frontend_saturation.py
        [--reps N] [--record LABEL] [--gate] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.frontend.run import frontend_load_sweep

#: Fixed cell parameters: four loads bracketing the knee, at the default
#: request count the figure uses.
LOADS_KOPS = (32.0, 64.0, 128.0, 256.0)
N_REQUESTS = 800
BLOCKS_PER_PLANE = 8

#: Default trajectory file, at the repository root.
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"

#: perf-smoke failure threshold: measured points/sec below this fraction
#: of the last committed entry fails the gate.
GATE_FRACTION = 0.8


def frontend_cell() -> float:
    """One fixed serial frontend sweep; returns the knee load (kops)."""
    result = frontend_load_sweep(
        loads_kops=LOADS_KOPS,
        n_requests=N_REQUESTS,
        blocks_per_plane=BLOCKS_PER_PLANE,
    )
    knee = result.knee_kops()
    assert knee is not None, "the fixed cell must saturate"
    return knee


def run_benchmark(reps: int) -> dict:
    """Run the fixed cell ``reps`` times; report the best repetition."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        knee = frontend_cell()
        wall_s = time.perf_counter() - started
        if best is None or wall_s < best["wall_s"]:
            best = {"wall_s": wall_s, "knee": knee}
    assert best is not None
    return {
        "points_per_sec": round(len(LOADS_KOPS) / best["wall_s"], 3),
        "wall_s_per_sweep": round(best["wall_s"], 4),
        "knee_kops": best["knee"],
        "reps": reps,
    }


def load_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="ascii"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append an entry labelled LABEL to the trajectory file",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="fail (exit 1) if points/sec < %.0f%% of the last entry"
        % (GATE_FRACTION * 100),
    )
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    result = run_benchmark(args.reps)
    print(
        f"cell: loads={','.join(f'{k:g}' for k in LOADS_KOPS)}kops "
        f"n_requests={N_REQUESTS} blocks_per_plane={BLOCKS_PER_PLANE}"
    )
    print(
        f"best of {args.reps}: {result['points_per_sec']:.3f} points/s "
        f"({result['wall_s_per_sweep']:.3f}s per sweep), "
        f"knee at {result['knee_kops']:g} kops"
    )

    trajectory = load_trajectory(args.json)

    if args.gate and trajectory:
        reference = trajectory[-1]["points_per_sec"]
        floor = reference * GATE_FRACTION
        status = "PASS" if result["points_per_sec"] >= floor else "FAIL"
        print(
            f"gate: {result['points_per_sec']:.3f} points/s vs committed "
            f"{reference:.3f} (floor {floor:.3f}) -> {status}"
        )
        if status == "FAIL":
            return 1
        committed_knee = trajectory[-1]["knee_kops"]
        if result["knee_kops"] != committed_knee:
            print(
                f"gate: knee moved {committed_knee:g} -> "
                f"{result['knee_kops']:g} kops -> FAIL (sim-domain drift)"
            )
            return 1

    if args.record:
        entry = {
            "label": args.record,
            "date": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "cell": {
                "loads_kops": list(LOADS_KOPS),
                "n_requests": N_REQUESTS,
                "blocks_per_plane": BLOCKS_PER_PLANE,
            },
        }
        entry.update(result)
        trajectory.append(entry)
        args.json.write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="ascii"
        )
        print(f"recorded {args.record!r} in {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
