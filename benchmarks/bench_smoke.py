"""Wall-clock smoke benchmark: simulator throughput and tracing overhead.

Runs one small fig6-shaped KV workload three ways — no tracer (the
default disabled tracer), a bound-but-disabled tracer, and full tracing —
and writes ``BENCH_smoke.json`` with wall times, simulated ops/sec, and
the overhead of each mode over the baseline.  CI runs this on every push
so a regression in simulator speed (or in the pay-for-what-you-enable
promise of the disabled tracer) shows up as a number, not a feeling.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--n-ops N] [--out PATH]
        [--gate-overhead PCT]

With ``--gate-overhead`` the disabled-tracer overhead becomes a gate:
the run fails (exit 1) when a bound-but-disabled tracer costs more than
PCT percent over the no-tracer baseline.  A disabled tracer reduces
every instrumentation site to one frozenset membership test, so a real
overhead regression means someone put work back on the disabled path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.population import KeyScheme
from repro.trace.tracer import TraceCollector, TraceConfig, Tracer


def _run_once(n_ops: int, tracer: Tracer | None) -> dict:
    scheme = KeyScheme(prefix=b"key-", digits=12)
    rig = build_kv_rig(lab_geometry(blocks_per_plane=16), tracer=tracer)
    rig.device.fast_fill(n_ops, 4096, scheme)
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="mixed",
        population=n_ops,
        key_scheme=scheme,
        value_bytes=4096,
        read_fraction=0.3,
        seed=11,
    )
    started = time.perf_counter()
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(spec),
        queue_depth=8, name="bench",
    )
    wall_s = time.perf_counter() - started
    return {
        "wall_s": round(wall_s, 4),
        "completed_ops": run.completed_ops,
        "ops_per_wall_sec": round(run.completed_ops / wall_s, 1),
        "simulated_ms": round(run.elapsed_us / 1000.0, 1),
    }


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-ops", type=int, default=4000)
    parser.add_argument("--out", default="BENCH_smoke.json")
    parser.add_argument(
        "--gate-overhead", type=float, metavar="PCT", default=None,
        help="fail if the disabled tracer costs more than PCT%% over "
        "the no-tracer baseline",
    )
    args = parser.parse_args(argv)

    modes = {
        "baseline": None,
        "tracer_disabled": Tracer(
            TraceConfig(enabled=False), TraceCollector(1024)
        ),
        "tracer_enabled": Tracer(TraceConfig(), TraceCollector(1 << 20)),
    }
    results = {}
    for mode, tracer in modes.items():
        results[mode] = _run_once(args.n_ops, tracer)
        print(f"{mode:>16}: {results[mode]['wall_s']:.3f}s wall, "
              f"{results[mode]['ops_per_wall_sec']:.0f} ops/s")

    base = results["baseline"]["wall_s"]
    for mode in ("tracer_disabled", "tracer_enabled"):
        overhead = (results[mode]["wall_s"] - base) / base * 100.0
        results[mode]["overhead_pct"] = round(overhead, 1)
        print(f"{mode:>16}: {overhead:+.1f}% vs baseline")

    document = {"n_ops": args.n_ops, "results": results}
    with open(args.out, "w", encoding="ascii") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {args.out}")

    if args.gate_overhead is not None:
        measured = results["tracer_disabled"]["overhead_pct"]
        status = "PASS" if measured <= args.gate_overhead else "FAIL"
        print(
            f"gate: disabled-tracer overhead {measured:+.1f}% "
            f"(limit {args.gate_overhead:+.1f}%) -> {status}"
        )
        if status == "FAIL":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
