"""Fig. 8 — device bandwidth vs key size (NVMe command-set cliff).

Paper setup: stores with a fixed value size while sweeping key length,
in both synchronous and asynchronous modes.  A 64 B NVMe command carries
at most 16 B of key inline; longer keys cost a second command.

Paper findings this bench checks:
* bandwidth is flat across key sizes up to 16 B;
* it drops sharply past 16 B — the paper reports large keys reaching as
  low as ~0.53x of the small-key bandwidth — in both modes (the cliff is
  steepest under asynchronous load, where the submission path saturates).
"""

from conftest import banner, figure_runner, run_once

from repro.core.figures import fig8_key_size_bandwidth
from repro.kvbench.report import format_table


def test_fig8_key_size_bandwidth(benchmark):
    result = run_once(benchmark, lambda: fig8_key_size_bandwidth(n_ops=1200, runner=figure_runner()))

    print(banner("Fig. 8 — store bandwidth vs key size (MiB/s)"))
    rows = [
        [f"{key_bytes}B", result.commands[key_bytes],
         result.mib_s["sync"][key_bytes], result.mib_s["async"][key_bytes]]
        for key_bytes in result.key_sizes
    ]
    print(format_table(["key", "NVMe cmds", "sync", "async"], rows))
    print(f"cliff past 16 B keys: async {result.cliff_ratio('async'):.2f}x, "
          f"sync {result.cliff_ratio('sync'):.2f}x (paper: ~0.53x)")

    # Flat up to the inline limit.
    async_bw = result.mib_s["async"]
    assert abs(async_bw[16] - async_bw[8]) / async_bw[8] < 0.1
    # The cliff: a second command halves the submission budget.
    assert result.cliff_ratio("async") < 0.7
    assert result.cliff_ratio("sync") < 0.98
    # Command counts explain it.
    assert result.commands[16] == 1
    assert result.commands[24] == 2
