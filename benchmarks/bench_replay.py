"""Replay-subsystem throughput benchmark: trace records per second.

Measures the full trace pipeline on one fixed cell: generate a merged
churn + expiry + scan-mix trace, write it out, parse it back (the
strict line parser is part of the cost), and replay it against a
prefilled KV rig through the YCSB driver.  Records/sec is the number
that decides whether replaying a Twitter-scale op log through the
simulator is feasible — and the strict parser plus the per-record
adapter dispatch are exactly the code this PR added, so this entry
gates their performance.

The cell is fixed — same specs, seeds, geometry, and record counts on
every run — so successive entries in ``BENCH_replay.json`` form a
comparable trajectory.  CI's perf-smoke job runs with ``--gate`` and
fails when throughput regresses more than the threshold against the
last committed entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_replay.py
        [--reps N] [--record LABEL] [--gate] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.core.figures import _drain
from repro.kvbench.generators import (
    ChurnSpec,
    ExpirySpec,
    ScanMixSpec,
    generate_churn,
    generate_expiry,
    generate_scan_mix,
)
from repro.kvbench.runner import execute_workload
from repro.kvbench.traces import TraceWorkload, merge_traces, read_trace, \
    write_trace
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.units import MIB

#: Fixed cell parameters.
POPULATION = 4096
VALUE_BYTES = 4096
QUEUE_DEPTH = 8
BLOCKS_PER_PLANE = 32
BASE_OPS = 2000
TTL_OPS = 600
SCAN_FRACTION = 0.15
SCAN_LENGTH = 16

#: Default trajectory file, at the repository root.
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_replay.json"

#: perf-smoke failure threshold: measured records/sec below this fraction
#: of the last committed entry fails the gate.
GATE_FRACTION = 0.8


def _build_trace(path: str) -> int:
    """Generate, merge, and write the fixed trace; returns record count."""
    scheme = KeyScheme(prefix=b"fill", digits=12)
    churn = generate_churn(ChurnSpec(
        n_ops=BASE_OPS // 2, population=POPULATION, working_set=256,
        rotate_every_ops=200, value_bytes=VALUE_BYTES, key_scheme=scheme,
        seed=17,
    ))
    scans = generate_scan_mix(ScanMixSpec(
        n_ops=BASE_OPS // 2, population=POPULATION,
        scan_fraction=SCAN_FRACTION, scan_length=SCAN_LENGTH,
        value_bytes=VALUE_BYTES, key_scheme=scheme, seed=19,
    ))
    expiry = generate_expiry(ExpirySpec(
        n_ops=TTL_OPS, population=POPULATION // 8, ttl_us=20_000.0,
        value_bytes=VALUE_BYTES,
        interarrival_us=(BASE_OPS // 2) * 100.0 / TTL_OPS,
        key_scheme=KeyScheme(prefix=b"ttl-", digits=12), seed=23,
    ))
    return write_trace(path, merge_traces(churn, scans, expiry))


def replay_cell(path: str) -> dict:
    """Parse the trace at ``path`` and replay it; returns counters."""
    records = read_trace(path)
    rig = build_kv_rig(
        lab_geometry(BLOCKS_PER_PLANE),
        config=KVSSDConfig(index_dram_bytes=64 * MIB),
    )
    scheme = KeyScheme(prefix=b"fill", digits=12)
    rig.device.fast_fill(POPULATION, VALUE_BYTES, scheme)
    workload = TraceWorkload(records, key_scheme=scheme)
    driver = YCSBDriver(
        rig.adapter,
        YCSBSpec(workload="E", n_ops=len(records), population=POPULATION,
                 key_scheme=scheme, value_bytes=VALUE_BYTES,
                 scan_length=SCAN_LENGTH, seed=17),
    )
    run = execute_workload(rig.env, driver, workload.operations(),
                           queue_depth=QUEUE_DEPTH, name="bench.replay")
    _drain(rig)
    if run.failed_ops:
        raise RuntimeError(f"replay cell failed {run.failed_ops} ops")
    return {"records": len(records), "events": rig.env.processed_events}


def run_benchmark(reps: int) -> dict:
    """Run the fixed cell ``reps`` times; report the best repetition."""
    best = None
    with tempfile.TemporaryDirectory() as scratch:
        path = str(Path(scratch) / "bench.kvt.gz")
        for _ in range(reps):
            started = time.perf_counter()
            count = _build_trace(path)
            cell = replay_cell(path)
            wall_s = time.perf_counter() - started
            assert cell["records"] == count
            if best is None or wall_s < best["wall_s"]:
                best = {"wall_s": wall_s, **cell}
    assert best is not None
    return {
        "records_per_sec": round(best["records"] / best["wall_s"], 1),
        "events_per_sec": round(best["events"] / best["wall_s"], 1),
        "wall_s_per_cell": round(best["wall_s"], 4),
        "records_per_cell": best["records"],
        "reps": reps,
    }


def load_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="ascii"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--record", metavar="LABEL",
        help="append an entry labelled LABEL to the trajectory file",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="fail (exit 1) if records/sec < %.0f%% of the last entry"
        % (GATE_FRACTION * 100),
    )
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    result = run_benchmark(args.reps)
    print(
        f"cell: population={POPULATION} value={VALUE_BYTES}B "
        f"qd={QUEUE_DEPTH} records={result['records_per_cell']} "
        f"blocks_per_plane={BLOCKS_PER_PLANE}"
    )
    print(
        f"best of {args.reps}: {result['records_per_sec']:,.0f} records/s, "
        f"{result['events_per_sec']:,.0f} events/s "
        f"({result['wall_s_per_cell']:.3f}s per cell)"
    )

    trajectory = load_trajectory(args.json)

    if args.gate and trajectory:
        reference = trajectory[-1]["records_per_sec"]
        floor = reference * GATE_FRACTION
        status = "PASS" if result["records_per_sec"] >= floor else "FAIL"
        print(
            f"gate: {result['records_per_sec']:,.0f} records/s vs committed "
            f"{reference:,.0f} (floor {floor:,.0f}) -> {status}"
        )
        if status == "FAIL":
            return 1

    if args.record:
        entry = {
            "label": args.record,
            "date": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "cell": {
                "population": POPULATION,
                "value_bytes": VALUE_BYTES,
                "queue_depth": QUEUE_DEPTH,
                "base_ops": BASE_OPS,
                "ttl_ops": TTL_OPS,
                "scan_fraction": SCAN_FRACTION,
                "blocks_per_plane": BLOCKS_PER_PLANE,
            },
        }
        entry.update(result)
        trajectory.append(entry)
        args.json.write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="ascii"
        )
        print(f"recorded {args.record!r} in {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
