"""Ablations — the design hypotheses the paper advances, toggled.

The paper *hypothesizes* mechanisms for its observations (ECC-sector
minimum allocation, DRAM-bounded index, wide log striping, page-boundary
splitting).  Because this reproduction implements those mechanisms, each
can be switched off or resized to show it is genuinely load-bearing:

* minimum allocation -> the Fig. 7 small-value amplification;
* index DRAM size -> the Fig. 3 degradation knee;
* stream width -> the Fig. 4 high-concurrency advantage;
* page reserve -> the Fig. 5 split threshold (where the dips sit);
* the analytical model (the paper's future-work item) against simulation.
"""

from conftest import banner, run_once

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.core.model import KVSSDModel
from repro.kvbench.report import format_table
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.blob import layout_blob, space_amplification
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.units import KIB, MIB


def _insert_latency(config, queue_depth, n_ops=800):
    rig = build_kv_rig(lab_geometry(8), config=config)
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=KeyScheme(prefix=b"abl-", digits=12),
        value_bytes=4 * KIB,
        seed=61,
    )
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(spec), queue_depth
    )
    return run.latency.mean()


def ablation_min_alloc():
    page = 32 * KIB
    rows = []
    for min_alloc in (256, 512, 1024):
        config = KVSSDConfig(min_alloc_bytes=min_alloc)
        rows.append(
            [f"{min_alloc}B", space_amplification(16, 50, page, config)]
        )
    return rows


def ablation_index_dram():
    rows = []
    geometry = lab_geometry(8)
    for label, dram in (("scaled (default)", None), ("4x DRAM", 4 * MIB),
                        ("64x DRAM", 64 * MIB)):
        model = KVSSDModel(geometry, KVSSDConfig(index_dram_bytes=dram))
        kvps = int(model.max_kvps() * 0.9)
        rows.append([
            label,
            model.resident_fraction(kvps),
            model.store_latency_us(16, 512, kvps)
            / model.store_latency_us(16, 512, 0),
        ])
    return rows


def ablation_stream_width():
    rows = []
    for width in (4, 8, 16):
        latency = _insert_latency(KVSSDConfig(stream_width=width), 64)
        rows.append([width, latency])
    return rows


def ablation_page_reserve():
    page = 32 * KIB
    rows = []
    for reserve in (512, 4096, 7680):
        config = KVSSDConfig(page_reserved_bytes=reserve)
        usable = page - reserve
        first_split = None
        for value_kib in range(16, 33):
            layout = layout_blob(16, value_kib * KIB, page, config)
            if layout.is_split:
                first_split = value_kib
                break
        rows.append([f"{reserve}B", f"{usable}B", f"{first_split}KiB"])
    return rows


def ablation_model_vs_simulation():
    geometry = lab_geometry(8)
    config = KVSSDConfig(index_dram_bytes=64 * MIB)
    model = KVSSDModel(geometry, config)
    rig = build_kv_rig(geometry, config=config)
    spec = WorkloadSpec(
        n_ops=600,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=KeyScheme(prefix=b"abl-", digits=12),
        value_bytes=4 * KIB,
        seed=67,
    )
    run = execute_workload(rig.env, rig.adapter, generate_operations(spec), 1)
    simulated_store = run.latency.mean()
    predicted_store = model.store_latency_us(16, 4 * KIB)
    read_spec = WorkloadSpec(
        n_ops=600,
        op="read",
        pattern=Pattern.UNIFORM,
        population=600,
        key_scheme=KeyScheme(prefix=b"abl-", digits=12),
        value_bytes=4 * KIB,
        seed=71,
    )
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(read_spec), 1
    )
    simulated_read = run.latency.mean()
    predicted_read = model.retrieve_latency_us(16, 4 * KIB)
    return [
        ["store QD1 (us)", predicted_store, simulated_store],
        ["retrieve QD1 (us)", predicted_read, simulated_read],
    ]


def test_ablations(benchmark):
    def run_all():
        return {
            "min_alloc": ablation_min_alloc(),
            "index_dram": ablation_index_dram(),
            "stream_width": ablation_stream_width(),
            "page_reserve": ablation_page_reserve(),
            "model": ablation_model_vs_simulation(),
        }

    results = run_once(benchmark, run_all)

    print(banner("Ablation: minimum allocation -> 50 B-value space amp"))
    print(format_table(["min alloc", "space amplification"],
                       results["min_alloc"]))

    print(banner("Ablation: index DRAM -> occupancy degradation (model)"))
    print(format_table(
        ["index DRAM", "resident fraction @90% fill", "write degradation"],
        results["index_dram"],
    ))

    print(banner("Ablation: stream width -> QD64 insert latency (us)"))
    print(format_table(["width (dies)", "insert latency"],
                       results["stream_width"]))

    print(banner("Ablation: page reserve -> split threshold"))
    print(format_table(["reserve", "usable page", "first split value"],
                       results["page_reserve"]))

    print(banner("Analytical model vs simulation (QD1, 4 KiB, low fill)"))
    print(format_table(["operation", "model", "simulated"], results["model"]))

    # Minimum allocation drives small-value amplification ~linearly.
    sa_by_alloc = {row[0]: row[1] for row in results["min_alloc"]}
    assert sa_by_alloc["256B"] < 0.3 * sa_by_alloc["1024B"]
    # More DRAM removes the degradation knee.
    degradations = [row[2] for row in results["index_dram"]]
    assert degradations[0] > 3.0
    assert degradations[-1] < 1.2
    # Wider striping helps concurrent inserts.
    widths = {row[0]: row[1] for row in results["stream_width"]}
    assert widths[16] < widths[4]
    # A smaller reserve moves the split threshold up.
    assert results["page_reserve"][0][2] > results["page_reserve"][2][2]
    # The model lands within 25% of simulation.
    for _label, predicted, simulated in results["model"]:
        assert abs(predicted - simulated) / simulated < 0.25
