"""Whole-program rules SIM008–SIM012: one positive and one negative
fixture package per rule, exercised through the real Project build."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.callgraph import Project
from repro.lint.dataflow import DataflowAnalysis, analyze_project, rule_docstring
from repro.lint.engine import lint_tree

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(tmp_path, files, code):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    project = Project.build([tmp_path])
    analysis = DataflowAnalysis(project)
    rule = getattr(analysis, {
        "SIM008": "rule_sim008",
        "SIM009": "rule_sim009",
        "SIM010": "rule_sim010",
        "SIM011": "rule_sim011",
        "SIM012": "rule_sim012",
    }[code])
    return [f for f in rule() if f.code == code]


# -- SIM008: source -> sink through the call graph ---------------------------


def test_sim008_flags_wall_clock_through_call_chain(tmp_path):
    found = findings_for(tmp_path, {
        "clock.py": """
            import time

            def stamp():
                return time.time()
        """,
        "cell.py": """
            from dataclasses import dataclass
            from pkg.clock import stamp

            @dataclass
            class RunResult:
                started: float

            def run_cell():
                return RunResult(started=stamp())
        """,
    }, "SIM008")
    assert len(found) == 1
    finding = found[0]
    assert finding.path.endswith("cell.py")
    assert "time.time" in finding.message
    assert "stamp" in finding.message  # the chain is named
    assert "'started'" in finding.message


def test_sim008_flags_unseeded_rng_and_environ_sinks(tmp_path):
    found = findings_for(tmp_path, {
        "cell.py": """
            import os
            import random
            from dataclasses import dataclass

            @dataclass
            class DeviceStats:
                jitter: float
                host: str

            def run_cell():
                rng = random.Random()
                return DeviceStats(
                    jitter=rng.random(),
                    host=os.environ["HOSTNAME"],
                )
        """,
    }, "SIM008")
    messages = " | ".join(f.message for f in found)
    assert "unseeded Random()" in messages
    assert "os.environ" in messages


def test_sim008_flags_tainted_event_delay(tmp_path):
    found = findings_for(tmp_path, {
        "model.py": """
            import time

            def kick(env):
                delay = time.perf_counter()
                yield env.timeout(delay)
        """,
    }, "SIM008")
    assert len(found) == 1
    assert "event-schedule" in found[0].message


def test_sim008_clean_when_values_come_from_spec_or_sim_clock(tmp_path):
    found = findings_for(tmp_path, {
        "cell.py": """
            import random
            from dataclasses import dataclass

            @dataclass
            class RunResult:
                started: float
                draw: float

            def run_cell(env, seed):
                rng = random.Random(seed)
                return RunResult(started=env.now, draw=rng.random())
        """,
    }, "SIM008")
    assert found == []


# -- SIM009: sweep cell reads mutated module state ---------------------------


def test_sim009_flags_memo_read_in_cell_callee(tmp_path):
    found = findings_for(tmp_path, {
        "cells.py": """
            _memo = {}

            def lookup(n):
                if n not in _memo:
                    _memo[n] = n * 2
                return _memo[n]

            def cell(n):
                return lookup(n)
        """,
        "sweep.py": """
            from repro.exec.spec import SweepPoint
            from pkg.cells import cell

            def build():
                return [SweepPoint(label="x", fn=cell, kwargs={"n": 1})]
        """,
    }, "SIM009")
    assert found, "memo read inside a sweep-cell callee must be flagged"
    assert any("_memo" in f.message for f in found)
    assert any("pkg.cells.cell" in f.message for f in found)


def test_sim009_clean_for_readonly_module_constants(tmp_path):
    found = findings_for(tmp_path, {
        "cells.py": """
            SIZES = {"small": 1, "large": 64}

            def cell(kind):
                return SIZES[kind]
        """,
        "sweep.py": """
            from repro.exec.spec import SweepPoint
            from pkg.cells import cell

            def build():
                return [SweepPoint(label="x", fn=cell, kwargs={})]
        """,
    }, "SIM009")
    assert found == []


# -- SIM010: unordered iteration feeds scheduling ----------------------------


def test_sim010_flags_set_iteration_in_scheduling_function(tmp_path):
    found = findings_for(tmp_path, {
        "model.py": """
            def drain(env, shard):
                yield env.timeout(1.0)

            def start(env):
                for shard in {"a", "b", "c"}:
                    env.process(drain(env, shard))
        """,
    }, "SIM010")
    assert len(found) == 1
    assert "sorted" in found[0].message


def test_sim010_clean_when_sorted_or_order_insensitive(tmp_path):
    found = findings_for(tmp_path, {
        "model.py": """
            def drain(env, shard):
                yield env.timeout(1.0)

            def start(env):
                for shard in sorted({"a", "b", "c"}):
                    env.process(drain(env, shard))

            def tally(env):
                total = sum(len(s) for s in ["x", "y"])
                yield env.timeout(float(total))
        """,
    }, "SIM010")
    assert found == []


def test_sim010_ignores_sets_outside_scheduling_reach(tmp_path):
    found = findings_for(tmp_path, {
        "pure.py": """
            def categorize(items):
                # No event scheduling anywhere near: order is internal.
                return [item for item in {"a", "b"} if item in items]
        """,
    }, "SIM010")
    assert found == []


# -- SIM011: spec fields the cache cannot see --------------------------------


def test_sim011_flags_init_false_without_compare_false(tmp_path):
    found = findings_for(tmp_path, {
        "spec.py": """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class CellSpec:
                n_ops: int
                mode: str = field(init=False, default="fast")
        """,
    }, "SIM011")
    assert len(found) == 1
    assert "mode" in found[0].message


def test_sim011_flags_uncanonicalizable_annotation_on_spec(tmp_path):
    found = findings_for(tmp_path, {
        "spec.py": """
            from dataclasses import dataclass
            from typing import Callable, FrozenSet

            @dataclass(frozen=True)
            class SweepCellSpec:
                excluded: FrozenSet[str]
                hook: Callable[[], int]
        """,
    }, "SIM011")
    assert len(found) == 2
    messages = " | ".join(f.message for f in found)
    assert "excluded" in messages
    assert "hook" in messages


def test_sim011_clean_for_derived_and_tuple_fields(tmp_path):
    found = findings_for(tmp_path, {
        "spec.py": """
            from dataclasses import dataclass, field
            from typing import Tuple

            @dataclass(frozen=True)
            class GeomSpec:
                planes: int
                shards: Tuple[str, ...] = ()
                pages_total: int = field(
                    init=False, repr=False, compare=False, default=0)

            @dataclass
            class Scratch:  # not frozen: not a spec carrier
                names: set = None
        """,
    }, "SIM011")
    assert found == []


# -- SIM012: unpicklable callables toward the pool ---------------------------


def test_sim012_flags_lambda_and_nested_function(tmp_path):
    found = findings_for(tmp_path, {
        "sweep.py": """
            from repro.exec.spec import SweepPoint

            def build(sizes):
                def cell(size):
                    return size * 2
                points = [SweepPoint(label="a", fn=cell)]
                points.append(SweepPoint(label="b", fn=lambda: 1))
                return points
        """,
    }, "SIM012")
    assert len(found) == 2
    messages = " | ".join(f.message for f in found)
    assert "nested function 'cell'" in messages
    assert "a lambda" in messages


def test_sim012_flags_pool_submit_of_nested_function(tmp_path):
    found = findings_for(tmp_path, {
        "pool.py": """
            def fan_out(executor, items):
                def work(item):
                    return item + 1
                return [executor.submit(work, item) for item in items]
        """,
    }, "SIM012")
    assert len(found) == 1
    assert "work" in found[0].message


def test_sim012_clean_for_module_level_functions(tmp_path):
    found = findings_for(tmp_path, {
        "sweep.py": """
            from repro.exec.spec import SweepPoint

            def cell(size):
                return size * 2

            def build(sizes):
                return [
                    SweepPoint(label=str(s), fn=cell, kwargs={"size": s})
                    for s in sizes
                ]
        """,
    }, "SIM012")
    assert found == []


# -- orchestration ------------------------------------------------------------


def test_lint_tree_applies_suppressions_to_project_findings(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "cell.py").write_text(textwrap.dedent("""
        import time
        from dataclasses import dataclass

        @dataclass
        class RunResult:
            started: float

        def run_cell():
            return RunResult(started=time.time())  # simlint: disable=SIM001,SIM008
    """))
    findings, timings = lint_tree([tmp_path])
    assert findings == []
    labels = [label for label, _ in timings]
    assert labels[0] == "per-module"
    assert set(labels[1:]) == {
        "SIM008", "SIM009", "SIM010", "SIM011", "SIM012",
    }


def test_every_whole_program_rule_documents_itself():
    for code in ("SIM008", "SIM009", "SIM010", "SIM011", "SIM012"):
        doc = rule_docstring(code)
        assert doc is not None
        assert "Bad::" in doc and "Good::" in doc, code


def test_shipped_tree_is_clean_and_fast():
    project = Project.build([str(REPO_ROOT / "src" / "repro")])
    findings, timings = analyze_project(project)
    # Intentional exceptions in the tree carry suppression comments;
    # everything the raw pass reports must be one of those.
    allowed = {("SIM011", "spec.py"), ("SIM008", "sanitizer.py")}
    for finding in findings:
        key = (finding.code, Path(finding.path).name)
        assert key in allowed, finding
    assert sum(seconds for _, seconds in timings) < 10.0
