"""Tests for wear statistics."""

import pytest

from repro.flash.geometry import tiny_geometry
from repro.flash.nand import FlashArray
from repro.flash.timing import FlashTiming
from repro.flash.wear import remaining_life_fraction, wear_report
from repro.sim.engine import Environment


def make_array():
    env = Environment()
    return FlashArray(env, tiny_geometry(), FlashTiming())


def test_fresh_array_is_perfectly_level():
    array = make_array()
    report = wear_report(array)
    assert report.total_erases == 0
    assert report.spread == 0
    assert report.evenness == 1.0
    assert remaining_life_fraction(array) == 1.0


def test_uneven_wear_detected():
    array = make_array()
    for _ in range(10):
        array.prime_erase(0)
    array.prime_erase(1)
    report = wear_report(array)
    assert report.max_erases == 10
    assert report.min_erases == 0
    assert report.spread == 10
    assert report.evenness < 1.0


def test_exclusions_remove_reserved_blocks():
    array = make_array()
    for _ in range(50):
        array.prime_erase(3)
    full = wear_report(array)
    filtered = wear_report(array, exclude={3})
    assert full.max_erases == 50
    assert filtered.max_erases == 0
    with pytest.raises(ValueError):
        wear_report(array, exclude=set(range(array.geometry.total_blocks)))


def test_remaining_life_fraction():
    array = make_array()
    for _ in range(1500):
        array.prime_erase(0)
    assert remaining_life_fraction(array, rated_cycles=3000) == pytest.approx(0.5)
    for _ in range(2000):
        array.prime_erase(0)
    assert remaining_life_fraction(array, rated_cycles=3000) == 0.0
    with pytest.raises(ValueError):
        remaining_life_fraction(array, rated_cycles=0)


def test_gc_spreads_wear_across_blocks():
    """After sustained overwrite churn, GC erases many distinct blocks."""
    from repro.blockftl.config import BlockSSDConfig
    from repro.blockftl.device import BlockSSD
    from repro.flash.geometry import Geometry
    from repro.units import KIB

    geometry = Geometry(
        channels=2, dies_per_channel=2, planes_per_die=1,
        blocks_per_plane=8, pages_per_block=16, page_bytes=32 * KIB,
    )
    env = Environment()
    ssd = BlockSSD(env, geometry, config=BlockSSDConfig(
        gc_threshold_fraction=0.3,
    ))
    span = ssd.n_units // 3

    def churn(env):
        for _round in range(10):
            for unit in range(span):
                yield env.process(ssd.write(unit * ssd.map_unit, ssd.map_unit))
        yield env.process(ssd.drain())

    process = env.process(churn(env))
    env.run_until_complete(process, limit=600e6)
    report = wear_report(ssd.array)
    assert report.total_erases > 0
    worn_blocks = sum(
        1 for info in ssd.array.blocks if info.erase_count > 0
    )
    assert worn_blocks >= 3  # erases are not concentrated on one block
