"""Runtime invariant checker: clean runs stay silent, corruption trips.

Two halves:

* *parity under invariants* — the same GC-heavy update workload the
  tier-1 parity tests use, run on both personalities with
  ``invariants=True``: every GC cycle and the final drain re-verify
  mapping/valid-byte/pool consistency, and the workload completes.
* *corruption detection* — each invariant class (duplicate ident,
  valid-byte drift, pool leak, unreset FREE block) is violated on
  purpose and must raise :class:`~repro.errors.InvariantViolation`.
"""

from __future__ import annotations

import pytest

from repro.api.block import BlockDeviceAPI
from repro.api.kvs import KVStoreAPI
from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.errors import InvariantViolation
from repro.flash.geometry import Geometry
from repro.flash.nand import FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.core import FtlCore
from repro.kvbench.runner import BlockAdapter, KVSSDAdapter, execute_workload
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.kvftl.population import KeyScheme
from repro.metrics.cpu import CpuAccountant
from repro.nvme.driver import KernelDeviceDriver
from repro.sim.engine import Environment
from repro.units import KIB

SCHEME = KeyScheme(prefix=b"key-", digits=12)


def small_geometry() -> Geometry:
    return Geometry(
        channels=2,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )


def run_update_workload(env, adapter, population: int, n_ops: int):
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="update",
        population=population,
        key_scheme=SCHEME,
        value_bytes=4 * KIB,
        seed=11,
    )
    return execute_workload(
        env, adapter, generate_operations(spec),
        queue_depth=16, name="inv", stop_after_us=600e6,
    )


# -- parity under invariants --------------------------------------------------


def test_kv_personality_invariants_hold_through_gc():
    env = Environment()
    kv = KVSSD(
        env, small_geometry(),
        config=KVSSDConfig(page_reserved_bytes=0, invariants=True),
    )
    cpu = CpuAccountant(env, 16)
    api = KVStoreAPI(env, kv, KernelDeviceDriver(env, cpu), sync=False)
    population = kv.fast_fill(
        int(kv.core.user_capacity_bytes * 0.80 // 4144), 4 * KIB, SCHEME
    )
    run = run_update_workload(
        env, KVSSDAdapter(api), population.count, n_ops=2500
    )
    env.run_until_complete(env.process(kv.drain()))
    assert run.completed_ops == 2500
    # The point of the test: GC actually cycled, re-checking invariants
    # after every collection, and the final state still verifies.
    assert kv.stats.gc_runs > 10
    kv.core.check_invariants("final")


def test_block_personality_invariants_hold_through_gc():
    env = Environment()
    blk = BlockSSD(
        env, small_geometry(), config=BlockSSDConfig(invariants=True)
    )
    cpu = CpuAccountant(env, 16)
    api = BlockDeviceAPI(env, blk, KernelDeviceDriver(env, cpu), sync=False)
    primed = int(blk.n_units * 0.80)
    blk.prime_sequential_fill(primed)
    run = run_update_workload(
        env, BlockAdapter(api, 4 * KIB), primed, n_ops=2500
    )
    env.run_until_complete(env.process(blk.drain()))
    assert run.completed_ops == 2500
    assert blk.stats.gc_runs > 5
    blk.core.check_invariants("final")


def test_invariants_default_off_and_checker_noops():
    env = Environment()
    blk = BlockSSD(env, small_geometry())
    assert blk.core.invariants is False
    # Sculpted/primed state without mappings would fail the checker, but
    # with invariants off the call must be a no-op.
    block = blk.pool.pop()
    blk.array.open_block(block)
    blk.array.prime_program(block, 1024)
    blk.core.check_invariants("noop")


# -- corruption detection -----------------------------------------------------


class _StubPersonality:
    """Minimal hook implementation around a hand-built mapping list."""

    def __init__(self) -> None:
        self.view = []

    def live_bytes(self) -> int:
        return sum(entry[3] for entry in self.view)

    def peek_flush(self):
        return None

    def mapping_view(self):
        return list(self.view)


def make_core(invariants: bool = True):
    env = Environment()
    geometry = small_geometry()
    array = FlashArray(env, geometry, FlashTiming())
    personality = _StubPersonality()
    core = FtlCore(
        env,
        array,
        personality,
        stream_width=2,
        write_buffer_bytes=64 * KIB,
        flush_linger_us=100.0,
        gc_threshold_fraction=0.08,
        gc_reserve_blocks=2,
        page_payload_bytes=geometry.page_bytes,
        user_capacity_bytes=geometry.capacity_bytes // 2,
        invariants=invariants,
    )
    return env, array, personality, core


def program_one_page(array: FlashArray, core: FtlCore, nbytes: int) -> int:
    block = core.pool.pop()
    array.open_block(block)
    array.prime_program(block, nbytes)
    return block


def test_detects_clean_stub_state():
    _env, array, personality, core = make_core()
    block = program_one_page(array, core, 4096)
    personality.view = [("a", block, 0, 4096)]
    core.check_invariants("clean")  # must not raise


def test_detects_double_mapped_ident():
    _env, array, personality, core = make_core()
    block = program_one_page(array, core, 8192)
    personality.view = [("a", block, 0, 4096), ("a", block, 0, 4096)]
    with pytest.raises(InvariantViolation, match="mapped twice"):
        core.check_invariants("dup")


def test_detects_valid_byte_drift():
    _env, array, personality, core = make_core()
    block = program_one_page(array, core, 4096)
    # Mapping claims more live bytes on the block than the array accounts.
    personality.view = [("a", block, 0, 4096), ("b", block, 0, 1024)]
    with pytest.raises(InvariantViolation, match="valid_bytes"):
        core.check_invariants("drift")


def test_detects_mapping_into_free_or_unwritten_pages():
    _env, array, personality, core = make_core()
    block = program_one_page(array, core, 4096)
    free_block = next(
        index for index, info in enumerate(array.blocks)
        if info.state.name == "FREE"
    )
    personality.view = [("a", free_block, 0, 4096)]
    with pytest.raises(InvariantViolation, match="FREE block"):
        core.check_invariants("free")
    personality.view = [("a", block, 5, 4096)]
    with pytest.raises(InvariantViolation, match="unwritten page"):
        core.check_invariants("unwritten")


def test_detects_free_pool_leak():
    _env, _array, _personality, core = make_core()
    # A block leaves the pool without the array opening it: FREE count
    # and pool count now disagree.
    core.pool.pop()
    with pytest.raises(InvariantViolation, match="free pool"):
        core.check_invariants("leak")


def test_corrupted_real_device_mapping_is_caught():
    """End-to-end: corrupt a real BlockSSD page map; the checker trips."""
    env = Environment()
    blk = BlockSSD(
        env, small_geometry(), config=BlockSSDConfig(invariants=True)
    )
    blk.prime_sequential_fill(64)
    blk.core.check_invariants("pre")
    # Unbind a mapped unit behind the array's back: its valid bytes are
    # still accounted on flash, so the mapping and the array now disagree.
    blk.pagemap.unbind(0)
    with pytest.raises(InvariantViolation, match="valid_bytes"):
        blk.core.check_invariants("post")
