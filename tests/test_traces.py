"""Trace format, generators, and replay determinism (ISSUE 10).

Three layers of pinning:

* properties — write→parse round-trip is identity for arbitrary
  records, key escaping is lossless, merges stay ordered;
* replay identity — an exported spec replays to a byte-identical
  ``RunResult`` fingerprint, the contract that makes traces and specs
  interchangeable everywhere downstream;
* error paths — every malformed-trace shape raises ``WorkloadError``
  naming ``source:lineno``, so a corrupt trace can never be silently
  replayed as a different workload.

Hash-seed independence of the generators is checked with the
sanitizer's subprocess collector (same machinery as the planted-bug
localization tests).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.errors import ConfigurationError, WorkloadError
from repro.frontend.arrivals import ArrivalSpec, generate_arrivals
from repro.kvbench.generators import (
    ChurnSpec,
    ExpirySpec,
    PhaseSpec,
    ScanMixSpec,
    generate_churn,
    generate_expiry,
    generate_phases,
    generate_scan_mix,
)
from repro.kvbench.runner import execute_workload
from repro.kvbench.traces import (
    OP_CODES,
    TRACE_MAGIC,
    TRACE_VERSION,
    TraceRecord,
    TraceWorkload,
    escape_key,
    export_spec,
    format_record,
    merge_traces,
    parse_trace,
    read_trace,
    spec_to_records,
    unescape_key,
    write_trace,
)
from repro.kvbench.workload import (
    OpType,
    Pattern,
    WorkloadSpec,
    generate_operations,
)
from repro.kvbench.ycsb import YCSBOperation
from repro.kvftl.population import KeyScheme
from repro.lint.sanitizer import collect_in_subprocess, localize

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures"
SAMPLE_TRACE = FIXTURES / "sample_trace.kvt"

HEADER = f"{TRACE_MAGIC} v{TRACE_VERSION}"


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_sizes = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
_keys = st.binary(min_size=1, max_size=24)


@st.composite
def trace_record_lists(draw, min_size: int = 1, max_size: int = 30):
    """Valid record lists: arbitrary keys, non-decreasing timestamps."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    now = 0.0
    records = []
    for _ in range(count):
        now += draw(_sizes)
        op = draw(st.sampled_from(OP_CODES))
        if op == "scan":
            size = draw(st.integers(min_value=1, max_value=4096))
        elif op in ("read", "delete"):
            size = 0
        else:
            size = draw(st.integers(min_value=0, max_value=1 << 20))
        ttl = 0.0
        if op in ("insert", "update"):
            ttl = draw(st.floats(min_value=0.0, max_value=1e7,
                                 allow_nan=False, allow_infinity=False))
        records.append(TraceRecord(now, op, draw(_keys), size, ttl))
    return records


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(key=st.binary(min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_key_escape_is_lossless_and_token_safe(self, key: bytes):
        token = escape_key(key)
        assert token.isascii()
        assert not any(ch.isspace() for ch in token)
        assert unescape_key(token) == key

    @given(records=trace_record_lists())
    @settings(max_examples=60, deadline=None)
    def test_format_parse_identity(self, records):
        lines = [HEADER] + [format_record(r) for r in records]
        assert parse_trace(lines) == records

    def test_file_roundtrip_plain_and_gzip(self, tmp_path):
        records = [
            TraceRecord(0.0, "insert", b"\x00binary\xffkey %", 512, 90.5),
            TraceRecord(0.25, "read", b"plain-key", 0),
            TraceRecord(0.25, "scan", b"pref-000", 16),
            TraceRecord(7.5, "delete", b"\x00binary\xffkey %", 0),
        ]
        for name in ("trace.kvt", "trace.kvt.gz"):
            path = str(tmp_path / name)
            assert write_trace(path, records) == len(records)
            assert read_trace(path) == records

    def test_gzip_file_is_actually_compressed(self, tmp_path):
        records = [TraceRecord(float(i), "read", b"key-%d" % (i % 4), 0)
                   for i in range(400)]
        plain = tmp_path / "t.kvt"
        packed = tmp_path / "t.kvt.gz"
        write_trace(str(plain), records)
        write_trace(str(packed), records)
        assert packed.stat().st_size < plain.stat().st_size
        assert packed.read_bytes()[:2] == b"\x1f\x8b"

    def test_comments_and_blank_lines_are_skipped(self):
        lines = [HEADER, "", "# a comment", "1.0 read abc 0",
                 "   # indented comment", "2.0 update abc 64"]
        parsed = parse_trace(lines)
        assert [r.op for r in parsed] == ["read", "update"]


# ---------------------------------------------------------------------------
# Malformed traces: every error names source:lineno
# ---------------------------------------------------------------------------


class TestMalformed:
    def _lines(self, *records: str):
        return [HEADER, *records]

    def test_missing_header(self):
        with pytest.raises(WorkloadError, match=r"<trace>:1: not a kvtrace"):
            parse_trace(["1.0 read abc 0"])

    def test_version_mismatch(self):
        with pytest.raises(WorkloadError,
                           match=r"<trace>:1: trace version mismatch"):
            parse_trace([f"{TRACE_MAGIC} v{TRACE_VERSION + 1}"])

    def test_malformed_version_token(self):
        with pytest.raises(WorkloadError, match=r":1: malformed trace version"):
            parse_trace([f"{TRACE_MAGIC} vX"])

    def test_empty_input(self):
        with pytest.raises(WorkloadError, match=r"<trace>:1: empty trace"):
            parse_trace([])

    def test_truncated_record(self):
        with pytest.raises(WorkloadError, match=r"<trace>:2: truncated record"):
            parse_trace(self._lines("1.0 read abc"))

    def test_too_many_fields(self):
        with pytest.raises(WorkloadError, match=r":3: too many fields"):
            parse_trace(self._lines("1.0 read abc 0",
                                    "2.0 read abc 0 5.0 extra"))

    def test_unknown_op_code(self):
        with pytest.raises(WorkloadError, match=r":2: unknown op code 'frob'"):
            parse_trace(self._lines("1.0 frob abc 0"))

    def test_out_of_order_timestamp(self):
        with pytest.raises(WorkloadError,
                           match=r":3: out-of-order timestamp 1.0"):
            parse_trace(self._lines("5.0 read abc 0", "1.0 read abc 0"))

    def test_bad_timestamp(self):
        with pytest.raises(WorkloadError, match=r":2: bad timestamp 'soon'"):
            parse_trace(self._lines("soon read abc 0"))

    def test_non_finite_timestamp(self):
        with pytest.raises(WorkloadError, match=r":2: non-finite timestamp"):
            parse_trace(self._lines("nan read abc 0"))

    def test_bad_size(self):
        with pytest.raises(WorkloadError, match=r":2: bad size '12q'"):
            parse_trace(self._lines("1.0 read abc 12q"))

    def test_negative_size(self):
        with pytest.raises(WorkloadError, match=r":2: .*size must be >= 0"):
            parse_trace(self._lines("1.0 update abc -4"))

    def test_bad_ttl(self):
        with pytest.raises(WorkloadError, match=r":2: bad ttl 'later'"):
            parse_trace(self._lines("1.0 insert abc 64 later"))

    def test_zero_limit_scan(self):
        with pytest.raises(WorkloadError, match=r":2: scan limit must be >= 1"):
            parse_trace(self._lines("1.0 scan abcd 0"))

    def test_bad_key_escape(self):
        with pytest.raises(WorkloadError, match=r":2: bad key escape %G1"):
            parse_trace(self._lines("1.0 read a%G1b 0"))

    def test_truncated_key_escape(self):
        with pytest.raises(WorkloadError, match=r":2: truncated key escape"):
            parse_trace(self._lines("1.0 read abc%2 0"))

    def test_errors_name_the_file(self, tmp_path):
        path = tmp_path / "broken.kvt"
        path.write_text(f"{HEADER}\n1.0 read abc 0\n0.5 read abc 0\n")
        with pytest.raises(WorkloadError, match=r"broken\.kvt:3: out-of-order"):
            read_trace(str(path))

    def test_writer_rejects_backwards_timestamps(self, tmp_path):
        records = [TraceRecord(5.0, "read", b"a", 0),
                   TraceRecord(1.0, "read", b"a", 0)]
        with pytest.raises(WorkloadError, match="goes backwards"):
            write_trace(str(tmp_path / "bad.kvt"), records)

    def test_record_validation(self):
        with pytest.raises(WorkloadError, match="timestamp must be >= 0"):
            TraceRecord(-1.0, "read", b"a", 0)
        with pytest.raises(WorkloadError, match="unknown trace op"):
            TraceRecord(0.0, "append", b"a", 0)
        with pytest.raises(WorkloadError, match="key must be non-empty"):
            TraceRecord(0.0, "read", b"", 0)
        with pytest.raises(WorkloadError, match="ttl must be >= 0"):
            TraceRecord(0.0, "read", b"a", 0, ttl_us=-2.0)


# ---------------------------------------------------------------------------
# Spec export and replay identity
# ---------------------------------------------------------------------------


def _run_fingerprint(run) -> str:
    """Serialize everything observable about a run for exact comparison."""
    return json.dumps({
        "completed": run.completed_ops,
        "failed": run.failed_ops,
        "latency": run.latency.summary().as_dict(),
        "reads": run.latency.count("read"),
        "updates": run.latency.count("update"),
        "stats": dataclasses.asdict(run.device_stats),
        "elapsed": run.elapsed_us,
    }, sort_keys=True)


class TestSpecExport:
    def test_exported_operations_match_generate_operations(self, tmp_path):
        scheme = KeyScheme(prefix=b"expt", digits=12)
        spec = WorkloadSpec(
            n_ops=200, op="mixed", pattern=Pattern.ZIPFIAN, population=300,
            key_scheme=scheme, value_bytes=512, seed=5,
        )
        path = str(tmp_path / "spec.kvt")
        assert export_spec(spec, path) == 200
        workload = TraceWorkload(read_trace(path), key_scheme=scheme)
        assert list(workload.operations()) == list(generate_operations(spec))

    def test_export_timestamps_are_a_constant_rate_clock(self):
        spec = WorkloadSpec(n_ops=5, op="read", population=10)
        records = list(spec_to_records(spec, interarrival_us=50.0,
                                       start_us=7.0))
        assert [r.timestamp_us for r in records] == [7.0, 57.0, 107.0,
                                                     157.0, 207.0]

    def test_exported_spec_replay_fingerprint_is_byte_identical(
        self, tmp_path
    ):
        """The replay contract: export → parse → replay reproduces the
        direct run exactly, down to every latency sample and stat."""
        scheme = KeyScheme(prefix=b"expt", digits=12)
        spec = WorkloadSpec(
            n_ops=150, op="mixed", population=256, key_scheme=scheme,
            value_bytes=1024, seed=9,
        )

        def _execute(operations):
            rig = build_kv_rig(lab_geometry(8))
            rig.device.fast_fill(256, 1024, scheme)
            return execute_workload(rig.env, rig.adapter, operations,
                                    queue_depth=4, name="replay")

        direct = _execute(generate_operations(spec))
        path = str(tmp_path / "spec.kvt.gz")
        export_spec(spec, path)
        replayed = _execute(
            TraceWorkload(read_trace(path), key_scheme=scheme).operations()
        )
        assert _run_fingerprint(replayed) == _run_fingerprint(direct)
        assert direct.completed_ops == 150


# ---------------------------------------------------------------------------
# TraceWorkload adapter
# ---------------------------------------------------------------------------


class TestTraceWorkload:
    def test_rejects_empty_record_list(self):
        with pytest.raises(WorkloadError, match="at least one record"):
            TraceWorkload([])

    def test_scan_records_become_ycsb_operations(self):
        records = [TraceRecord(0.0, "scan", b"pref-001", 32),
                   TraceRecord(1.0, "read", b"pref-001", 0)]
        ops = list(TraceWorkload(records))
        assert isinstance(ops[0], YCSBOperation)
        assert ops[0].scan_length == 32
        assert ops[0].op is OpType.READ
        assert not isinstance(ops[1], YCSBOperation)
        assert ops[1].op is OpType.READ

    def test_foreign_keys_get_stable_first_seen_indices(self):
        records = [
            TraceRecord(0.0, "insert", b"zebra", 64),
            TraceRecord(1.0, "insert", b"apple", 64),
            TraceRecord(2.0, "read", b"zebra", 0),
        ]
        workload = TraceWorkload(records)
        indices = [op.key_index for op in workload.operations()]
        assert indices == [0, 1, 0]
        # A second pass over the same workload reuses the same interning.
        assert [op.key_index for op in workload.operations()] == indices

    def test_scheme_keys_recover_their_exact_indices(self):
        scheme = KeyScheme(prefix=b"popl", digits=12)
        records = [TraceRecord(0.0, "read", scheme.key_for(37), 0)]
        workload = TraceWorkload(records, key_scheme=scheme)
        assert next(iter(workload)).key_index == 37

    def test_arrivals_duration_and_scan_probe(self):
        records = [TraceRecord(5.0, "read", b"a", 0),
                   TraceRecord(9.0, "scan", b"abcd", 4)]
        workload = TraceWorkload(records)
        assert workload.arrivals() == (5.0, 9.0)
        assert workload.duration_us == 4.0
        assert workload.n_ops == 2
        assert workload.has_scans()
        assert not TraceWorkload([records[0]]).has_scans()


# ---------------------------------------------------------------------------
# Generators: determinism, ordering, and stream invariants
# ---------------------------------------------------------------------------


def _assert_time_ordered(records):
    stamps = [r.timestamp_us for r in records]
    assert stamps == sorted(stamps)


class TestGenerators:
    def test_churn_is_deterministic_and_seed_sensitive(self):
        spec = ChurnSpec(n_ops=120, population=256, working_set=32,
                         rotate_every_ops=40, seed=3)
        first = list(generate_churn(spec))
        assert first == list(generate_churn(spec))
        reseeded = dataclasses.replace(spec, seed=4)
        assert first != list(generate_churn(reseeded))
        _assert_time_ordered(first)

    def test_churn_rotation_moves_the_window(self):
        scheme = KeyScheme(prefix=b"chrn", digits=12)
        spec = ChurnSpec(n_ops=100, population=400, working_set=50,
                         rotate_every_ops=50, key_scheme=scheme, seed=3)
        records = list(generate_churn(spec))
        first = {scheme.index_of(r.key) for r in records[:50]}
        second = {scheme.index_of(r.key) for r in records[50:]}
        assert first <= set(range(0, 50))
        assert second <= set(range(50, 100))
        # The static control arm never leaves the initial window.
        static = dataclasses.replace(spec, rotate_every_ops=0)
        indices = {scheme.index_of(r.key) for r in generate_churn(static)}
        assert indices <= set(range(0, 50))

    def test_churn_ops_are_reads_and_updates_only(self):
        spec = ChurnSpec(n_ops=60, population=64, working_set=64, seed=1)
        assert {r.op for r in generate_churn(spec)} <= {"read", "update"}

    def test_expiry_stream_is_self_contained(self):
        """Every read/delete targets a live key; the drain leaves the
        store empty, the way a TTL cache would end up."""
        spec = ExpirySpec(n_ops=200, population=64, ttl_us=1200.0, seed=7)
        records = list(generate_expiry(spec))
        _assert_time_ordered(records)
        live = set()
        deletes = 0
        for record in records:
            if record.op == "insert":
                assert record.key not in live
                assert record.ttl_us == spec.ttl_us
                live.add(record.key)
            elif record.op == "update":
                assert record.key in live
                assert record.ttl_us == spec.ttl_us
            elif record.op == "read":
                assert record.key in live
            else:
                assert record.op == "delete"
                assert record.key in live
                live.remove(record.key)
                deletes += 1
        assert not live, "final drain must expire every armed key"
        assert deletes > 0
        foreground = [r for r in records if r.op != "delete"]
        assert len(foreground) == spec.n_ops

    def test_expiry_is_deterministic(self):
        spec = ExpirySpec(n_ops=150, population=40, ttl_us=900.0, seed=5)
        assert list(generate_expiry(spec)) == list(generate_expiry(spec))

    def test_scan_mix_carries_scan_limits(self):
        spec = ScanMixSpec(n_ops=300, population=128, scan_fraction=0.3,
                           scan_length=24, seed=11)
        records = list(generate_scan_mix(spec))
        _assert_time_ordered(records)
        scans = [r for r in records if r.op == "scan"]
        assert scans and all(r.size == 24 for r in scans)
        assert {r.op for r in records} <= {"scan", "read", "update"}
        assert list(generate_scan_mix(spec)) == records

    def test_phases_concatenate_at_each_phases_own_rate(self):
        scheme = KeyScheme(prefix=b"phse", digits=12)
        fast = WorkloadSpec(n_ops=10, op="read", population=20,
                            key_scheme=scheme)
        slow = WorkloadSpec(n_ops=5, op="update", population=20,
                            key_scheme=scheme, value_bytes=256)
        spec = PhaseSpec(phases=((1000.0, fast), (1000.0, slow)))
        assert spec.total_ops == 15
        assert spec.total_duration_us == 2000.0
        records = list(generate_phases(spec))
        assert len(records) == 15
        _assert_time_ordered(records)
        assert [r.op for r in records[:10]] == ["read"] * 10
        assert [r.timestamp_us for r in records[:3]] == [0.0, 100.0, 200.0]
        assert records[10].timestamp_us == 1000.0
        assert records[11].timestamp_us == 1200.0

    def test_phase_spec_validation(self):
        with pytest.raises(WorkloadError, match="at least one phase"):
            PhaseSpec(phases=())
        spec = WorkloadSpec(n_ops=1, op="read", population=1)
        with pytest.raises(WorkloadError, match="phase 2: duration"):
            PhaseSpec(phases=((10.0, spec), (0.0, spec)))

    def test_churn_spec_validation(self):
        with pytest.raises(WorkloadError, match="working_set"):
            ChurnSpec(n_ops=10, population=8, working_set=9)
        with pytest.raises(WorkloadError, match="rotate_every_ops"):
            ChurnSpec(n_ops=10, population=8, working_set=4,
                      rotate_every_ops=-1)

    def test_expiry_spec_validation(self):
        with pytest.raises(WorkloadError, match="ttl_us"):
            ExpirySpec(n_ops=10, population=8, ttl_us=0.0)
        with pytest.raises(WorkloadError, match="write_fraction"):
            ExpirySpec(n_ops=10, population=8, ttl_us=1.0,
                       write_fraction=0.0)


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


class TestMerge:
    def test_merge_orders_by_timestamp_then_stream(self):
        a = [TraceRecord(0.0, "read", b"a0", 0),
             TraceRecord(10.0, "read", b"a1", 0)]
        b = [TraceRecord(0.0, "read", b"b0", 0),
             TraceRecord(5.0, "read", b"b1", 0)]
        merged = merge_traces(a, b)
        assert [r.key for r in merged] == [b"a0", b"b0", b"b1", b"a1"]
        _assert_time_ordered(merged)

    def test_merge_is_writable_and_parseable(self, tmp_path):
        churn = generate_churn(
            ChurnSpec(n_ops=50, population=64, working_set=16, seed=2)
        )
        expiry = generate_expiry(
            ExpirySpec(n_ops=50, population=16, ttl_us=700.0,
                       key_scheme=KeyScheme(prefix=b"ttl-", digits=12),
                       seed=3)
        )
        merged = merge_traces(churn, expiry)
        path = str(tmp_path / "merged.kvt")
        count = write_trace(path, merged)
        assert read_trace(path) == merged
        assert count == len(merged) >= 100

    @given(seed_a=st.integers(0, 50), seed_b=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_merge_preserves_every_record(self, seed_a, seed_b):
        a = list(generate_churn(ChurnSpec(
            n_ops=20, population=32, working_set=8, seed=seed_a)))
        b = list(generate_churn(ChurnSpec(
            n_ops=20, population=32, working_set=8, seed=seed_b)))
        merged = merge_traces(a, b)
        assert len(merged) == 40
        assert sorted(r.key for r in merged) == sorted(
            r.key for r in a + b
        )
        _assert_time_ordered(merged)


# ---------------------------------------------------------------------------
# Open-loop arrivals from traces
# ---------------------------------------------------------------------------


class TestTraceArrivals:
    def test_from_trace_replays_timestamps_verbatim(self):
        records = [TraceRecord(float(i) * 3.0, "read", b"k", 0)
                   for i in range(10)]
        workload = TraceWorkload(records)
        spec = ArrivalSpec.from_trace(workload.arrivals())
        assert tuple(generate_arrivals(spec)) == workload.arrivals()
        assert spec.process == "trace"
        assert spec.n_requests == 10

    def test_from_trace_derives_the_offered_rate(self):
        # 10 arrivals over 27 us -> 10/27 per us.
        spec = ArrivalSpec.from_trace(tuple(float(i) * 3.0
                                            for i in range(10)))
        assert spec.rate_ops_s == pytest.approx(10 / 27e-6)
        # Zero-span traces fall back to a sane positive rate.
        burst = ArrivalSpec.from_trace((5.0, 5.0, 5.0))
        assert burst.rate_ops_s > 0
        assert tuple(generate_arrivals(burst)) == (5.0, 5.0, 5.0)

    def test_from_trace_validation(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ArrivalSpec.from_trace(())
        with pytest.raises(ConfigurationError, match="goes backwards"):
            ArrivalSpec.from_trace((3.0, 1.0))
        with pytest.raises(ConfigurationError, match="carry 2 timestamps"):
            ArrivalSpec(rate_ops_s=1e4, n_requests=3, process="trace",
                        trace_times=(0.0, 1.0))
        with pytest.raises(ConfigurationError, match="only applies"):
            ArrivalSpec(rate_ops_s=1e4, n_requests=2, process="poisson",
                        trace_times=(0.0, 1.0))


# ---------------------------------------------------------------------------
# Hash-seed independence (sanitizer collect machinery)
# ---------------------------------------------------------------------------

CHURN_TARGET = f"{FIXTURES / 'sanitizer_targets.py'}:replay_churn"
EXPIRY_TARGET = f"{FIXTURES / 'sanitizer_targets.py'}:replay_expiry"


class TestHashSeedIndependence:
    @pytest.mark.parametrize("target", [CHURN_TARGET, EXPIRY_TARGET],
                             ids=["churn", "expiry"])
    def test_generator_fingerprint_survives_hash_seed_variation(
        self, target
    ):
        left = collect_in_subprocess(target, 0, "0")
        right = collect_in_subprocess(target, 0, "1")
        assert left.hash_seed == "0" and right.hash_seed == "1"
        assert localize(left, right) is None
        assert left.fingerprint == right.fingerprint


# ---------------------------------------------------------------------------
# The committed sample trace
# ---------------------------------------------------------------------------


class TestSampleTrace:
    def test_sample_trace_parses_and_replays(self):
        records = read_trace(str(SAMPLE_TRACE))
        assert len(records) >= 1000
        _assert_time_ordered(records)
        workload = TraceWorkload(records)
        assert workload.has_scans()
        ops = {r.op for r in records}
        assert {"insert", "update", "read", "delete", "scan"} <= ops
        operations = list(workload.operations())
        assert len(operations) == len(records)
        arrivals = workload.arrivals()
        assert ArrivalSpec.from_trace(arrivals).n_requests == len(records)
