"""Integration tests for the block-SSD personality."""

import pytest

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.errors import AddressError
from repro.flash.geometry import Geometry
from repro.sim.engine import Environment
from repro.units import KIB


def make_ssd(blocks_per_plane=16, **config_kwargs):
    geometry = Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )
    env = Environment()
    ssd = BlockSSD(env, geometry, config=BlockSSDConfig(**config_kwargs))
    return env, ssd


def run(env, generator, limit=60e6):
    process = env.process(generator)
    return env.run_until_complete(process, limit=limit)


def test_write_completes_fast_via_buffer():
    env, ssd = make_ssd()

    def proc(env):
        started = env.now
        yield env.process(ssd.write(0, 4096))
        return env.now - started

    latency = run(env, proc(env))
    # Buffered write: far below the ~740us flash program time.
    assert latency < 100.0


def test_write_then_drain_lands_on_flash():
    env, ssd = make_ssd()

    def proc(env):
        for i in range(16):
            yield env.process(ssd.write(i * 4096, 4096))
        yield env.process(ssd.drain())

    run(env, proc(env))
    assert ssd.occupied_bytes == 16 * 4096
    assert ssd.array.counters.page_programs >= 2
    assert ssd.buffer.occupied_bytes == 0


def test_read_after_drain_hits_flash():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.write(0, 4096))
        yield env.process(ssd.drain())
        reads_before = ssd.array.counters.page_reads
        started = env.now
        yield env.process(ssd.read(0, 4096))
        return ssd.array.counters.page_reads - reads_before, env.now - started

    flash_reads, latency = run(env, proc(env))
    assert flash_reads == 1
    assert latency > ssd.timing.read_us


def test_read_of_buffered_data_skips_flash():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.write(0, 4096))
        reads_before = ssd.array.counters.page_reads
        yield env.process(ssd.read(0, 4096))
        return ssd.array.counters.page_reads - reads_before

    assert run(env, proc(env)) == 0


def test_overwrite_invalidates_old_copy():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.write(0, 4096))
        yield env.process(ssd.drain())
        yield env.process(ssd.write(0, 4096))
        yield env.process(ssd.drain())

    run(env, proc(env))
    assert ssd.occupied_bytes == 4096  # one live copy
    assert ssd.array.total_valid_bytes() == 4096


def test_sub_unit_write_is_rmw_after_flush():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.write(0, 4096))
        yield env.process(ssd.drain())
        reads_before = ssd.array.counters.page_reads
        yield env.process(ssd.write(512, 512))
        return ssd.array.counters.page_reads - reads_before

    assert run(env, proc(env)) == 1  # read-modify-write fetched the old unit


def test_sequential_write_cheaper_than_random():
    env, ssd = make_ssd()

    def measure(env, offsets):
        latencies = []
        for offset in offsets:
            started = env.now
            yield env.process(ssd.write(offset, 4096))
            latencies.append(env.now - started)
        yield env.process(ssd.drain())
        return sum(latencies) / len(latencies)

    import random

    rng = random.Random(5)
    n = 200
    seq = run(env, measure(env, [i * 4096 for i in range(n)]))
    span = ssd.n_units
    random_offsets = [rng.randrange(span) * 4096 for _ in range(n)]
    rand = run(env, measure(env, random_offsets))
    assert seq < rand  # segment-cache locality (the paper's 0.6x writes)


def test_sequential_read_cheaper_than_random():
    env, ssd = make_ssd()
    ssd.prime_sequential_fill(ssd.n_units)
    import random

    rng = random.Random(5)

    def measure(env, offsets):
        latencies = []
        for offset in offsets:
            started = env.now
            yield env.process(ssd.read(offset, 4096))
            latencies.append(env.now - started)
        return sum(latencies) / len(latencies)

    n = 200
    seq = run(env, measure(env, [i * 4096 for i in range(n)]))
    rand = run(
        env,
        measure(env, [rng.randrange(ssd.n_units) * 4096 for _ in range(n)]),
    )
    assert seq < rand  # the paper's ~0.8x sequential read advantage
    assert 0.5 < seq / rand < 0.95


def test_deallocate_releases_space():
    env, ssd = make_ssd()

    def proc(env):
        for i in range(8):
            yield env.process(ssd.write(i * 4096, 4096))
        yield env.process(ssd.drain())
        yield env.process(ssd.deallocate(0, 8 * 4096))

    run(env, proc(env))
    assert ssd.occupied_bytes == 0
    assert ssd.array.total_valid_bytes() == 0


def test_prime_fill_matches_timed_state():
    env, ssd = make_ssd()
    ssd.prime_sequential_fill(64)
    assert ssd.occupied_bytes == 64 * 4096
    assert ssd.pagemap.mapped_units == 64

    def proc(env):
        yield env.process(ssd.read(0, 4096))

    run(env, proc(env))  # primed data is readable


def test_address_validation():
    env, ssd = make_ssd()
    with pytest.raises(AddressError):
        run(env, ssd.write(0, 0))
    with pytest.raises(AddressError):
        run(env, ssd.write(ssd.user_capacity_bytes, 4096))
    with pytest.raises(AddressError):
        run(env, ssd.write(100, 512))  # unaligned offset


def test_gc_reclaims_space_under_overwrite_pressure():
    env, ssd = make_ssd(blocks_per_plane=4, gc_threshold_fraction=0.2)
    span_units = ssd.n_units // 2

    def proc(env):
        # Overwrite half the device several times over.
        for round_index in range(6):
            for unit in range(span_units):
                yield env.process(ssd.write(unit * 4096, 4096))
        yield env.process(ssd.drain())

    run(env, proc(env), limit=300e6)
    assert ssd.counters.gc_runs > 0
    assert ssd.counters.gc_erased_blocks > 0
    assert ssd.occupied_bytes == span_units * 4096
    # Mapping stays consistent: every live unit readable.
    def check(env):
        yield env.process(ssd.read(0, 4096))

    run(env, check(env))


def test_counters_track_host_traffic():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.write(0, 8192))
        yield env.process(ssd.drain())
        yield env.process(ssd.read(0, 8192))

    run(env, proc(env))
    assert ssd.counters.host_writes == 1
    assert ssd.counters.host_write_bytes == 8192
    assert ssd.counters.host_reads == 1
    assert ssd.counters.host_read_bytes == 8192
