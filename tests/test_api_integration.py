"""Integration tests for the host APIs and experiment rigs."""


import pytest

from repro.core.experiment import (
    build_block_rig,
    build_hash_rig,
    build_kv_rig,
    build_lsm_rig,
    lab_geometry,
)
from repro.errors import (
    AddressError,
    DeviceFullError,
    UncorrectableReadError,
)
from repro.faults.model import FaultConfig
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.blob import layout_blob
from repro.kvftl.population import KeyScheme
from repro.nvme.command import NvmeStatus
from repro.units import KIB


def test_kv_rig_roundtrip_through_api():
    rig = build_kv_rig(lab_geometry(4))

    def session(env):
        yield env.process(rig.api.store(b"api-key-00000001", 4096))
        value = yield env.process(rig.api.retrieve(b"api-key-00000001"))
        present = yield env.process(rig.api.exist(b"api-key-00000001"))
        yield env.process(rig.api.delete(b"api-key-00000001"))
        return value, present

    value, present = rig.env.run_until_complete(
        rig.env.process(session(rig.env))
    )
    assert (value, present) == (4096, True)
    assert rig.driver.commands_submitted == 4
    assert rig.cpu.total_busy_us > 0


def test_large_key_uses_two_commands_per_op():
    rig = build_kv_rig(lab_geometry(4))
    big_key = b"k" * 64

    def session(env):
        yield env.process(rig.api.store(big_key, 1024))

    rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert rig.driver.commands_submitted == 2


def test_block_rig_rw_through_api():
    rig = build_block_rig(lab_geometry(4))

    def session(env):
        yield env.process(rig.api.write(0, 8192))
        yield env.process(rig.device.drain())
        yield env.process(rig.api.read(0, 8192))
        yield env.process(rig.api.deallocate(0, 8192))

    rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert rig.device.counters.host_reads == 1
    assert rig.device.occupied_bytes == 0


def test_rigs_are_isolated_environments():
    first = build_kv_rig(lab_geometry(4))
    second = build_kv_rig(lab_geometry(4))
    assert first.env is not second.env

    def session(env, api):
        yield env.process(api.store(b"iso-key-00000001", 100))

    first.env.run_until_complete(
        first.env.process(session(first.env, first.api))
    )
    assert first.device.live_kvps == 1
    assert second.device.live_kvps == 0
    assert second.env.now == 0.0


def test_same_workload_across_all_four_stacks():
    """Every adapter executes the same op stream without error."""
    spec = WorkloadSpec(
        n_ops=300,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=KeyScheme(prefix=b"xstk", digits=12),
        value_bytes=2 * KIB,
        seed=3,
    )
    read_spec = WorkloadSpec(
        n_ops=150,
        op="read",
        pattern=Pattern.UNIFORM,
        population=300,
        key_scheme=KeyScheme(prefix=b"xstk", digits=12),
        value_bytes=2 * KIB,
        seed=5,
    )
    geometry = lab_geometry(8)
    stacks = {
        "kv": build_kv_rig(geometry),
        "lsm": build_lsm_rig(geometry),
        "hash": build_hash_rig(geometry),
    }
    results = {}
    for name, rig in stacks.items():
        inserted = execute_workload(
            rig.env, rig.adapter, generate_operations(spec), queue_depth=4
        )
        read = execute_workload(
            rig.env, rig.adapter, generate_operations(read_spec), queue_depth=4
        )
        assert inserted.completed_ops == 300, name
        assert read.completed_ops == 150, name
        results[name] = (inserted.latency.mean(), read.latency.mean())
    block_rig = build_block_rig(geometry)
    adapter = block_rig.adapter(2 * KIB)
    inserted = execute_workload(
        block_rig.env, adapter, generate_operations(spec), queue_depth=4
    )
    assert inserted.completed_ops == 300
    # The RQ1 ordering holds even at this tiny scale: the LSM stack burns
    # far more host CPU than the KV stack.  (Its *latency* advantage only
    # erodes under sustained load, which Fig. 2's bench exercises.)
    assert (
        stacks["lsm"].cpu.total_busy_us > 3 * stacks["kv"].cpu.total_busy_us
    )


def test_failed_reads_counted_not_raised_by_runner():
    rig = build_kv_rig(lab_geometry(4))
    spec = WorkloadSpec(
        n_ops=50,
        op="read",
        pattern=Pattern.UNIFORM,
        population=50,
        key_scheme=KeyScheme(prefix=b"none", digits=12),
        value_bytes=0,
        seed=11,
    )
    result = execute_workload(
        rig.env, rig.adapter, generate_operations(spec), queue_depth=2
    )
    assert result.completed_ops == 0
    assert result.failed_ops == 50  # nothing was ever stored


def test_device_full_propagates_through_kv_api_with_status():
    """A full device surfaces as DeviceFullError -> CAPACITY_EXCEEDED."""
    # A fat over-provisioning fraction makes the byte-capacity bound bind
    # well before physical pages run out, so the refusal is exact: fill
    # to capacity untimed, then the very next new pair must be rejected.
    from repro.kvftl.config import KVSSDConfig

    rig = build_kv_rig(lab_geometry(4), config=KVSSDConfig(overprovision=0.4))
    device = rig.device
    scheme = KeyScheme(prefix=b"full", digits=12)
    footprint = layout_blob(
        scheme.key_bytes, 4096, device.array.geometry.page_bytes,
        device.config,
    ).footprint_bytes
    device.fast_fill(
        (device.user_capacity_bytes - device.stats.device_bytes) // footprint,
        4096, scheme,
    )

    def session(env):
        yield env.process(rig.api.store(b"one-pair-too-many", 4096))

    with pytest.raises(DeviceFullError) as excinfo:
        rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert excinfo.value.nvme_status == NvmeStatus.CAPACITY_EXCEEDED
    assert rig.driver.commands_failed == 1
    assert rig.driver.last_status == NvmeStatus.CAPACITY_EXCEEDED


def test_device_full_propagates_through_block_api_with_status(monkeypatch):
    """The block wrapper tags and accounts DeviceFullError identically."""
    rig = build_block_rig(lab_geometry(4))

    def full_write(offset, nbytes, span=None):
        raise DeviceFullError("no free blocks available")
        yield  # pragma: no cover - makes this a generator

    monkeypatch.setattr(rig.device, "write", full_write)

    def session(env):
        yield env.process(rig.api.write(0, 8192))

    with pytest.raises(DeviceFullError) as excinfo:
        rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert excinfo.value.nvme_status == NvmeStatus.CAPACITY_EXCEEDED
    assert rig.driver.commands_failed == 1
    assert rig.driver.last_status == NvmeStatus.CAPACITY_EXCEEDED


def test_out_of_range_block_read_maps_to_lba_status():
    rig = build_block_rig(lab_geometry(4))

    def session(env):
        yield env.process(
            rig.api.read(rig.device.user_capacity_bytes, 8192)
        )

    with pytest.raises(AddressError) as excinfo:
        rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert excinfo.value.nvme_status == NvmeStatus.LBA_OUT_OF_RANGE
    assert rig.driver.commands_failed == 1


def test_uncorrectable_read_surfaces_through_kv_api():
    rig = build_kv_rig(lab_geometry(4), fault_config=FaultConfig())
    key = b"api-media-error1"

    def store(env):
        yield env.process(rig.api.store(key, 4096))

    rig.env.run_until_complete(rig.env.process(store(rig.env)))
    rig.env.run(until=rig.env.now + 100_000.0)  # flush to flash
    rig.device.array.faults.schedule("read_uncorrectable")

    def retrieve(env):
        yield env.process(rig.api.retrieve(key))

    with pytest.raises(UncorrectableReadError) as excinfo:
        rig.env.run_until_complete(rig.env.process(retrieve(rig.env)))
    assert excinfo.value.nvme_status == NvmeStatus.UNRECOVERED_READ_ERROR
    assert rig.driver.last_status == NvmeStatus.UNRECOVERED_READ_ERROR
    assert rig.device.stats.uncorrectable_reads == 1


def test_sync_api_slower_and_hungrier_than_async():
    async_rig = build_kv_rig(lab_geometry(4), sync=False)
    sync_rig = build_kv_rig(lab_geometry(4), sync=True)

    def one_store(rig):
        def session(env):
            started = env.now
            yield env.process(rig.api.store(b"sync-key-0000001", 1024))
            return env.now - started

        return rig.env.run_until_complete(rig.env.process(session(rig.env)))

    one_store(async_rig)
    one_store(sync_rig)
    assert sync_rig.cpu.total_busy_us > async_rig.cpu.total_busy_us
