"""Unit tests for the extent-based file system."""

import pytest

from repro.api.block import BlockDeviceAPI
from repro.blockftl.device import BlockSSD
from repro.errors import ConfigurationError, DeviceFullError
from repro.flash.geometry import Geometry
from repro.hostkv.fs.ext4 import SimFileSystem
from repro.metrics.cpu import CpuAccountant
from repro.nvme.driver import KernelDeviceDriver
from repro.sim.engine import Environment
from repro.units import KIB, MIB


def make_fs(blocks_per_plane=16):
    geometry = Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )
    env = Environment()
    device = BlockSSD(env, geometry)
    driver = KernelDeviceDriver(env, CpuAccountant(env))
    api = BlockDeviceAPI(env, device, driver)
    return env, device, SimFileSystem(env, api)


def run(env, generator):
    process = env.process(generator)
    return env.run_until_complete(process, limit=env.now + 600e6)


def test_create_append_read_lifecycle():
    env, _device, fs = make_fs()

    def proc(env):
        yield env.process(fs.create("a.sst"))
        yield env.process(fs.append("a.sst", 100 * KIB))
        yield env.process(fs.read("a.sst", 0, 4 * KIB))
        yield env.process(fs.read("a.sst", 96 * KIB, 4 * KIB))

    run(env, proc(env))
    assert fs.exists("a.sst")
    assert fs.size("a.sst") == 100 * KIB
    assert fs.files() == ["a.sst"]


def test_duplicate_create_rejected():
    env, _device, fs = make_fs()

    def proc(env):
        yield env.process(fs.create("x"))

    run(env, proc(env))
    with pytest.raises(ConfigurationError):
        run(env, fs.create("x"))


def test_read_past_eof_rejected():
    env, _device, fs = make_fs()

    def proc(env):
        yield env.process(fs.create("x"))
        yield env.process(fs.append("x", 8 * KIB))

    run(env, proc(env))
    with pytest.raises(ConfigurationError):
        run(env, fs.read("x", 4 * KIB, 8 * KIB))


def test_unlink_frees_space_and_trims():
    env, device, fs = make_fs()
    free_before = fs.free_bytes()

    def proc(env):
        yield env.process(fs.create("big"))
        yield env.process(fs.append("big", 2 * MIB))
        yield env.process(device.drain())
        occupied = device.occupied_bytes
        yield env.process(fs.unlink("big"))
        return occupied

    occupied_during = run(env, proc(env))
    assert occupied_during >= 2 * MIB
    assert fs.free_bytes() == free_before
    assert not fs.exists("big")
    # TRIM reached the device: journal writes remain, file data gone.
    assert device.occupied_bytes < 64 * KIB


def test_allocation_exhaustion_raises_and_rolls_back():
    env, _device, fs = make_fs(blocks_per_plane=2)
    free_before = fs.free_bytes()

    def proc(env):
        yield env.process(fs.create("huge"))
        yield env.process(fs.append("huge", free_before + MIB))

    with pytest.raises(DeviceFullError):
        run(env, proc(env))
    assert fs.free_bytes() == free_before  # partial allocation rolled back


def test_free_list_coalesces():
    env, _device, fs = make_fs()

    def proc(env):
        for name in ("a", "b", "c"):
            yield env.process(fs.create(name))
            yield env.process(fs.append(name, 64 * KIB))
        yield env.process(fs.unlink("a"))
        yield env.process(fs.unlink("b"))
        yield env.process(fs.unlink("c"))

    run(env, proc(env))
    # Everything released: the free list should be one coalesced run.
    assert len(fs._free) == 1


def test_journal_writes_accumulate():
    env, _device, fs = make_fs()

    def proc(env):
        yield env.process(fs.create("j"))
        yield env.process(fs.append("j", 4 * KIB))
        yield env.process(fs.unlink("j"))

    run(env, proc(env))
    assert fs.journal_writes == 3
    assert fs.metadata_ops == 3


def test_prime_file_readable_without_io():
    env, device, fs = make_fs()
    fs.prime_file("primed.sst", 256 * KIB)
    assert fs.size("primed.sst") == 256 * KIB
    assert device.occupied_bytes >= 256 * KIB

    def proc(env):
        yield env.process(fs.read("primed.sst", 128 * KIB, 4 * KIB))

    run(env, proc(env))


def test_multi_extent_reads_cover_whole_file():
    env, _device, fs = make_fs()

    def proc(env):
        yield env.process(fs.create("frag"))
        # Interleave with another file to fragment the allocations.
        yield env.process(fs.create("other"))
        for _ in range(4):
            yield env.process(fs.append("frag", 32 * KIB))
            yield env.process(fs.append("other", 32 * KIB))
        yield env.process(fs.read("frag", 0, 128 * KIB))

    run(env, proc(env))
    assert fs.size("frag") == 128 * KIB
