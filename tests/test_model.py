"""Tests for the analytical performance model, including sim validation."""

import pytest

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.core.model import KVSSDModel
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.units import KIB, MIB


def make_model(**config_kwargs):
    return KVSSDModel(lab_geometry(8), KVSSDConfig(**config_kwargs))


# -- index occupancy model -----------------------------------------------------


def test_resident_fraction_monotone_decreasing():
    model = make_model()
    fractions = [model.resident_fraction(kvps) for kvps in
                 (0, 10_000, 100_000, 1_000_000)]
    assert fractions[0] == 1.0
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))


def test_lookup_reads_zero_at_low_fill():
    model = make_model()
    assert model.lookup_flash_reads(100) == 0.0


def test_merge_cost_grows_with_occupancy():
    model = make_model()
    low = model.merge_flash_ops_per_insert(1000)
    high = model.merge_flash_ops_per_insert(model.max_kvps())
    assert low == 0.0
    assert high > 1.0


# -- latency model ----------------------------------------------------------------


def test_store_latency_grows_with_occupancy():
    model = make_model()
    assert model.store_latency_us(16, 512, model.max_kvps()) > 4 * (
        model.store_latency_us(16, 512, 0)
    )


def test_retrieve_latency_grows_with_value_size():
    model = make_model()
    small = model.retrieve_latency_us(16, 512)
    large = model.retrieve_latency_us(16, 64 * KIB)
    assert large > small


def test_split_penalty_in_store_latency():
    model = make_model()
    below = model.store_latency_us(16, 24 * KIB)
    above = model.store_latency_us(16, 25 * KIB)
    assert above > below + 100.0


def test_large_key_adds_command_overhead():
    model = make_model()
    small_key = model.store_latency_us(16, 1024)
    large_key = model.store_latency_us(64, 1024)
    assert large_key > small_key


def test_breakdown_sums_to_total():
    model = make_model()
    breakdown = model.store_breakdown(16, 4 * KIB, 0)
    assert breakdown.total_us == pytest.approx(
        breakdown.host_us
        + breakdown.controller_us
        + breakdown.index_us
        + breakdown.index_flash_us
        + breakdown.data_flash_us
        + breakdown.buffer_us
    )


# -- throughput model -----------------------------------------------------------------


def test_store_throughput_decreases_with_value_size():
    model = make_model()
    small = model.store_throughput_kops(16, 512)
    large = model.store_throughput_kops(16, 64 * KIB)
    assert small > large


def test_throughput_halves_for_two_command_keys_when_submission_bound():
    model = make_model()
    one_command = model.store_throughput_kops(16, 512)
    two_commands = model.store_throughput_kops(64, 512)
    assert two_commands < one_command
    assert two_commands / one_command < 0.75


# -- capacity model --------------------------------------------------------------------


def test_max_kvps_full_scale_matches_paper():
    model = make_model()
    billions = model.max_kvps_at_capacity(3.84e12) / 1e9
    assert 2.8 < billions < 3.4


def test_space_amplification_matches_blob_layout():
    model = make_model()
    assert model.space_amplification(16, 50) == pytest.approx(1024 / 66)
    assert model.space_amplification(16, 4096) < 1.05


# -- validation against the simulator ------------------------------------------------------


def _simulate_qd1(op, value_bytes, n_ops=400):
    config = KVSSDConfig(index_dram_bytes=64 * MIB)
    rig = build_kv_rig(lab_geometry(8), config=config)
    scheme = KeyScheme(prefix=b"mdl-", digits=12)
    insert_spec = WorkloadSpec(
        n_ops=n_ops,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=scheme,
        value_bytes=value_bytes,
        seed=73,
    )
    insert_run = execute_workload(
        rig.env, rig.adapter, generate_operations(insert_spec), 1
    )
    if op == "insert":
        return insert_run.latency.mean()
    read_spec = WorkloadSpec(
        n_ops=n_ops,
        op="read",
        pattern=Pattern.UNIFORM,
        population=n_ops,
        key_scheme=scheme,
        value_bytes=value_bytes,
        seed=79,
    )
    read_run = execute_workload(
        rig.env, rig.adapter, generate_operations(read_spec), 1
    )
    return read_run.latency.mean()


@pytest.mark.parametrize("value_bytes", [512, 4 * KIB])
def test_model_predicts_store_latency(value_bytes):
    model = KVSSDModel(lab_geometry(8), KVSSDConfig(index_dram_bytes=64 * MIB))
    predicted = model.store_latency_us(16, value_bytes)
    simulated = _simulate_qd1("insert", value_bytes)
    assert abs(predicted - simulated) / simulated < 0.25


@pytest.mark.parametrize("value_bytes", [512, 4 * KIB])
def test_model_predicts_retrieve_latency(value_bytes):
    model = KVSSDModel(lab_geometry(8), KVSSDConfig(index_dram_bytes=64 * MIB))
    predicted = model.retrieve_latency_us(16, value_bytes)
    simulated = _simulate_qd1("read", value_bytes)
    assert abs(predicted - simulated) / simulated < 0.25
