"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.block import BlockDeviceAPI
from repro.blockftl.device import BlockSSD
from repro.errors import KeyNotFoundError
from repro.faults.model import FaultConfig, FaultInjector
from repro.flash.geometry import Geometry
from repro.hostkv.hashkv.store import HashKVStore
from repro.kvbench.distributions import ZipfianGenerator, sliding_window_indices
from repro.kvftl.device import KVSSD
from repro.metrics.cpu import CpuAccountant
from repro.nvme.driver import KernelDeviceDriver
from repro.sim.engine import Environment
from repro.kvftl.blob import layout_blob, usable_page_bytes
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.keyhash import hash_fraction, iterator_bucket, key_hash64
from repro.kvftl.population import KeyScheme
from repro.metrics.latency import percentile
from repro.nvme.command import commands_for_key
from repro.units import KIB, align_up, ceil_div

CFG = KVSSDConfig()
PAGE = 32 * KIB


# -- units ---------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=10**6))
def test_align_up_properties(value, alignment):
    aligned = align_up(value, alignment)
    assert aligned >= value
    assert aligned % alignment == 0
    assert aligned - value < alignment


@given(st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=10**6))
def test_ceil_div_properties(numerator, denominator):
    result = ceil_div(numerator, denominator)
    assert result * denominator >= numerator
    assert (result - 1) * denominator < numerator or result == 0


# -- blob layout ------------------------------------------------------------------


@given(st.integers(min_value=4, max_value=255),
       st.integers(min_value=0, max_value=2 * 1024 * 1024))
@settings(max_examples=300)
def test_layout_invariants(key_bytes, value_bytes):
    layout = layout_blob(key_bytes, value_bytes, PAGE, CFG)
    usable = usable_page_bytes(PAGE, CFG)
    # Footprint covers the raw blob and respects the minimum allocation.
    assert layout.footprint_bytes >= layout.raw_bytes
    assert layout.footprint_bytes >= CFG.min_alloc_bytes
    # Fragments partition the footprint and each fits a page.
    assert sum(layout.fragments) == layout.footprint_bytes
    assert all(0 < fragment <= usable for fragment in layout.fragments)
    # Split iff the raw blob exceeds the usable page area.
    assert layout.is_split == (layout.raw_bytes > usable)
    if layout.is_split:
        assert layout.data_fragments == ceil_div(layout.raw_bytes, usable)
        assert layout.offset_pages == layout.data_fragments - 1
    else:
        assert layout.fragments == [layout.footprint_bytes]


@given(st.integers(min_value=4, max_value=255),
       st.integers(min_value=0, max_value=64 * 1024))
def test_layout_monotone_in_value_size(key_bytes, value_bytes):
    smaller = layout_blob(key_bytes, value_bytes, PAGE, CFG)
    larger = layout_blob(key_bytes, value_bytes + 1, PAGE, CFG)
    assert larger.footprint_bytes >= smaller.footprint_bytes


# -- hashing ------------------------------------------------------------------------


@given(st.binary(min_size=1, max_size=255))
def test_hash_is_deterministic_and_bounded(key):
    assert key_hash64(key) == key_hash64(key)
    assert 0 <= key_hash64(key) < (1 << 64)
    assert 0.0 <= hash_fraction(key) < 1.0


@given(st.binary(min_size=4, max_size=64))
def test_iterator_bucket_is_prefix(key):
    bucket = iterator_bucket(key)
    assert len(bucket) == 4
    assert bucket == key[:4]


# -- key schemes -----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**9),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=10, max_value=14))
def test_key_scheme_bijective(index, prefix_len, digits):
    scheme = KeyScheme(prefix=b"p" * prefix_len, digits=digits)
    if index >= 10 ** digits:
        return  # out of representable range for this scheme
    key = scheme.key_for(index)
    assert scheme.index_of(key) == index
    assert len(key) == scheme.key_bytes


@given(st.binary(min_size=1, max_size=32))
def test_key_scheme_rejects_noise(noise):
    scheme = KeyScheme(prefix=b"key-", digits=12)
    recovered = scheme.index_of(noise)
    if recovered is not None:
        # Anything accepted must round-trip exactly.
        assert scheme.key_for(recovered) == noise


# -- NVMe commands -------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=255))
def test_command_count_monotone_in_key_size(key_bytes):
    assert commands_for_key(key_bytes) in (1, 2)
    if key_bytes > 16:
        assert commands_for_key(key_bytes) == 2


# -- distributions ----------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=1, max_value=500),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50)
def test_zipfian_draws_in_range(population, count, seed):
    generator = ZipfianGenerator(population, seed=seed)
    for index in generator.indices(count):
        assert 0 <= index < population


@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=1, max_value=500),
       st.floats(min_value=0.001, max_value=1.0))
@settings(max_examples=50)
def test_sliding_window_in_range(population, count, fraction):
    for index in sliding_window_indices(population, count, fraction, seed=1):
        assert 0 <= index < population


# -- percentiles ----------------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_bounded_and_monotone(samples, fraction):
    samples.sort()
    value = percentile(samples, fraction)
    epsilon = 1e-6 * max(1.0, abs(samples[-1]))
    assert samples[0] - epsilon <= value <= samples[-1] + epsilon
    if fraction < 1.0:
        assert percentile(samples, fraction) <= percentile(samples, 1.0) + epsilon


# -- firmware parity under faults ---------------------------------------------------------------------


def _parity_geometry():
    return Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )


#: Corrected-only statistical faults: retries fire, but every read still
#: returns good data, so observable results must not change.
_LOW_FAULTS = FaultConfig(seed=3, read_corrected_prob=0.05)


def _parity_key(index):
    return b"parity-%06d" % index


def _run_ops(device_ops, env):
    """Drive the op list sequentially; returns the observation sequence."""
    results = []

    def driver():
        for apply_op in device_ops:
            try:
                outcome = yield from apply_op()
            except KeyNotFoundError:
                outcome = "missing"
            results.append(outcome)

    env.run_until_complete(env.process(driver()), limit=env.now + 600e6)
    return results


def _kv_observations(ops, fault_config):
    env = Environment()
    faults = FaultInjector(fault_config) if fault_config else None
    ssd = KVSSD(env, _parity_geometry(), faults=faults)

    def apply(op, index, value_bytes):
        def thunk():
            key = _parity_key(index)
            if op == "put":
                yield from ssd.store(key, value_bytes)
                return "ok"
            if op == "get":
                return (yield from ssd.retrieve(key))
            yield from ssd.delete(key)
            return "ok"
        return thunk

    return _run_ops([apply(*op) for op in ops], env)


def _hash_observations(ops, fault_config):
    env = Environment()
    faults = FaultInjector(fault_config) if fault_config else None
    device = BlockSSD(env, _parity_geometry(), faults=faults)
    driver = KernelDeviceDriver(env, CpuAccountant(env))
    store = HashKVStore(env, BlockDeviceAPI(env, device, driver))

    def apply(op, index, value_bytes):
        def thunk():
            key = _parity_key(index)
            if op == "put":
                yield from store.put(key, value_bytes)
                return "ok"
            if op == "get":
                return (yield from store.get(key))
            yield from store.delete(key)
            return "ok"
        return thunk

    return _run_ops([apply(*op) for op in ops], env)


_PARITY_OPS = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.integers(min_value=0, max_value=19),
        st.sampled_from([100, 1000, 4096]),
    ),
    min_size=5,
    max_size=30,
)


@given(_PARITY_OPS)
@settings(max_examples=10, deadline=None)
def test_firmware_parity_with_and_without_faults(ops):
    """Both personalities agree on every op outcome, faults or not.

    The same random put/get/delete stream runs on the KV-SSD and on the
    hash store over a block-SSD, clean and under corrected-only fault
    injection.  All four runs must observe identical (outcome, value
    size) sequences: the personalities implement the same KV contract,
    and recovered media errors are invisible to the host.
    """
    kv_clean = _kv_observations(ops, None)
    hash_clean = _hash_observations(ops, None)
    assert kv_clean == hash_clean
    kv_faulty = _kv_observations(ops, _LOW_FAULTS)
    hash_faulty = _hash_observations(ops, _LOW_FAULTS)
    assert kv_faulty == kv_clean
    assert hash_faulty == hash_clean


# -- engine event ordering -----------------------------------------------------


_SCHEDULE_STEPS = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=12),  # delays in 0.25us quanta
        min_size=0,
        max_size=6,
    ),
    min_size=1,
    max_size=8,
)


def _firing_order(bucket_us, steps):
    """Schedule ``steps`` of timeouts from an advancing driver process;
    return the recorded (fire_time, tag) order."""
    env = Environment(bucket_us=bucket_us)
    fired = []

    def recorder(tag):
        def callback(event):
            fired.append((env.now, tag))
        return callback

    def driver(env):
        tag = 0
        for step in steps:
            for quanta in step:
                timeout = env.timeout(quanta * 0.25)
                timeout.callbacks.append(recorder(tag))
                tag += 1
            # Advance the clock between scheduling bursts so bursts land
            # relative to different 'now' values (and different buckets).
            yield env.timeout(1.0)

    env.process(driver(env))
    env.run()
    return fired


@given(_SCHEDULE_STEPS)
@settings(max_examples=40, deadline=None)
def test_event_order_stable_across_bucket_widths(steps):
    """The calendar queue is an implementation detail: any bucket width
    fires the same events in the same (time, scheduling-seq) order.

    Delays include zero and repeated values, so ties at one timestamp
    and zero-delay immediates are exercised; widths span sub-quantum
    buckets, the NAND-tuned default, and one bucket holding everything.
    """
    reference = _firing_order(64.0, steps)
    assert _firing_order(0.25, steps) == reference
    assert _firing_order(3.0, steps) == reference
    assert _firing_order(1e9, steps) == reference
    # Total order: sorted by fire time, ties broken by scheduling order
    # within each burst (tags increase with scheduling sequence).
    times = [time for time, _tag in reference]
    assert times == sorted(times)
