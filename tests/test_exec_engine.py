"""Tests for the sweep-execution engine (`repro.exec`).

The load-bearing claims verified here:

* a spec's results are byte-identical at any worker count (parallel
  workers run the same self-contained cells, and assembly is in spec
  order, never completion order);
* a cache hit returns a result indistinguishable from a cold compute;
* the cache key covers everything that determines a cell's output —
  function identity, canonicalized kwargs, seed, and code-version salt.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.figures import _fig5_kv_cell, _fig8_cell, fig4_value_size_concurrency
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, canonical, code_version_salt, point_key
from repro.exec.runner import ExecReport, SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.faults.run import FaultPoint, run_fault_sweep
from repro.kvbench.workload import Pattern
from repro.trace.export import to_chrome_trace
from repro.trace.run import run_traced


# ---------------------------------------------------------------------------
# Module-level cells for engine-mechanics tests (picklable by reference).
# ---------------------------------------------------------------------------


def _double(x: int) -> Dict[str, int]:
    return {"x": x, "twice": 2 * x}


def _logged_cell(log_path: str, x: int) -> int:
    """Append one line per invocation so tests can count real computes."""
    with open(log_path, "a", encoding="ascii") as handle:
        handle.write(f"{x}\n")
    return x * 10


@dataclass(frozen=True)
class _ConfigA:
    knob: int = 3


@dataclass(frozen=True)
class _ConfigB:
    knob: int = 3


def _spec(name: str, values: Sequence[int]) -> SweepSpec:
    return SweepSpec(name, tuple(
        SweepPoint(label=f"x{v}", fn=_double, kwargs=dict(x=v))
        for v in values
    ))


# ---------------------------------------------------------------------------
# Fingerprints: serialize results so float-exact comparison is literal.
# ---------------------------------------------------------------------------


def _fault_fingerprint(points: Sequence[FaultPoint]) -> str:
    return json.dumps([
        {
            "personality": p.personality,
            "rate": p.rate,
            "completed": p.run.completed_ops,
            "failed": p.run.failed_ops,
            "latency": p.latency_summary(),
            "stats": dataclasses.asdict(p.stats),
            "injected": p.injected,
            "read_only": p.read_only,
        }
        for p in points
    ], sort_keys=True)


def _trace_fingerprint(report: Any) -> str:
    document = to_chrome_trace(report.collector)
    runs = {
        name: {
            "completed": run.completed_ops,
            "latency": run.latency.summary().as_dict(),
            "stats": dataclasses.asdict(run.device_stats),
        }
        for name, run in report.runs.items()
    }
    return json.dumps(
        {"trace": document, "runs": runs, "dropped": report.collector.dropped},
        sort_keys=True, default=str,
    )


# ---------------------------------------------------------------------------
# Spec and point validation
# ---------------------------------------------------------------------------


class TestSpec:
    def test_point_computes_inline(self):
        point = SweepPoint(label="x4", fn=_double, kwargs=dict(x=4))
        assert point() == {"x": 4, "twice": 8}

    def test_point_rejects_lambda(self):
        with pytest.raises(ConfigurationError, match="module-level"):
            SweepPoint(label="bad", fn=lambda: 1)

    def test_point_rejects_local_function(self):
        def local_cell() -> int:
            return 1

        with pytest.raises(ConfigurationError, match="module-level"):
            SweepPoint(label="bad", fn=local_cell)

    def test_point_rejects_noncallable(self):
        with pytest.raises(ConfigurationError, match="callable"):
            SweepPoint(label="bad", fn=42)  # type: ignore[arg-type]

    def test_spec_rejects_duplicate_labels(self):
        points = (
            SweepPoint(label="same", fn=_double, kwargs=dict(x=1)),
            SweepPoint(label="same", fn=_double, kwargs=dict(x=2)),
        )
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepSpec("dupes", points)

    def test_spec_coerces_iterable_points(self):
        spec = SweepSpec("gen", (
            SweepPoint(label=f"x{v}", fn=_double, kwargs=dict(x=v))
            for v in (1, 2, 3)
        ))
        assert isinstance(spec.points, tuple)
        assert len(spec) == 3


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


class TestPointKey:
    def test_kwargs_order_is_irrelevant(self):
        a = SweepPoint(label="a", fn=_double, kwargs=dict(x=1, y=2))
        b = SweepPoint(label="b", fn=_double, kwargs=dict(y=2, x=1))
        assert point_key(a, "salt") == point_key(b, "salt")

    def test_label_is_not_part_of_the_key(self):
        a = SweepPoint(label="first", fn=_double, kwargs=dict(x=1))
        b = SweepPoint(label="second", fn=_double, kwargs=dict(x=1))
        assert point_key(a, "salt") == point_key(b, "salt")

    def test_kwargs_change_the_key(self):
        a = SweepPoint(label="a", fn=_double, kwargs=dict(x=1))
        b = SweepPoint(label="a", fn=_double, kwargs=dict(x=2))
        assert point_key(a, "salt") != point_key(b, "salt")

    def test_seed_changes_the_key(self):
        a = SweepPoint(label="a", fn=_double, kwargs=dict(x=1), seed=0)
        b = SweepPoint(label="a", fn=_double, kwargs=dict(x=1), seed=1)
        assert point_key(a, "salt") != point_key(b, "salt")

    def test_salt_changes_the_key(self):
        point = SweepPoint(label="a", fn=_double, kwargs=dict(x=1))
        assert point_key(point, "salt-1") != point_key(point, "salt-2")

    def test_function_identity_changes_the_key(self):
        a = SweepPoint(label="a", fn=_double, kwargs=dict(x=1))
        b = SweepPoint(label="a", fn=_logged_cell,
                       kwargs=dict(log_path="unused", x=1))
        assert point_key(a, "salt") != point_key(b, "salt")

    def test_float_notation_is_canonical(self):
        a = SweepPoint(label="a", fn=_double, kwargs=dict(x=1e-3))
        b = SweepPoint(label="a", fn=_double, kwargs=dict(x=0.001))
        assert point_key(a, "salt") == point_key(b, "salt")

    def test_equal_fields_different_dataclass_hash_apart(self):
        a = canonical(_ConfigA())
        b = canonical(_ConfigB())
        assert a["fields"] == b["fields"]
        assert a != b

    def test_canonical_handles_bytes_enums_containers(self):
        value = {
            "scheme": b"key-",
            "pattern": Pattern.UNIFORM,
            "sizes": (512, 4096),
            "nested": {"f": 0.25},
        }
        reordered = dict(reversed(list(value.items())))
        # Serializable, and independent of dict insertion order.
        assert (json.dumps(canonical(value), sort_keys=True)
                == json.dumps(canonical(reordered), sort_keys=True))
        # Tuples and lists hash apart (different results downstream).
        assert canonical((1, 2)) != canonical([1, 2])

    def test_canonical_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical(object())

    def test_code_version_salt_is_memoized_hex(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        assert len(salt) == 64
        int(salt, 16)

    def test_code_version_salt_computed_once_per_process(self, monkeypatch):
        """The source-tree walk happens once; later calls hit the memo.

        Sweep workers call the salt once per cached point, so a
        recomputation would re-hash the whole package tree per point.
        """
        from repro.exec import cache as cache_mod

        salt = code_version_salt()  # ensure the memo is populated

        def recomputed(*_args, **_kwargs):
            raise AssertionError("code_version_salt re-walked the source tree")

        monkeypatch.setattr(cache_mod.hashlib, "sha256", recomputed)
        assert code_version_salt() == salt


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"answer": 42.5})
        hit, value = cache.get("ab" * 32)
        assert hit and value == {"answer": 42.5}
        assert cache.entry_count() == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.get("cd" * 32)
        assert not hit and value is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, [1, 2, 3])
        path = tmp_path / key[:2] / f"{key}.pkl"
        path.write_bytes(b"definitely not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None
        assert not path.exists()

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(f"{i:02d}" + "0" * 62, i)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert cache.entry_count() == 4


# ---------------------------------------------------------------------------
# Runner mechanics
# ---------------------------------------------------------------------------


class TestRunner:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SweepRunner(workers=0)

    def test_execute_spec_without_runner_is_inline(self):
        results = execute_spec(_spec("inline", (3, 1, 2)), None)
        assert results == [{"x": 3, "twice": 6}, {"x": 1, "twice": 2},
                           {"x": 2, "twice": 4}]

    def test_serial_run_preserves_spec_order(self, tmp_path):
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        results = runner.run(_spec("ordered", (5, 4, 3)))
        assert [r["x"] for r in results] == [5, 4, 3]

    def test_parallel_run_preserves_spec_order(self, tmp_path):
        runner = SweepRunner(workers=4, cache=False)
        results = runner.run(_spec("ordered", (9, 8, 7, 6)))
        assert [r["x"] for r in results] == [9, 8, 7, 6]

    def test_cache_disabled_recomputes(self, tmp_path):
        log = tmp_path / "calls.log"
        spec = SweepSpec("logged", (
            SweepPoint(label="x1", fn=_logged_cell,
                       kwargs=dict(log_path=str(log), x=1)),
        ))
        runner = SweepRunner(workers=1, cache=False)
        runner.run(spec)
        runner.run(spec)
        assert log.read_text().count("\n") == 2
        assert runner.last_report.hits == 0

    def test_warm_cache_skips_computation(self, tmp_path):
        log = tmp_path / "calls.log"
        cache = ResultCache(tmp_path / "cache")
        spec = SweepSpec("logged", tuple(
            SweepPoint(label=f"x{v}", fn=_logged_cell,
                       kwargs=dict(log_path=str(log), x=v))
            for v in (1, 2, 3)
        ))
        cold = SweepRunner(workers=1, cache=cache).run(spec)
        warm_runner = SweepRunner(workers=1, cache=cache)
        warm = warm_runner.run(spec)
        assert warm == cold == [10, 20, 30]
        assert log.read_text().count("\n") == 3  # cold computes only
        report = warm_runner.last_report
        assert (report.hits, report.computed) == (3, 0)
        assert report.hit_rate == 1.0

    def test_report_format_mentions_the_sweep(self):
        report = ExecReport(spec_name="fig4", points=4, hits=3, computed=1,
                            workers=2, elapsed_s=0.5)
        text = report.format()
        assert "fig4" in text and "3 cached" in text and "workers=2" in text
        assert "75.0% hit rate" in text

    def test_empty_spec_hit_rate_is_zero(self):
        report = ExecReport(spec_name="empty", points=0, hits=0, computed=0,
                            workers=1, elapsed_s=0.0)
        assert report.hit_rate == 0.0


# ---------------------------------------------------------------------------
# Parallel/serial equivalence on the real experiments
# ---------------------------------------------------------------------------

_FAULT_KWARGS = dict(rates=(0.0, 2e-2), n_ops=100, blocks_per_plane=8,
                     queue_depth=4)


class TestEquivalence:
    def test_fig4_parallel_matches_serial(self):
        kwargs = dict(value_sizes=(4096, 16384), queue_depths=(1,),
                      n_ops=100, blocks_per_plane=8)
        serial = fig4_value_size_concurrency(**kwargs)
        parallel = fig4_value_size_concurrency(
            **kwargs, runner=SweepRunner(workers=4, cache=False)
        )
        assert parallel == serial

    def test_fault_sweep_parallel_matches_serial(self):
        serial = run_fault_sweep(**_FAULT_KWARGS)
        parallel = run_fault_sweep(
            **_FAULT_KWARGS, runner=SweepRunner(workers=4, cache=False)
        )
        assert _fault_fingerprint(parallel) == _fault_fingerprint(serial)

    def test_trace_parallel_matches_serial(self):
        serial = run_traced("fig5", n_ops=120)
        parallel = run_traced(
            "fig5", n_ops=120, runner=SweepRunner(workers=2, cache=False)
        )
        assert _trace_fingerprint(parallel) == _trace_fingerprint(serial)

    def test_frontend_sweep_serial_parallel_cached_identical(self, tmp_path):
        """The open-loop frontend sweep inherits the engine's guarantee:
        serial, process-pool parallel, and cache-served runs of the same
        spec are value-identical."""
        from repro.frontend.run import frontend_load_sweep

        kwargs = dict(loads_kops=(16.0, 256.0), n_requests=160,
                      blocks_per_plane=8)
        serial = frontend_load_sweep(**kwargs)
        parallel = frontend_load_sweep(
            **kwargs, runner=SweepRunner(workers=2, cache=False)
        )
        assert parallel == serial
        cache_dir = tmp_path / "cache"
        cold = frontend_load_sweep(
            **kwargs, runner=SweepRunner(workers=1, cache_dir=cache_dir)
        )
        warm_runner = SweepRunner(workers=1, cache_dir=cache_dir)
        warm = frontend_load_sweep(**kwargs, runner=warm_runner)
        assert cold == serial and warm == serial
        report = warm_runner.last_report
        assert report.hits == 2 and report.computed == 0

    def test_replay_sweeps_serial_parallel_cached_identical(self, tmp_path):
        """Both replay figures run through the engine, so they inherit
        the guarantee: serial, process-pool parallel, and cache-served
        runs of the same spec are value-identical."""
        from repro.core.figures import replay_rotation, replay_ttl_scan_mix

        rotation_kwargs = dict(rotate_every=(0, 64), n_ops=120,
                               population=256, working_set=32,
                               blocks_per_plane=8)
        mix_kwargs = dict(variants=("plain", "ttl+scan"), n_ops=120,
                          population=240, ttl_ops=80, blocks_per_plane=8)
        serial_rot = replay_rotation(**rotation_kwargs)
        serial_mix = replay_ttl_scan_mix(**mix_kwargs)
        parallel_rot = replay_rotation(
            **rotation_kwargs, runner=SweepRunner(workers=2, cache=False)
        )
        parallel_mix = replay_ttl_scan_mix(
            **mix_kwargs, runner=SweepRunner(workers=2, cache=False)
        )
        assert parallel_rot == serial_rot
        assert parallel_mix == serial_mix
        cache_dir = tmp_path / "cache"
        cold = replay_ttl_scan_mix(
            **mix_kwargs, runner=SweepRunner(workers=1, cache_dir=cache_dir)
        )
        warm_runner = SweepRunner(workers=1, cache_dir=cache_dir)
        warm = replay_ttl_scan_mix(**mix_kwargs, runner=warm_runner)
        assert cold == serial_mix and warm == serial_mix
        report = warm_runner.last_report
        assert report.hits == 2 and report.computed == 0

    def test_cache_hit_equals_cold_compute(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_fault_sweep(
            **_FAULT_KWARGS,
            runner=SweepRunner(workers=1, cache_dir=cache_dir),
        )
        warm_runner = SweepRunner(workers=1, cache_dir=cache_dir)
        warm = run_fault_sweep(**_FAULT_KWARGS, runner=warm_runner)
        assert _fault_fingerprint(warm) == _fault_fingerprint(cold)
        report = warm_runner.last_report
        assert report.hits == len(cold) and report.computed == 0

    @settings(max_examples=3, deadline=None)
    @given(
        n_ops=st.integers(min_value=20, max_value=60),
        key_bytes=st.sampled_from((8, 24)),
        value_bytes=st.sampled_from((512, 2048)),
    )
    def test_any_cell_inputs_are_worker_invariant(
        self, n_ops: int, key_bytes: int, value_bytes: int
    ) -> None:
        """Property: cells are pure, so worker count never changes results."""
        points = tuple(
            SweepPoint(
                label=f"{mode}/k{key_bytes}",
                fn=_fig8_cell,
                kwargs=dict(key_bytes=key_bytes, mode=mode,
                            value_bytes=value_bytes, n_ops=n_ops,
                            queue_depth=1 if mode == "sync" else 8,
                            blocks_per_plane=4),
            )
            for mode in ("sync", "async")
        )
        spec = SweepSpec("prop", points)
        serial = SweepRunner(workers=1, cache=False).run(spec)
        parallel = SweepRunner(workers=2, cache=False).run(spec)
        assert parallel == serial  # bandwidth floats, compared exactly

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="speedup is only observable with >=4 physical cores",
    )
    def test_parallel_speedup_on_four_cores(self):
        points = tuple(
            SweepPoint(
                label=f"kv/{i}",
                fn=_fig5_kv_cell,
                kwargs=dict(size=24 * 1024 + i, n_ops=400, queue_depth=32,
                            blocks_per_plane=8),
            )
            for i in range(8)
        )
        spec = SweepSpec("speedup", points)
        started = time.perf_counter()  # simlint: disable=SIM001
        serial = SweepRunner(workers=1, cache=False).run(spec)
        serial_s = time.perf_counter() - started  # simlint: disable=SIM001
        started = time.perf_counter()  # simlint: disable=SIM001
        parallel = SweepRunner(workers=4, cache=False).run(spec)
        parallel_s = time.perf_counter() - started  # simlint: disable=SIM001
        assert parallel == serial
        assert serial_s / parallel_s >= 2.0
