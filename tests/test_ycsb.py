"""Tests for the YCSB workload module (the paper's future-work item)."""

import pytest

from repro.core.experiment import build_kv_rig, build_lsm_rig, lab_geometry
from repro.errors import WorkloadError
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import OpType
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec, generate_ycsb
from repro.kvftl.population import KeyScheme


def spec_for(workload, n_ops=400, population=500, **kwargs):
    return YCSBSpec(
        workload=workload, n_ops=n_ops, population=population,
        value_bytes=500, **kwargs,
    )


# -- generation --------------------------------------------------------------


def test_mix_fractions_roughly_respected():
    spec = spec_for("A", n_ops=4000)
    kinds = [op.base.op for op in generate_ycsb(spec)]
    reads = sum(1 for kind in kinds if kind is OpType.READ)
    assert 0.42 < reads / len(kinds) < 0.58


def test_workload_c_is_read_only():
    spec = spec_for("C")
    for op in generate_ycsb(spec):
        assert op.base.op is OpType.READ
        assert not op.is_scan


def test_workload_d_reads_skew_to_latest():
    spec = spec_for("D", n_ops=3000, population=3000)
    read_indices = [
        op.base.key_index
        for op in generate_ycsb(spec)
        if op.base.op is OpType.READ
    ]
    newest_half = sum(1 for index in read_indices if index >= 1500)
    assert newest_half / len(read_indices) > 0.7


def test_workload_d_inserts_extend_keyspace():
    spec = spec_for("D", n_ops=3000, population=100)
    inserts = [
        op.base.key_index
        for op in generate_ycsb(spec)
        if op.base.op is OpType.INSERT
    ]
    assert inserts  # 5% of 3000
    assert min(inserts) == 100
    assert inserts == sorted(inserts)


def test_workload_e_mostly_scans():
    spec = spec_for("E", n_ops=2000)
    scans = sum(1 for op in generate_ycsb(spec) if op.is_scan)
    assert 0.9 < scans / 2000 <= 1.0


def test_workload_f_marks_rmw():
    spec = spec_for("F", n_ops=2000)
    rmws = sum(1 for op in generate_ycsb(spec) if op.scan_length == -1)
    assert 0.4 < rmws / 2000 < 0.6


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        YCSBSpec(workload="Z", n_ops=10, population=10)


def test_generation_is_deterministic():
    first = [(op.base.op, op.base.key) for op in generate_ycsb(spec_for("A"))]
    second = [(op.base.op, op.base.key) for op in generate_ycsb(spec_for("A"))]
    assert first == second


# -- execution against the stacks ------------------------------------------------


def _loaded_kv_rig(spec):
    rig = build_kv_rig(lab_geometry(8))
    rig.device.fast_fill(spec.population, spec.value_bytes, spec.key_scheme)
    return rig


def run_ycsb(rig, driver, spec):
    return execute_workload(
        rig.env, driver, generate_ycsb(spec), queue_depth=4, name="ycsb"
    )


def test_workload_a_runs_on_kv_ssd():
    spec = spec_for("A", n_ops=600)
    rig = _loaded_kv_rig(spec)
    driver = YCSBDriver(rig.adapter, spec)
    result = run_ycsb(rig, driver, spec)
    assert result.completed_ops == 600
    assert result.failed_ops == 0


def test_workload_e_scans_on_kv_ssd_via_iterator():
    spec = spec_for("E", n_ops=120, scan_length=10)
    rig = _loaded_kv_rig(spec)
    driver = YCSBDriver(rig.adapter, spec)
    result = run_ycsb(rig, driver, spec)
    assert driver.scans_run > 100
    assert result.completed_ops == 120


def test_workload_e_scans_on_lsm_natively():
    spec = spec_for("E", n_ops=120, scan_length=10,
                    key_scheme=KeyScheme(prefix=b"user", digits=12))
    rig = build_lsm_rig(lab_geometry(8))
    entries = {
        spec.key_scheme.key_for(i): spec.value_bytes
        for i in range(spec.population)
    }
    rig.store.prime_fill(entries, level=3)
    driver = YCSBDriver(rig.adapter, spec)
    result = run_ycsb(rig, driver, spec)
    assert driver.scans_run > 100
    assert result.completed_ops == 120


def test_workload_f_read_modify_write_composition():
    spec = spec_for("F", n_ops=400)
    rig = _loaded_kv_rig(spec)
    driver = YCSBDriver(rig.adapter, spec)
    reads_before = rig.device.counters.host_reads
    writes_before = rig.device.counters.host_writes
    run_ycsb(rig, driver, spec)
    assert driver.rmws_run > 100
    # Every RMW performed both a device read and a device write.
    assert rig.device.counters.host_reads - reads_before >= driver.rmws_run
    assert rig.device.counters.host_writes - writes_before >= driver.rmws_run


def test_lsm_scan_returns_live_ordered_bytes():
    rig = build_lsm_rig(lab_geometry(8))
    scheme = KeyScheme(prefix=b"scan", digits=12)
    entries = {scheme.key_for(i): 1000 for i in range(200)}
    rig.store.prime_fill(entries, level=3)

    def session(env):
        nbytes = yield env.process(rig.store.scan(scheme.key_for(50), 20))
        return nbytes

    nbytes = rig.env.run_until_complete(rig.env.process(session(rig.env)))
    assert nbytes == 20 * 1000
