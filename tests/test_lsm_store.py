"""Integration tests for the LSM store over the simulated device."""

import pytest

from repro.errors import KeyNotFoundError
from repro.flash.geometry import Geometry
from repro.hostkv.lsm.store import LSMConfig, LSMStore
from repro.sim.engine import Environment
from repro.units import KIB, MIB


def make_store(blocks_per_plane=24, **lsm_kwargs):
    from repro.api.block import BlockDeviceAPI
    from repro.blockftl.device import BlockSSD
    from repro.hostkv.fs.ext4 import SimFileSystem
    from repro.metrics.cpu import CpuAccountant
    from repro.nvme.driver import KernelDeviceDriver

    geometry = Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )
    env = Environment()
    device = BlockSSD(env, geometry)
    driver = KernelDeviceDriver(env, CpuAccountant(env))
    api = BlockDeviceAPI(env, device, driver)
    fs = SimFileSystem(env, api)
    defaults = dict(memtable_bytes=256 * KIB, level_base_bytes=1 * MIB,
                    sst_target_bytes=256 * KIB)
    defaults.update(lsm_kwargs)
    store = LSMStore(env, fs, LSMConfig(**defaults))
    return env, device, store


def run(env, generator, limit_delta=600e6):
    process = env.process(generator)
    return env.run_until_complete(process, limit=env.now + limit_delta)


def key(i):
    return b"lsmkey-%08d" % i


def test_put_get_from_memtable():
    env, _device, store = make_store()

    def proc(env):
        yield env.process(store.put(key(1), 4096))
        value = yield env.process(store.get(key(1)))
        return value

    assert run(env, proc(env)) == 4096


def test_get_absent_raises():
    env, _device, store = make_store()

    def proc(env):
        yield env.process(store.put(key(1), 100))

    run(env, proc(env))
    with pytest.raises(KeyNotFoundError):
        run(env, store.get(key(2)))


def test_delete_visible_through_all_levels():
    env, _device, store = make_store()

    def proc(env):
        for i in range(500):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())
        yield env.process(store.delete(key(7)))
        yield env.process(store.drain())

    run(env, proc(env))
    with pytest.raises(KeyNotFoundError):
        run(env, store.get(key(7)))

    def alive(env):
        value = yield env.process(store.get(key(8)))
        return value

    assert run(env, alive(env)) == 2048


def test_flush_creates_sstables_and_unlinks_wal():
    env, _device, store = make_store()

    def proc(env):
        for i in range(400):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())

    run(env, proc(env))
    assert store.flushes_run >= 1
    total_tables = sum(len(level) for level in store.levels)
    assert total_tables >= 1
    # No stale WAL files linger after their memtables flushed.
    wal_files = [name for name in store.fs.files() if "wal" in name]
    assert len(wal_files) <= 1


def test_compaction_triggers_and_preserves_data():
    env, _device, store = make_store()
    n = 3000

    def proc(env):
        for i in range(n):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())

    run(env, proc(env))
    assert store.compactions_run >= 1
    assert store.live_entries() == n
    assert len(store.levels[0]) < store.config.l0_compaction_trigger

    def spot_check(env):
        values = []
        for i in (0, 1, n // 2, n - 1):
            value = yield env.process(store.get(key(i)))
            values.append(value)
        return values

    assert run(env, spot_check(env)) == [2048] * 4


def test_updates_newest_wins_after_compaction():
    env, _device, store = make_store()

    def proc(env):
        for i in range(1500):
            yield env.process(store.put(key(i), 1000))
        for i in range(0, 1500, 2):
            yield env.process(store.put(key(i), 3000))
        yield env.process(store.drain())
        even = yield env.process(store.get(key(10)))
        odd = yield env.process(store.get(key(11)))
        return even, odd

    assert run(env, proc(env)) == (3000, 1000)
    assert store.live_entries() == 1500


def test_space_amplification_near_paper_value():
    env, _device, store = make_store()

    def proc(env):
        for i in range(2500):
            yield env.process(store.put(key(i), 2048))
        for i in range(2500):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())

    run(env, proc(env))
    # Leveled steady state: modest obsolescence (paper cites 1.111).
    assert store.space_amplification() < 1.6


def test_stalls_recorded_under_write_burst():
    env, _device, store = make_store(
        memtable_bytes=64 * KIB, l0_compaction_trigger=2, l0_stall_limit=2
    )

    def proc(env):
        for i in range(2000):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())

    run(env, proc(env))
    assert store.stall_time_us > 0.0


def test_prime_fill_supports_reads_and_updates():
    env, _device, store = make_store()
    entries = {key(i): 2048 for i in range(2000)}
    store.prime_fill(entries, level=3)
    assert store.live_entries() == 2000

    def proc(env):
        value = yield env.process(store.get(key(55)))
        yield env.process(store.put(key(55), 4000))
        updated = yield env.process(store.get(key(55)))
        return value, updated

    assert run(env, proc(env)) == (2048, 4000)


def test_host_cpu_charged_heavily_vs_raw_device():
    env, _device, store = make_store()

    def proc(env):
        for i in range(300):
            yield env.process(store.put(key(i), 2048))
        yield env.process(store.drain())

    run(env, proc(env))
    cpu = store.fs.block_api.driver.cpu
    per_op = cpu.total_busy_us / 300
    # The thick-stack cost the paper's RQ1 is about: tens of us per op.
    assert per_op > 20.0
