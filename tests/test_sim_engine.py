"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        yield env.timeout(2.5)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 7.5
    assert env.now == 7.5


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_delivered_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result * 2

    process = env.process(parent(env))
    env.run()
    assert process.value == 84


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_exception_propagates_into_waiting_process():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(failing(env))
        except ValueError as exc:
            return f"caught {exc}"
        return "missed"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught boom"


def test_unhandled_process_exception_surfaces_via_run_until_complete():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("unattended")

    process = env.process(failing(env))
    with pytest.raises(RuntimeError, match="unattended"):
        env.run_until_complete(process)


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(10.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_bound_stops_before_later_events():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(5.0)
        fired.append("early")
        yield env.timeout(100.0)
        fired.append("late")

    env.process(proc(env))
    env.run(until=50.0)
    assert fired == ["early"]
    assert env.now == 50.0


def test_run_until_rejects_past_target():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    assert env.now == 10.0
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_yield_already_processed_event_resumes():
    env = Environment()
    early = env.event()
    early.succeed("old news")

    def late_joiner(env):
        yield env.timeout(10.0)
        value = yield early
        return value

    process = env.process(late_joiner(env))
    env.run()
    assert process.value == "old news"


def test_all_of_collects_every_value():
    env = Environment()

    def worker(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        children = [
            env.process(worker(env, delay, delay * 10))
            for delay in (3.0, 1.0, 2.0)
        ]
        values = yield env.all_of(children)
        return values

    process = env.process(parent(env))
    env.run()
    assert process.value == [30.0, 10.0, 20.0]
    assert env.now == 3.0


def test_any_of_fires_on_first_completion():
    env = Environment()

    def worker(env, delay):
        yield env.timeout(delay)
        return delay

    def parent(env):
        first = yield env.any_of(
            [env.process(worker(env, 5.0)), env.process(worker(env, 2.0))]
        )
        return first

    process = env.process(parent(env))
    env.run()
    assert process.value == 2.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def parent(env):
        values = yield env.all_of([])
        return values

    process = env.process(parent(env))
    env.run()
    assert process.value == []


def test_run_until_complete_detects_deadlock():
    env = Environment()

    def stuck(env):
        yield env.event()  # never triggered

    process = env.process(stuck(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_complete(process)


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42  # not an Event

    process = env.process(bad(env))
    with pytest.raises(SimulationError, match="yield"):
        env.run_until_complete(process)


def test_processed_event_counter_increases():
    env = Environment()

    def proc(env):
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.processed_events >= 5


def test_determinism_two_runs_identical():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, tag, delay):
            for step in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag, step))

        env.process(worker(env, "x", 1.5))
        env.process(worker(env, "y", 2.0))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


def test_all_of_with_already_processed_child():
    env = Environment()

    def fast(env):
        yield env.timeout(1.0)
        return "fast"

    def slow(env):
        yield env.timeout(4.0)
        return "slow"

    def parent(env):
        done = env.process(fast(env))
        pending = env.process(slow(env))
        # Let the fast child complete (and its callbacks drain) first.
        yield env.timeout(2.0)
        assert done.processed
        values = yield env.all_of([done, pending])
        return values

    process = env.process(parent(env))
    env.run()
    assert process.value == ["fast", "slow"]
    assert env.now == 4.0


def test_any_of_with_already_processed_child_fires_immediately():
    env = Environment()

    def fast(env):
        yield env.timeout(1.0)
        return "fast"

    def slow(env):
        yield env.timeout(50.0)
        return "slow"

    def parent(env):
        done = env.process(fast(env))
        env.process(slow(env))
        yield env.timeout(2.0)
        first = yield env.any_of([done, env.process(slow(env))])
        return first, env.now

    process = env.process(parent(env))
    env.run()
    # The condition resolves from the already-processed child without
    # waiting on the still-running one.
    assert process.value == ("fast", 2.0)


def test_all_of_fails_when_a_child_fails():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("child broke")

    def healthy(env):
        yield env.timeout(3.0)
        return "ok"

    def parent(env):
        try:
            yield env.all_of(
                [env.process(failing(env)), env.process(healthy(env))]
            )
        except ValueError as exc:
            return f"caught: {exc}"
        return "no error"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught: child broke"


def test_any_of_fails_when_first_child_fails():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("first to fire")

    def healthy(env):
        yield env.timeout(3.0)
        return "ok"

    def parent(env):
        try:
            yield env.any_of(
                [env.process(failing(env)), env.process(healthy(env))]
            )
        except ValueError as exc:
            return f"caught: {exc}"
        return "no error"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught: first to fire"


def test_all_of_with_already_failed_processed_child():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("early failure")

    def parent(env):
        # A waiter keeps the failure from surfacing as unhandled while
        # the child's callbacks drain.
        child = env.process(failing(env))
        try:
            yield child
        except ValueError:
            pass
        assert child.processed and child.failed
        try:
            yield env.all_of([child, env.timeout(5.0)])
        except ValueError as exc:
            return f"caught: {exc}"
        return "no error"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught: early failure"


def test_determinism_event_order_with_composites():
    """Two identical runs process events in the exact same order."""

    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, tag, delay, steps):
            for step in range(steps):
                yield env.timeout(delay)
                trace.append((env.now, tag, step))
            return tag

        def coordinator(env):
            group_a = [
                env.process(worker(env, f"a{i}", 1.0 + i * 0.5, 3))
                for i in range(3)
            ]
            first = yield env.any_of(group_a)
            trace.append((env.now, "any", first))
            rest = yield env.all_of(group_a)
            trace.append((env.now, "all", tuple(rest)))

        env.process(coordinator(env))
        # Same-time events must also tie-break identically.
        env.process(worker(env, "b", 1.0, 4))
        env.run()
        return trace, env.processed_events

    first_trace, first_count = build_and_run()
    second_trace, second_count = build_and_run()
    assert first_trace == second_trace
    assert first_count == second_count
