"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        yield env.timeout(2.5)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 7.5
    assert env.now == 7.5


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_delivered_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result * 2

    process = env.process(parent(env))
    env.run()
    assert process.value == 84


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_exception_propagates_into_waiting_process():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(failing(env))
        except ValueError as exc:
            return f"caught {exc}"
        return "missed"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught boom"


def test_unhandled_process_exception_surfaces_via_run_until_complete():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("unattended")

    process = env.process(failing(env))
    with pytest.raises(RuntimeError, match="unattended"):
        env.run_until_complete(process)


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(10.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_bound_stops_before_later_events():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(5.0)
        fired.append("early")
        yield env.timeout(100.0)
        fired.append("late")

    env.process(proc(env))
    env.run(until=50.0)
    assert fired == ["early"]
    assert env.now == 50.0


def test_run_until_rejects_past_target():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    assert env.now == 10.0
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_yield_already_processed_event_resumes():
    env = Environment()
    early = env.event()
    early.succeed("old news")

    def late_joiner(env):
        yield env.timeout(10.0)
        value = yield early
        return value

    process = env.process(late_joiner(env))
    env.run()
    assert process.value == "old news"


def test_all_of_collects_every_value():
    env = Environment()

    def worker(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        children = [
            env.process(worker(env, delay, delay * 10))
            for delay in (3.0, 1.0, 2.0)
        ]
        values = yield env.all_of(children)
        return values

    process = env.process(parent(env))
    env.run()
    assert process.value == [30.0, 10.0, 20.0]
    assert env.now == 3.0


def test_any_of_fires_on_first_completion():
    env = Environment()

    def worker(env, delay):
        yield env.timeout(delay)
        return delay

    def parent(env):
        first = yield env.any_of(
            [env.process(worker(env, 5.0)), env.process(worker(env, 2.0))]
        )
        return first

    process = env.process(parent(env))
    env.run()
    assert process.value == 2.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def parent(env):
        values = yield env.all_of([])
        return values

    process = env.process(parent(env))
    env.run()
    assert process.value == []


def test_run_until_complete_detects_deadlock():
    env = Environment()

    def stuck(env):
        yield env.event()  # never triggered

    process = env.process(stuck(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_complete(process)


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42  # not an Event

    process = env.process(bad(env))
    with pytest.raises(SimulationError, match="yield"):
        env.run_until_complete(process)


def test_processed_event_counter_increases():
    env = Environment()

    def proc(env):
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.processed_events >= 5


def test_determinism_two_runs_identical():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, tag, delay):
            for step in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag, step))

        env.process(worker(env, "x", 1.5))
        env.process(worker(env, "y", 2.0))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
