"""Unit tests for LSM components: memtable, SSTables, cache, compaction."""

import pytest

from repro.errors import ConfigurationError
from repro.hostkv.lsm.compaction import (
    CompactionTask,
    level_bytes,
    level_target_bytes,
    merge_runs,
    overlapping,
    pick_compaction,
    split_entries,
)
from repro.hostkv.lsm.memtable import Memtable
from repro.hostkv.lsm.sstable import BlockCache, SSTable
from repro.units import KIB, MIB


# -- Memtable -----------------------------------------------------------------


def test_memtable_put_get():
    table = Memtable(1 * MIB)
    table.put(b"k1", 100)
    table.put(b"k2", None)  # tombstone
    assert table.get(b"k1") == 100
    assert table.get(b"k2") is None
    assert b"k1" in table
    assert len(table) == 2


def test_memtable_overwrite_updates_bytes():
    table = Memtable(1 * MIB)
    table.put(b"k", 1000)
    first = table.bytes_used
    table.put(b"k", 10)
    assert table.bytes_used < first
    assert len(table) == 1


def test_memtable_fullness():
    table = Memtable(1000)
    assert not table.is_full
    table.put(b"key", 2000)
    assert table.is_full


def test_memtable_rejects_negative():
    table = Memtable(100)
    with pytest.raises(ConfigurationError):
        table.put(b"k", -5)


# -- SSTable ------------------------------------------------------------------


def test_sstable_metadata():
    table = SSTable(1, {b"b": 100, b"a": 200, b"c": None})
    assert table.min_key == b"a"
    assert table.max_key == b"c"
    assert table.covers(b"b")
    assert not table.covers(b"d")
    assert len(table) == 3
    assert table.file_bytes > table.data_bytes


def test_sstable_empty_rejected():
    with pytest.raises(ConfigurationError):
        SSTable(0, {})


def test_sstable_overlap_detection():
    left = SSTable(1, {b"a": 1, b"m": 1})
    right = SSTable(1, {b"n": 1, b"z": 1})
    middle = SSTable(1, {b"k": 1, b"p": 1})
    assert not left.overlaps(right)
    assert left.overlaps(middle)
    assert right.overlaps(middle)


def test_sstable_block_placement_ordered():
    entries = {b"key-%04d" % i: 4096 for i in range(64)}
    table = SSTable(1, entries, block_bytes=4 * KIB)
    blocks = [table.block_for(b"key-%04d" % i) for i in range(64)]
    assert blocks == sorted(blocks)  # sorted keys map to increasing blocks
    assert blocks[-1] <= table.n_blocks - 1
    assert len(set(blocks)) > 1  # entries actually spread over blocks


def test_sstable_block_offset_bounds():
    table = SSTable(1, {b"a": 4096})
    assert table.block_offset(0) == 0
    with pytest.raises(ConfigurationError):
        table.block_offset(table.n_blocks)


# -- BlockCache -----------------------------------------------------------------


def test_block_cache_hit_after_insert():
    cache = BlockCache(40 * KIB, 4 * KIB)
    assert not cache.lookup(1, 0)
    cache.insert(1, 0)
    assert cache.lookup(1, 0)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_block_cache_lru_eviction():
    cache = BlockCache(8 * KIB, 4 * KIB)  # two blocks
    cache.insert(1, 0)
    cache.insert(1, 1)
    cache.insert(1, 2)  # evicts (1, 0)
    assert not cache.lookup(1, 0)
    assert cache.lookup(1, 2)


def test_block_cache_drop_table():
    cache = BlockCache(40 * KIB, 4 * KIB)
    cache.insert(1, 0)
    cache.insert(2, 0)
    cache.drop_table(1)
    assert not cache.lookup(1, 0)
    assert cache.lookup(2, 0)


def test_block_cache_must_hold_one_block():
    with pytest.raises(ConfigurationError):
        BlockCache(100, 4 * KIB)


# -- compaction policy -----------------------------------------------------------


def test_level_targets_grow_by_ratio():
    assert level_target_bytes(1, 16 * MIB, 10) == 16 * MIB
    assert level_target_bytes(2, 16 * MIB, 10) == 160 * MIB
    with pytest.raises(ConfigurationError):
        level_target_bytes(0, 16 * MIB, 10)


def test_pick_compaction_prefers_l0():
    levels = [
        [SSTable(0, {b"a%d" % i: 100}) for i in range(4)],
        [SSTable(1, {b"a0": 100, b"z": 100})],
        [],
    ]
    task = pick_compaction(levels, l0_trigger=4, base_bytes=MIB, ratio=10)
    assert task is not None
    assert task.upper_level == 0
    assert len(task.upper_inputs) == 4
    assert len(task.lower_inputs) == 1  # the overlapping L1 run


def test_pick_compaction_none_when_healthy():
    levels = [[SSTable(0, {b"a": 100})], [], []]
    assert pick_compaction(levels, 4, MIB, 10) is None


def test_pick_compaction_over_budget_level():
    big = {b"key-%05d" % i: 4096 for i in range(600)}  # ~2.5 MiB
    levels = [[], [SSTable(1, big)], []]
    task = pick_compaction(levels, 4, base_bytes=1 * MIB, ratio=10)
    assert task is not None
    assert task.upper_level == 1


def test_merge_runs_newest_wins():
    old = SSTable(1, {b"k": 100, b"only-old": 5})
    new = SSTable(0, {b"k": 200})
    task = CompactionTask(0, [new], [old])
    merged = merge_runs(task, is_bottom=False)
    assert merged[b"k"] == 200
    assert merged[b"only-old"] == 5


def test_merge_runs_l0_order_by_sst_id():
    first = SSTable(0, {b"k": 1})
    second = SSTable(0, {b"k": 2})  # created later -> newer
    task = CompactionTask(0, [first, second], [])
    assert merge_runs(task, is_bottom=False)[b"k"] == 2


def test_merge_drops_tombstones_at_bottom():
    table = SSTable(0, {b"dead": None, b"live": 7})
    task = CompactionTask(0, [table], [])
    assert merge_runs(task, is_bottom=True) == {b"live": 7}
    assert merge_runs(task, is_bottom=False) == {b"dead": None, b"live": 7}


def test_split_entries_respects_target_and_order():
    entries = {b"key-%04d" % i: 4096 for i in range(100)}
    tables = split_entries(entries, target_bytes=64 * KIB, level=2,
                           block_bytes=4 * KIB)
    assert len(tables) > 1
    assert sum(len(t) for t in tables) == 100
    # Disjoint, sorted ranges.
    for left, right in zip(tables, tables[1:]):
        assert left.max_key < right.min_key


def test_overlapping_helper():
    probe = SSTable(1, {b"m": 1, b"q": 1})
    candidates = [
        SSTable(2, {b"a": 1, b"c": 1}),
        SSTable(2, {b"n": 1, b"o": 1}),
        SSTable(2, {b"z": 1}),
    ]
    found = overlapping(probe, candidates)
    assert len(found) == 1
    assert found[0].min_key == b"n"


def test_level_bytes_sums_files():
    tables = [SSTable(1, {b"a": 100}), SSTable(1, {b"b": 200})]
    assert level_bytes(tables) == sum(t.file_bytes for t in tables)
