"""Golden-figure regression suite.

Each registered case (``tests.conftest.FIGURE_CASES``) runs a
deliberately small version of one paper figure and reduces it to a flat
dict of named *shape metrics* — latencies, ratios, bandwidths, counters —
that capture what the figure shows.  The metrics are diffed against
``tests/golden/<fig>.json``; because every experiment is seeded and
simulated-time based, a drift beyond the (tiny) tolerance means the
model's behavior changed, not that the host got slower.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python -m pytest tests/test_golden_figures.py --regen-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from tests.conftest import FIGURE_CASES, figure_result

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Relative tolerance for metric comparison.  Runs are bit-deterministic
#: and JSON round-trips floats exactly, so this only needs to absorb
#: benign serialization noise — anything larger is real drift.
REL_TOL = 1e-9


@pytest.mark.parametrize("fig", sorted(FIGURE_CASES))
def test_golden_figure(fig: str, regen_golden: bool) -> None:
    metrics = FIGURE_CASES[fig].metrics(figure_result(fig))
    path = GOLDEN_DIR / f"{fig}.json"
    if regen_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"figure": fig, "metrics": metrics}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path}; run pytest with --regen-golden"
    )
    golden = json.loads(path.read_text(encoding="ascii"))["metrics"]
    assert sorted(metrics) == sorted(golden), (
        f"{fig}: metric names changed; regenerate goldens if intentional"
    )
    drifted = []
    for name in sorted(metrics):
        live, want = metrics[name], golden[name]
        if not math.isclose(live, want, rel_tol=REL_TOL, abs_tol=0.0):
            drifted.append(f"  {name}: golden {want!r} -> live {live!r}")
    assert not drifted, (
        f"{fig} drifted beyond rel_tol={REL_TOL} "
        f"({len(drifted)}/{len(metrics)} metrics):\n" + "\n".join(drifted)
    )
