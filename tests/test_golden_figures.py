"""Golden-figure regression suite.

Each case runs a deliberately small version of one paper figure and
reduces it to a flat dict of named *shape metrics* — latencies, ratios,
bandwidths, counters — that capture what the figure shows.  The metrics
are diffed against ``tests/golden/<fig>.json``; because every experiment
is seeded and simulated-time based, a drift beyond the (tiny) tolerance
means the model's behavior changed, not that the host got slower.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python -m pytest tests/test_golden_figures.py --regen-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Dict, Union

import pytest

from repro.core.figures import (
    fig2_end_to_end,
    fig3_index_occupancy,
    fig4_value_size_concurrency,
    fig5_packing_bandwidth,
    fig6_foreground_gc,
    fig7_space_amplification,
    fig8_key_size_bandwidth,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Relative tolerance for metric comparison.  Runs are bit-deterministic
#: and JSON round-trips floats exactly, so this only needs to absorb
#: benign serialization noise — anything larger is real drift.
REL_TOL = 1e-9

Metric = Union[int, float]


def _fig2_metrics() -> Dict[str, Metric]:
    result = fig2_end_to_end(
        n_ops=250,
        queue_depth=8,
        systems=("kvssd", "rocksdb"),
        patterns=("rand",),
        blocks_per_plane=8,
    )
    metrics: Dict[str, Metric] = {}
    for system in ("kvssd", "rocksdb"):
        for phase in ("insert", "update", "read"):
            metrics[f"{system}.rand.{phase}_us"] = (
                result.latency_us[system]["rand"][phase]
            )
        metrics[f"{system}.cpu_us_per_op"] = result.cpu_us_per_op[system]
    metrics["rocksdb_over_kv.insert"] = (
        result.latency_us["rocksdb"]["rand"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    return metrics


def _fig3_metrics() -> Dict[str, Metric]:
    result = fig3_index_occupancy(
        value_bytes=512,
        low_fraction=0.0005,
        high_fraction=0.5,
        measured_ops=200,
        blocks_per_plane=8,
    )
    metrics: Dict[str, Metric] = {
        "low_kvps": result.low_kvps,
        "high_kvps": result.high_kvps,
    }
    for device in ("kv", "block"):
        for occupancy in ("low", "high"):
            for op in ("read", "write"):
                metrics[f"{device}.{occupancy}.{op}_us"] = (
                    result.latency_us[device][occupancy][op]
                )
    metrics["kv.read_degradation"] = (
        result.latency_us["kv"]["high"]["read"]
        / result.latency_us["kv"]["low"]["read"]
    )
    return metrics


def _fig4_metrics() -> Dict[str, Metric]:
    result = fig4_value_size_concurrency(
        value_sizes=(4096,),
        queue_depths=(1, 64),
        n_ops=200,
        blocks_per_plane=8,
    )
    metrics: Dict[str, Metric] = {}
    for op in ("read", "write"):
        for qd in (1, 64):
            metrics[f"ratio.{op}.qd{qd}"] = result.ratio[op][qd][4096]
            metrics[f"kv.{op}.qd{qd}_us"] = (
                result.latency_us["kv"][op][qd][4096]
            )
    return metrics


def _fig5_metrics() -> Dict[str, Metric]:
    sizes = (24 * 1024, 25 * 1024)
    result = fig5_packing_bandwidth(
        value_sizes=sizes,
        n_ops=200,
        queue_depth=32,
        blocks_per_plane=8,
    )
    metrics: Dict[str, Metric] = {}
    for size in sizes:
        metrics[f"kv.{size}.mib_s"] = result.kv_mib_s[size]
        metrics[f"block.{size}.mib_s"] = result.block_mib_s[size]
        metrics[f"kv.{size}.fragments"] = result.kv_fragments[size]
    return metrics


def _fig6_metrics() -> Dict[str, Metric]:
    result = fig6_foreground_gc(
        blocks_per_plane=4,
        scenarios=("kv-uniform", "rocksdb-uniform"),
    )
    metrics: Dict[str, Metric] = {}
    for scenario in ("kv-uniform", "rocksdb-uniform"):
        metrics[f"{scenario}.foreground_gc_runs"] = (
            result.foreground_gc_runs[scenario]
        )
        metrics[f"{scenario}.waf"] = result.stats_summary[scenario]["waf"]
        metrics[f"{scenario}.gc_moved_mib"] = (
            result.stats_summary[scenario]["gc_moved_mib"]
        )
        metrics[f"{scenario}.p99_us"] = (
            result.latency_summary[scenario]["p99"]
        )
        series = result.series[scenario]
        metrics[f"{scenario}.series_len"] = len(series)
        metrics[f"{scenario}.series_min"] = min(series)
        metrics[f"{scenario}.series_max"] = max(series)
    return metrics


def _fig7_metrics() -> Dict[str, Metric]:
    sizes = (50, 1024, 4096)
    result = fig7_space_amplification(
        value_sizes=sizes, kvps=3000, blocks_per_plane=8
    )
    metrics: Dict[str, Metric] = {
        "max_kvps_full_scale": result.max_kvps_full_scale,
        "rocksdb.sa": result.sa["rocksdb"][sizes[0]],
    }
    for size in sizes:
        metrics[f"kvssd.{size}.sa"] = result.sa["kvssd"][size]
        metrics[f"kvssd.{size}.analytic"] = result.kv_analytic[size]
        metrics[f"aerospike.{size}.sa"] = result.sa["aerospike"][size]
    return metrics


def _fig8_metrics() -> Dict[str, Metric]:
    keys = (16, 24)
    result = fig8_key_size_bandwidth(
        key_sizes=keys, n_ops=400, blocks_per_plane=8
    )
    metrics: Dict[str, Metric] = {}
    for key_bytes in keys:
        metrics[f"commands.k{key_bytes}"] = result.commands[key_bytes]
        for mode in ("sync", "async"):
            metrics[f"{mode}.k{key_bytes}.mib_s"] = (
                result.mib_s[mode][key_bytes]
            )
    metrics["cliff_ratio.sync"] = result.cliff_ratio("sync")
    metrics["cliff_ratio.async"] = result.cliff_ratio("async")
    return metrics


GOLDEN_CASES: Dict[str, Callable[[], Dict[str, Metric]]] = {
    "fig2": _fig2_metrics,
    "fig3": _fig3_metrics,
    "fig4": _fig4_metrics,
    "fig5": _fig5_metrics,
    "fig6": _fig6_metrics,
    "fig7": _fig7_metrics,
    "fig8": _fig8_metrics,
}


@pytest.mark.parametrize("fig", sorted(GOLDEN_CASES))
def test_golden_figure(fig: str, regen_golden: bool) -> None:
    metrics = GOLDEN_CASES[fig]()
    path = GOLDEN_DIR / f"{fig}.json"
    if regen_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"figure": fig, "metrics": metrics}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path}; run pytest with --regen-golden"
    )
    golden = json.loads(path.read_text(encoding="ascii"))["metrics"]
    assert sorted(metrics) == sorted(golden), (
        f"{fig}: metric names changed; regenerate goldens if intentional"
    )
    drifted = []
    for name in sorted(metrics):
        live, want = metrics[name], golden[name]
        if not math.isclose(live, want, rel_tol=REL_TOL, abs_tol=0.0):
            drifted.append(f"  {name}: golden {want!r} -> live {live!r}")
    assert not drifted, (
        f"{fig} drifted beyond rel_tol={REL_TOL} "
        f"({len(drifted)}/{len(metrics)} metrics):\n" + "\n".join(drifted)
    )
