"""Tests for the prefix-iteration surface (SNIA iterators)."""

import pytest

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.errors import ConfigurationError
from repro.kvbench.generators import (
    ExpirySpec,
    ScanMixSpec,
    generate_expiry,
    generate_scan_mix,
)
from repro.kvbench.runner import execute_workload
from repro.kvbench.traces import TraceWorkload, merge_traces
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec
from repro.kvftl.iterator import IteratorBuckets
from repro.kvftl.keyhash import iterator_bucket
from repro.kvftl.population import KeyScheme


def run(rig, generator):
    return rig.env.run_until_complete(rig.env.process(generator))


def test_iterate_returns_prefix_matches_sorted():
    rig = build_kv_rig(lab_geometry(4))

    def session(env):
        for i in (3, 1, 2):
            yield env.process(rig.api.store(b"pref-key-%07d" % i, 128))
        yield env.process(rig.api.store(b"othr-key-0000001", 128))
        keys = yield env.process(rig.api.iterate(b"pref"))
        return keys

    keys = run(rig, session(rig.env))
    assert keys == [b"pref-key-%07d" % i for i in (1, 2, 3)]


def test_iterate_sees_primed_population():
    rig = build_kv_rig(lab_geometry(4))
    scheme = KeyScheme(prefix=b"popl", digits=12)
    rig.device.fast_fill(500, 256, scheme)

    def session(env):
        keys = yield env.process(rig.api.iterate(b"popl", limit=1000))
        return keys

    keys = run(rig, session(rig.env))
    assert len(keys) == 500
    assert keys[0] == scheme.key_for(0)


def test_iterate_excludes_deleted_pairs():
    rig = build_kv_rig(lab_geometry(4))

    def session(env):
        for i in range(4):
            yield env.process(rig.api.store(b"delt-key-%07d" % i, 64))
        yield env.process(rig.api.delete(b"delt-key-0000002"))
        keys = yield env.process(rig.api.iterate(b"delt"))
        return keys

    keys = run(rig, session(rig.env))
    assert b"delt-key-0000002" not in keys
    assert len(keys) == 3


def test_iterate_respects_limit():
    rig = build_kv_rig(lab_geometry(4))
    scheme = KeyScheme(prefix=b"many", digits=12)
    rig.device.fast_fill(300, 64, scheme)

    def session(env):
        keys = yield env.process(rig.api.iterate(b"many", limit=10))
        return keys

    assert len(run(rig, session(rig.env))) == 10


def test_iterate_validates_prefix():
    rig = build_kv_rig(lab_geometry(4))
    with pytest.raises(ConfigurationError):
        run(rig, rig.device.iterate(b"toolong"))
    with pytest.raises(ConfigurationError):
        run(rig, rig.device.iterate(b"abcd", limit=0))


def test_iterate_cost_scales_with_bucket_size():
    rig = build_kv_rig(lab_geometry(4))
    big_scheme = KeyScheme(prefix=b"bigb", digits=12)
    rig.device.fast_fill(20_000, 64, big_scheme)

    def timed(env, prefix):
        started = env.now
        yield env.process(rig.api.iterate(prefix, limit=5))
        return env.now - started

    def store_one(env):
        yield env.process(rig.api.store(b"tiny-key-0000001", 64))

    run(rig, store_one(rig.env))
    small = run(rig, timed(rig.env, b"tiny"))
    large = run(rig, timed(rig.env, b"bigb"))
    assert large > small  # more bucket pages to walk


# ---------------------------------------------------------------------------
# Iterator buckets under trace-generated churn (ISSUE 10)
# ---------------------------------------------------------------------------


def test_bucket_accounting_matches_model_dict_under_expiry_churn():
    """Drive the bucket accountant with a multi-prefix insert/delete
    stream and cross-check every count against a plain model dict."""
    buckets = IteratorBuckets(flush_keys=16)
    model = {}
    flushes = 0
    streams = [
        generate_expiry(ExpirySpec(
            n_ops=120, population=40, ttl_us=900.0,
            key_scheme=KeyScheme(prefix=b"exp%d" % i, digits=12),
            seed=9 + i,
        ))
        for i in range(3)
    ]
    for record in merge_traces(*streams):
        bucket = iterator_bucket(record.key)
        if record.op == "insert":
            pages = buckets.note_store(record.key)
            assert pages in (0, 1)
            flushes += pages
            model[bucket] = model.get(bucket, 0) + 1
        elif record.op == "delete":
            buckets.note_delete(record.key)
            model[bucket] -= 1
            if model[bucket] == 0:
                del model[bucket]
        # reads/updates never change bucket membership
        assert buckets.total_keys == sum(model.values())
    assert buckets.buckets() == sorted(model)
    for bucket, count in model.items():
        assert buckets.bucket_count(bucket) == count
    assert buckets.bucket_page_writes == flushes > 0


def test_bucket_delete_from_empty_bucket_is_an_error():
    buckets = IteratorBuckets(flush_keys=8)
    with pytest.raises(ConfigurationError, match="empty iterator bucket"):
        buckets.note_delete(b"ghst-key")
    buckets.note_store(b"once-key")
    buckets.note_delete(b"once-key")
    with pytest.raises(ConfigurationError, match="empty iterator bucket"):
        buckets.note_delete(b"once-key")


def test_bucket_bulk_registration_settles_flush_debt():
    buckets = IteratorBuckets(flush_keys=10)
    buckets.note_bulk(b"blk-key-0000", 25)
    assert buckets.bucket_count(iterator_bucket(b"blk-key-0000")) == 25
    assert buckets.bucket_page_writes == 2  # 25 // 10
    with pytest.raises(ConfigurationError, match="bulk count"):
        buckets.note_bulk(b"blk-key-0000", 0)


def test_scan_heavy_replay_drives_buckets_and_iterator_correctness():
    """The scan-mix generator through the YCSB driver: every scan walks
    the device's iterator buckets, the bucket census still matches the
    prefilled population, and iteration agrees with a model dict."""
    rig = build_kv_rig(lab_geometry(8))
    scheme = KeyScheme(prefix=b"scn-", digits=12)
    population = 300
    rig.device.fast_fill(population, 256, scheme)
    spec = ScanMixSpec(
        n_ops=250, population=population, scan_fraction=0.3, scan_length=8,
        value_bytes=256, key_scheme=scheme, seed=21,
    )
    records = list(generate_scan_mix(spec))
    workload = TraceWorkload(records, key_scheme=scheme)
    assert workload.has_scans()
    driver = YCSBDriver(
        rig.adapter,
        YCSBSpec(workload="E", n_ops=250, population=population,
                 key_scheme=scheme, value_bytes=256, scan_length=8, seed=21),
    )
    result = execute_workload(rig.env, driver, workload.operations(),
                              queue_depth=4, name="scanmix")
    assert result.failed_ops == 0
    assert result.completed_ops == 250
    assert driver.scans_run == sum(1 for r in records if r.op == "scan") > 0
    # Reads/updates/scans never change bucket membership: the census
    # still shows exactly the prefilled population in one bucket.
    buckets = rig.device.iterators
    assert buckets.total_keys == population
    assert buckets.bucket_count(iterator_bucket(scheme.key_for(0))) == \
        population
    # Iterator correctness against the model: the device enumerates
    # exactly the prefilled keys, sorted.
    def session(env):
        keys = yield env.process(rig.api.iterate(b"scn-", limit=1000))
        return keys

    keys = run(rig, session(rig.env))
    assert keys == sorted(scheme.key_for(i) for i in range(population))
