"""Tests for the prefix-iteration surface (SNIA iterators)."""

import pytest

from repro.core.experiment import build_kv_rig, lab_geometry
from repro.errors import ConfigurationError
from repro.kvftl.population import KeyScheme


def run(rig, generator):
    return rig.env.run_until_complete(rig.env.process(generator))


def test_iterate_returns_prefix_matches_sorted():
    rig = build_kv_rig(lab_geometry(4))

    def session(env):
        for i in (3, 1, 2):
            yield env.process(rig.api.store(b"pref-key-%07d" % i, 128))
        yield env.process(rig.api.store(b"othr-key-0000001", 128))
        keys = yield env.process(rig.api.iterate(b"pref"))
        return keys

    keys = run(rig, session(rig.env))
    assert keys == [b"pref-key-%07d" % i for i in (1, 2, 3)]


def test_iterate_sees_primed_population():
    rig = build_kv_rig(lab_geometry(4))
    scheme = KeyScheme(prefix=b"popl", digits=12)
    rig.device.fast_fill(500, 256, scheme)

    def session(env):
        keys = yield env.process(rig.api.iterate(b"popl", limit=1000))
        return keys

    keys = run(rig, session(rig.env))
    assert len(keys) == 500
    assert keys[0] == scheme.key_for(0)


def test_iterate_excludes_deleted_pairs():
    rig = build_kv_rig(lab_geometry(4))

    def session(env):
        for i in range(4):
            yield env.process(rig.api.store(b"delt-key-%07d" % i, 64))
        yield env.process(rig.api.delete(b"delt-key-0000002"))
        keys = yield env.process(rig.api.iterate(b"delt"))
        return keys

    keys = run(rig, session(rig.env))
    assert b"delt-key-0000002" not in keys
    assert len(keys) == 3


def test_iterate_respects_limit():
    rig = build_kv_rig(lab_geometry(4))
    scheme = KeyScheme(prefix=b"many", digits=12)
    rig.device.fast_fill(300, 64, scheme)

    def session(env):
        keys = yield env.process(rig.api.iterate(b"many", limit=10))
        return keys

    assert len(run(rig, session(rig.env))) == 10


def test_iterate_validates_prefix():
    rig = build_kv_rig(lab_geometry(4))
    with pytest.raises(ConfigurationError):
        run(rig, rig.device.iterate(b"toolong"))
    with pytest.raises(ConfigurationError):
        run(rig, rig.device.iterate(b"abcd", limit=0))


def test_iterate_cost_scales_with_bucket_size():
    rig = build_kv_rig(lab_geometry(4))
    big_scheme = KeyScheme(prefix=b"bigb", digits=12)
    rig.device.fast_fill(20_000, 64, big_scheme)

    def timed(env, prefix):
        started = env.now
        yield env.process(rig.api.iterate(prefix, limit=5))
        return env.now - started

    def store_one(env):
        yield env.process(rig.api.store(b"tiny-key-0000001", 64))

    run(rig, store_one(rig.env))
    small = run(rig, timed(rig.env, b"tiny"))
    large = run(rig, timed(rig.env, b"bigb"))
    assert large > small  # more bucket pages to walk
