"""Unit tests for the NVMe command set and driver models."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.cpu import CpuAccountant
from repro.nvme.command import (
    INLINE_KEY_BYTES,
    NVME_COMMAND_BYTES,
    KVCommandSet,
    KVOpcode,
    commands_for_key,
    compound_command_count,
)
from repro.nvme.driver import DriverCosts, KernelDeviceDriver
from repro.sim.engine import Environment


# -- command set ------------------------------------------------------------


def test_inline_key_fits_one_command():
    assert commands_for_key(4) == 1
    assert commands_for_key(INLINE_KEY_BYTES) == 1


def test_large_key_needs_second_command():
    # The Fig. 8 mechanism: >16 B keys ride a second command.
    assert commands_for_key(INLINE_KEY_BYTES + 1) == 2
    assert commands_for_key(255) == 2


def test_commands_for_key_rejects_empty():
    with pytest.raises(ConfigurationError):
        commands_for_key(0)


def test_command_set_overhead_for_small_pairs():
    # The paper's Facebook observation: ~100 B pairs waste a 64 B command.
    command = KVCommandSet(KVOpcode.STORE, key_bytes=16, value_bytes=100)
    assert command.command_count == 1
    assert command.command_overhead_bytes == NVME_COMMAND_BYTES
    assert command.overhead_ratio() == pytest.approx(64 / 116)


def test_command_set_empty_pair_infinite_overhead():
    command = KVCommandSet(KVOpcode.EXIST, key_bytes=0, value_bytes=0)
    assert command.overhead_ratio() == float("inf")


def test_compound_command_consolidation():
    assert compound_command_count(100, 8) == 13
    assert compound_command_count(0, 8) == 0
    with pytest.raises(ConfigurationError):
        compound_command_count(10, 0)


# -- driver --------------------------------------------------------------------


def make_driver(costs=None):
    env = Environment()
    cpu = CpuAccountant(env)
    driver = KernelDeviceDriver(env, cpu, costs or DriverCosts())
    return env, cpu, driver


def test_submission_path_serializes_commands():
    env, _cpu, driver = make_driver()

    def submit(env, n):
        yield from driver.submit(n, sync=False, component="test")
        return env.now

    one = env.process(submit(env, 1))
    env.run()
    first = one.value
    two = env.process(submit(env, 2))
    env.run()
    assert two.value - first == pytest.approx(2 * driver.costs.submit_us)
    assert driver.commands_submitted == 3


def test_sync_mode_charges_more_cpu():
    env, cpu_async, driver_async = make_driver()
    process = driver_async.env.process(
        driver_async.submit(1, sync=False, component="a")
    )
    driver_async.env.run_until_complete(process)
    async_cpu = cpu_async.total_busy_us

    env2, cpu_sync, driver_sync = make_driver()
    process = driver_sync.env.process(
        driver_sync.submit(1, sync=True, component="a")
    )
    driver_sync.env.run_until_complete(process)
    assert cpu_sync.total_busy_us > async_cpu


def test_completion_charges_cpu_only():
    env, cpu, driver = make_driver()
    driver.complete(3, "x")
    assert cpu.total_busy_us == pytest.approx(3 * driver.costs.cpu_complete_us)
    assert env.now == 0.0


def test_driver_rejects_zero_commands():
    env, _cpu, driver = make_driver()
    with pytest.raises(ConfigurationError):
        driver.complete(0, "x")
