"""Integration tests for the hash-index store (Aerospike stand-in)."""

import pytest

from repro.errors import ConfigurationError, DeviceFullError, KeyNotFoundError
from repro.flash.geometry import Geometry
from repro.hostkv.hashkv.store import HashKVConfig, HashKVStore
from repro.kvftl.population import KeyScheme
from repro.sim.engine import Environment
from repro.units import KIB


def make_store(blocks_per_plane=16, **config_kwargs):
    from repro.api.block import BlockDeviceAPI
    from repro.blockftl.device import BlockSSD
    from repro.metrics.cpu import CpuAccountant
    from repro.nvme.driver import KernelDeviceDriver

    geometry = Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )
    env = Environment()
    device = BlockSSD(env, geometry)
    driver = KernelDeviceDriver(env, CpuAccountant(env))
    api = BlockDeviceAPI(env, device, driver)
    store = HashKVStore(env, api, HashKVConfig(**config_kwargs))
    return env, device, store


def run(env, generator, limit_delta=600e6):
    process = env.process(generator)
    return env.run_until_complete(process, limit=env.now + limit_delta)


def key(i):
    return b"askey-%09d" % i


def test_put_get_roundtrip():
    env, _device, store = make_store()

    def proc(env):
        yield env.process(store.put(key(1), 100))
        value = yield env.process(store.get(key(1)))
        return value

    assert run(env, proc(env)) == 100
    assert store.live_keys() == 1


def test_get_absent_raises():
    env, _device, store = make_store()
    with pytest.raises(KeyNotFoundError):
        run(env, store.get(key(404)))


def test_record_bytes_rounding():
    _env, _device, store = make_store()
    # 35 header + 20 digest + 50 value = 105 -> rounds to 112 (16 B rblock).
    assert store.record_bytes(50) == 112
    assert store.record_bytes(0) == 64
    with pytest.raises(ConfigurationError):
        store.record_bytes(-1)


def test_space_amplification_below_two_for_small_values():
    env, _device, store = make_store()
    store.fast_fill(2000, 50, KeyScheme(prefix=b"fill", digits=12))
    # Paper Fig. 7: Aerospike < 2x for 50 B values (reported 1.8x).
    assert 1.2 < store.space_amplification() < 2.0


def test_update_retires_old_record():
    env, _device, store = make_store()

    def proc(env):
        yield env.process(store.put(key(1), 100))
        yield env.process(store.put(key(1), 300))
        value = yield env.process(store.get(key(1)))
        return value

    assert run(env, proc(env)) == 300
    assert store.live_keys() == 1


def test_delete_removes_key():
    env, _device, store = make_store()

    def proc(env):
        yield env.process(store.put(key(1), 100))
        yield env.process(store.delete(key(1)))

    run(env, proc(env))
    assert store.live_keys() == 0
    with pytest.raises(KeyNotFoundError):
        run(env, store.get(key(1)))


def test_write_block_flush_and_read_from_device():
    env, device, store = make_store()
    per_block = store.config.write_block_bytes // store.record_bytes(1000)

    def proc(env):
        for i in range(per_block + 5):
            yield env.process(store.put(key(i), 1000))
        yield env.process(store.drain())
        # key(0) sits in a flushed block now: a real device read happens.
        reads_before = device.counters.host_reads
        yield env.process(store.get(key(0)))
        return device.counters.host_reads - reads_before

    assert run(env, proc(env)) == 1


def test_defrag_reclaims_blocks_under_updates():
    env, _device, store = make_store(blocks_per_plane=4)

    def proc(env):
        # Fill a few write blocks, then update everything repeatedly so
        # old blocks fall below the defrag threshold.
        n = 2000
        for round_index in range(4):
            for i in range(n):
                yield env.process(store.put(key(i), 400))
        yield env.process(store.drain())

    run(env, proc(env))
    assert store.defrag_runs > 0
    assert store.defrag_moved_bytes >= 0
    assert store.live_keys() == 2000

    def verify(env):
        value = yield env.process(store.get(key(7)))
        return value

    assert run(env, verify(env)) == 400


def test_fast_fill_state_consistent():
    env, _device, store = make_store()
    scheme = store.fast_fill(5000, 512)
    assert store.live_keys() == 5000

    def proc(env):
        value = yield env.process(store.get(scheme.key_for(123)))
        yield env.process(store.put(scheme.key_for(123), 512))
        return value

    assert run(env, proc(env)) == 512
    assert store.live_keys() == 5000


def test_fill_overflow_raises():
    env, _device, store = make_store(blocks_per_plane=4)
    with pytest.raises(DeviceFullError):
        store.fast_fill(10_000_000, 4096)


def test_oversized_record_rejected():
    env, _device, store = make_store()
    with pytest.raises(ConfigurationError):
        run(env, store.put(key(1), store.config.write_block_bytes))
