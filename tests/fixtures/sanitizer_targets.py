"""Sanitizer test targets: a planted set-order bug and its clean twin.

``buggy_model`` assigns each process a delay by *enumeration order of a
set of string names*.  Set iteration order for strings follows the
sipHash of each key, which ``PYTHONHASHSEED`` perturbs, so two
interpreters launched with different seeds map names to different
delays and pop process-completion events in different orders — exactly
the class of bug ``repro sanitize`` exists to localize.  The first
divergent event is a :class:`~repro.sim.engine.Process` completion
carrying one of the planted names.

``clean_model`` is byte-for-byte the same workload with the single
correct change: ``sorted(...)`` pins the enumeration order.

Both are loaded by path (``tests/fixtures/sanitizer_targets.py:fn``),
so they must stay importable with only ``src`` on ``PYTHONPATH``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.engine import Environment

#: Planted process names; enough strings that distinct hash seeds are
#: overwhelmingly likely to produce distinct set orders.
NAMES = (
    "alder", "birch", "cedar", "dogwood", "elm", "fir", "ginkgo",
    "hazel", "juniper", "katsura", "larch", "maple",
)


def _spin(env: Environment, delay: float):
    yield env.timeout(delay)


def _run(ordered) -> List[Tuple[float, str]]:
    env = Environment()
    finished: List[Tuple[float, str]] = []
    for index, name in enumerate(ordered):

        def watch(event, name=name):
            finished.append((env.now, name))

        proc = env.process(_spin(env, 1.0 + index), name=name)
        proc.callbacks.append(watch)
    env.run()
    return finished


def buggy_model() -> List[Tuple[float, str]]:
    """Delays assigned by set-enumeration order: hash-seed dependent."""
    return _run(set(NAMES))  # simlint: disable=SIM010


def clean_model() -> List[Tuple[float, str]]:
    """The fix: sorted() pins the order regardless of hash seed."""
    return _run(sorted(set(NAMES)))


def replay_churn() -> List[Tuple[float, str, bytes, int, float]]:
    """Churn trace stream as plain tuples: must be hash-seed independent.

    The replay property suite compares this fingerprint across child
    interpreters with different ``PYTHONHASHSEED`` values — any dict/set
    iteration leaking into the generator shows up as a divergence.
    """
    from repro.kvbench.generators import ChurnSpec, generate_churn

    spec = ChurnSpec(n_ops=80, population=256, working_set=32,
                     rotate_every_ops=24, seed=11)
    return [(r.timestamp_us, r.op, r.key, r.size, r.ttl_us)
            for r in generate_churn(spec)]


def replay_expiry() -> List[Tuple[float, str, bytes, int, float]]:
    """Expiry trace stream (TTL deletes materialized), same contract.

    Exercises the generator's heap/dict bookkeeping — the most
    order-sensitive code in the replay subsystem.
    """
    from repro.kvbench.generators import ExpirySpec, generate_expiry

    spec = ExpirySpec(n_ops=80, population=48, ttl_us=1500.0, seed=13)
    return [(r.timestamp_us, r.op, r.key, r.size, r.ttl_us)
            for r in generate_expiry(spec)]
