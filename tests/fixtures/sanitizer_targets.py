"""Sanitizer test targets: a planted set-order bug and its clean twin.

``buggy_model`` assigns each process a delay by *enumeration order of a
set of string names*.  Set iteration order for strings follows the
sipHash of each key, which ``PYTHONHASHSEED`` perturbs, so two
interpreters launched with different seeds map names to different
delays and pop process-completion events in different orders — exactly
the class of bug ``repro sanitize`` exists to localize.  The first
divergent event is a :class:`~repro.sim.engine.Process` completion
carrying one of the planted names.

``clean_model`` is byte-for-byte the same workload with the single
correct change: ``sorted(...)`` pins the enumeration order.

Both are loaded by path (``tests/fixtures/sanitizer_targets.py:fn``),
so they must stay importable with only ``src`` on ``PYTHONPATH``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.engine import Environment

#: Planted process names; enough strings that distinct hash seeds are
#: overwhelmingly likely to produce distinct set orders.
NAMES = (
    "alder", "birch", "cedar", "dogwood", "elm", "fir", "ginkgo",
    "hazel", "juniper", "katsura", "larch", "maple",
)


def _spin(env: Environment, delay: float):
    yield env.timeout(delay)


def _run(ordered) -> List[Tuple[float, str]]:
    env = Environment()
    finished: List[Tuple[float, str]] = []
    for index, name in enumerate(ordered):

        def watch(event, name=name):
            finished.append((env.now, name))

        proc = env.process(_spin(env, 1.0 + index), name=name)
        proc.callbacks.append(watch)
    env.run()
    return finished


def buggy_model() -> List[Tuple[float, str]]:
    """Delays assigned by set-enumeration order: hash-seed dependent."""
    return _run(set(NAMES))  # simlint: disable=SIM010


def clean_model() -> List[Tuple[float, str]]:
    """The fix: sorted() pins the order regardless of hash seed."""
    return _run(sorted(set(NAMES)))
