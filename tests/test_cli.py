"""Tests for the experiment CLI."""

import csv
import json
import re

import pytest

from repro.cli import build_parser, main
from repro.faults.run import SWEEP_CSV_COLUMNS


def test_parser_accepts_every_experiment():
    parser = build_parser()
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                 "headline", "all"):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_parser_options():
    args = build_parser().parse_args(["fig3", "--measured-ops", "123"])
    assert args.measured_ops == 123
    args = build_parser().parse_args(["fig5", "--n-ops", "77"])
    assert args.n_ops == 77


def test_fig7_command_prints_table(capsys):
    exit_code = main(["fig7"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "KV-SSD" in captured
    assert "Aerospike" in captured
    assert "3.84 TB" in captured


def test_fig8_command_prints_cliff(capsys):
    exit_code = main(["fig8", "--n-ops", "300"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "cliff past 16B" in captured


def test_parser_accepts_parallel_and_cache_flags():
    args = build_parser().parse_args(
        ["fig", "fig4", "--parallel", "4", "--no-cache",
         "--cache-dir", "/tmp/alt-cache"]
    )
    assert args.experiment == "fig"
    assert args.target == "fig4"
    assert args.parallel == 4
    assert args.no_cache is True
    assert args.cache_dir == "/tmp/alt-cache"


def test_fig_meta_form_requires_a_figure():
    with pytest.raises(SystemExit, match="name a figure"):
        main(["fig"])


def test_target_is_rejected_outside_the_fig_form():
    with pytest.raises(SystemExit, match="unexpected argument"):
        main(["fig8", "fig4"])


def test_parallel_must_be_positive():
    with pytest.raises(SystemExit, match="--parallel"):
        main(["fig8", "--parallel", "0"])


def _figure_stdout(capsys, argv):
    """Run the CLI and return stdout minus the wall-clock timing line."""
    assert main(argv) == 0
    out = capsys.readouterr().out
    return re.sub(r"\[(\w+) done in [0-9.]+s\]", r"[\1 done]", out)


def test_fig_parallel_output_is_byte_identical(capsys, tmp_path):
    """`repro fig fig8 --parallel 2` prints exactly what serial prints."""
    base = ["--n-ops", "200", "--cache-dir", str(tmp_path / "cache")]
    serial = _figure_stdout(capsys, ["fig", "fig8", "--parallel", "1"] + base)
    parallel = _figure_stdout(capsys, ["fig", "fig8", "--parallel", "2"] + base)
    assert parallel == serial
    # The second run hit the cache the first one filled.
    assert (tmp_path / "cache").is_dir()


def test_faults_command_prints_table_and_writes_csv(capsys, tmp_path):
    out_csv = tmp_path / "sweep.csv"
    exit_code = main([
        "faults", "--fault-rates", "0,1e-2", "--n-ops", "100",
        "--no-cache", "--faults-out", str(out_csv),
    ])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "kv-ssd" in captured and "block-ssd" in captured
    assert f"wrote 4 sweep rows to {out_csv}" in captured
    with out_csv.open(newline="") as handle:
        rows = list(csv.reader(handle))
    assert tuple(rows[0]) == SWEEP_CSV_COLUMNS
    assert len(rows) == 1 + 4  # header + 2 personalities x 2 rates
    personalities = {row[0] for row in rows[1:]}
    assert personalities == {"kv-ssd", "block-ssd"}


def test_faults_command_rejects_bad_rates():
    with pytest.raises(SystemExit, match="fault-rates"):
        main(["faults", "--fault-rates", "0,banana"])


def test_trace_command_writes_perfetto_file(capsys, tmp_path):
    out_json = tmp_path / "trace.json"
    exit_code = main([
        "trace", "--fig", "fig5", "--trace-ops", "120",
        "--no-cache", "--out", str(out_json),
    ])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "scenario: fig5" in captured
    assert "[kv-ssd]" in captured and "[block-ssd]" in captured
    document = json.loads(out_json.read_text())
    assert document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"


def test_cluster_smoke_command_end_to_end(capsys, tmp_path):
    exit_code = main([
        "cluster", "--smoke", "--cluster-ops", "60",
        "--parallel", "2", "--cache-dir", str(tmp_path / "cache"),
    ])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "degraded" in captured
    assert "fingerprint: " in captured
    assert "zero lost acknowledged writes" in captured


def test_frontend_command_end_to_end(capsys, tmp_path):
    """`repro frontend` prints the latency-vs-load table, the knee line,
    and routes exec statistics to stderr — under a 2-way worker pool."""
    exit_code = main([
        "frontend", "--loads", "16,384", "--frontend-ops", "240",
        "--slo-gate", "0.05", "--parallel", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "lat p99" in captured.out and "bulk p99" in captured.out
    assert "saturation knee at 384 kops" in captured.out
    assert "SLO gate ok" in captured.out
    assert "[exec] frontend" in captured.err
    assert "[exec]" not in captured.out


def test_frontend_parallel_output_is_byte_identical(capsys, tmp_path):
    base = ["--loads", "16,128", "--frontend-ops", "160",
            "--cache-dir", str(tmp_path / "cache")]
    serial = _figure_stdout(capsys, ["frontend", "--parallel", "1"] + base)
    parallel = _figure_stdout(capsys, ["frontend", "--parallel", "2"] + base)
    assert parallel == serial


def test_frontend_rejects_bad_loads():
    with pytest.raises(SystemExit, match="--loads"):
        main(["frontend", "--loads", "16,banana"])
    with pytest.raises(SystemExit, match="--loads"):
        main(["frontend", "--loads=-4,16"])


def test_frontend_slo_gate_exits_nonzero(capsys):
    """An impossible SLO budget must fail the gate with a non-zero exit."""
    with pytest.raises(SystemExit, match="SLO gate"):
        main(["frontend", "--loads", "512", "--frontend-ops", "400",
              "--slo-gate", "0.05", "--no-cache"])


def test_parser_accepts_frontend_flags():
    args = build_parser().parse_args(
        ["frontend", "--loads", "8,16", "--frontend-ops", "99",
         "--scheduler", "fifo", "--slo-gate", "0.1"]
    )
    assert args.experiment == "frontend"
    assert args.loads == "8,16"
    assert args.frontend_ops == 99
    assert args.scheduler == "fifo"
    assert args.slo_gate == 0.1


def test_parallel_defaults_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "3")
    assert build_parser().parse_args(["cluster"]).parallel == 3
    monkeypatch.delenv("REPRO_PARALLEL")
    assert build_parser().parse_args(["cluster"]).parallel == 1


def test_exec_statistics_go_to_stderr_not_stdout(capsys, tmp_path):
    exit_code = main([
        "fig8", "--n-ops", "150", "--parallel", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "[exec] fig8" in captured.err
    assert "[exec]" not in captured.out
