"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_every_experiment():
    parser = build_parser()
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                 "headline", "all"):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_parser_options():
    args = build_parser().parse_args(["fig3", "--measured-ops", "123"])
    assert args.measured_ops == 123
    args = build_parser().parse_args(["fig5", "--n-ops", "77"])
    assert args.n_ops == 77


def test_fig7_command_prints_table(capsys):
    exit_code = main(["fig7"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "KV-SSD" in captured
    assert "Aerospike" in captured
    assert "3.84 TB" in captured


def test_fig8_command_prints_cliff(capsys):
    exit_code = main(["fig8", "--n-ops", "300"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "cliff past 16B" in captured
