"""Unit tests for size/time helpers."""

import pytest

from repro.units import (
    GIB,
    KIB,
    MIB,
    align_up,
    ceil_div,
    mib_per_sec,
    ms,
    pretty_size,
    pretty_time,
    sec,
    to_ms,
    to_sec,
)


def test_size_constants_chain():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_time_conversions_roundtrip():
    assert ms(5) == 5000.0
    assert sec(2) == 2_000_000.0
    assert to_ms(ms(7.5)) == pytest.approx(7.5)
    assert to_sec(sec(3.25)) == pytest.approx(3.25)


def test_mib_per_sec():
    # 1 MiB in 1 second.
    assert mib_per_sec(MIB, 1_000_000.0) == pytest.approx(1.0)
    # 512 MiB/s.
    assert mib_per_sec(512 * MIB, 1_000_000.0) == pytest.approx(512.0)


def test_mib_per_sec_zero_interval_is_zero():
    assert mib_per_sec(MIB, 0.0) == 0.0


def test_align_up_basics():
    assert align_up(0, 1024) == 0
    assert align_up(1, 1024) == 1024
    assert align_up(1024, 1024) == 1024
    assert align_up(1025, 1024) == 2048


def test_align_up_rejects_bad_alignment():
    with pytest.raises(ValueError):
        align_up(10, 0)


def test_ceil_div():
    assert ceil_div(0, 8) == 0
    assert ceil_div(1, 8) == 1
    assert ceil_div(8, 8) == 1
    assert ceil_div(9, 8) == 2


def test_ceil_div_rejects_bad_denominator():
    with pytest.raises(ValueError):
        ceil_div(5, 0)


def test_pretty_size():
    assert pretty_size(512) == "512B"
    assert pretty_size(24 * KIB) == "24.0KiB"
    assert pretty_size(3 * MIB) == "3.0MiB"


def test_pretty_time():
    assert pretty_time(12.0) == "12.0us"
    assert pretty_time(1500.0) == "1.50ms"
    assert pretty_time(2_500_000.0) == "2.50s"
