"""Unit tests for the flash substrate: geometry, timing, timed array."""

import pytest

from repro.errors import AddressError, ConfigurationError, SimulationError
from repro.flash.geometry import Geometry, scaled_pm983, tiny_geometry
from repro.flash.nand import BlockState, FlashArray
from repro.flash.timing import FlashTiming
from repro.sim.engine import Environment
from repro.units import KIB


def make_array(geometry=None, timing=None):
    env = Environment()
    array = FlashArray(env, geometry or tiny_geometry(), timing or FlashTiming())
    return env, array


# -- geometry -----------------------------------------------------------------


def test_geometry_derived_quantities():
    geo = Geometry(
        channels=2,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_bytes=4 * KIB,
    )
    assert geo.total_dies == 4
    assert geo.blocks_per_die == 8
    assert geo.total_blocks == 32
    assert geo.total_pages == 256
    assert geo.block_bytes == 32 * KIB
    assert geo.capacity_bytes == 256 * 4 * KIB


def test_geometry_block_striping_rotates_dies():
    geo = tiny_geometry()
    dies = [geo.die_of_block(i) for i in range(geo.total_dies * 2)]
    assert dies[: geo.total_dies] == list(range(geo.total_dies))
    assert dies[geo.total_dies:] == list(range(geo.total_dies))


def test_geometry_channel_of_die():
    geo = tiny_geometry()
    for die in range(geo.total_dies):
        assert 0 <= geo.channel_of_die(die) < geo.channels


def test_geometry_validates_fields():
    with pytest.raises(ConfigurationError):
        Geometry(channels=0)


def test_geometry_address_checks():
    geo = tiny_geometry()
    with pytest.raises(AddressError):
        geo.check_block(geo.total_blocks)
    with pytest.raises(AddressError):
        geo.check_page(0, geo.pages_per_block)


def test_scaled_pm983_preserves_page_size_and_parallelism():
    geo = scaled_pm983()
    assert geo.page_bytes == 32 * KIB
    assert geo.channels == 8
    assert geo.total_dies == 64


# -- timing --------------------------------------------------------------------


def test_transfer_time_scales_with_bytes():
    timing = FlashTiming()
    small = timing.transfer_us(4 * KIB)
    large = timing.transfer_us(32 * KIB)
    assert large > small
    assert large - timing.command_overhead_us == pytest.approx(
        (32 * KIB) / timing.channel_bytes_per_us
    )


def test_timing_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        FlashTiming(read_us=0.0)


def test_page_read_service_time_composition():
    timing = FlashTiming()
    total = timing.page_read_service_us(32 * KIB, 4 * KIB)
    assert total == pytest.approx(timing.read_us + timing.transfer_us(4 * KIB))


# -- timed array ------------------------------------------------------------------


def test_program_requires_open_block():
    env, array = make_array()

    def proc(env):
        yield from array.program(0, array.geometry.page_bytes, 1024)

    process = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run_until_complete(process)


def test_program_then_read_roundtrip_timing():
    env, array = make_array()
    array.open_block(0)

    def proc(env):
        page = yield from array.program(0, array.geometry.page_bytes, 2048)
        programmed_at = env.now
        yield from array.read(0, page, 1024)
        return programmed_at, env.now

    process = env.process(proc(env))
    env.run()
    programmed_at, read_done = process.value
    timing = array.timing
    assert programmed_at == pytest.approx(
        timing.transfer_us(array.geometry.page_bytes) + timing.program_us
    )
    assert read_done - programmed_at == pytest.approx(
        timing.read_us + timing.transfer_us(1024)
    )
    assert array.counters.page_programs == 1
    assert array.counters.page_reads == 1


def test_block_closes_when_full():
    env, array = make_array()
    array.open_block(0)
    for _ in range(array.geometry.pages_per_block):
        array.prime_program(0, 512)
    assert array.blocks[0].state is BlockState.CLOSED
    with pytest.raises(SimulationError):
        array.prime_program(0, 512)


def test_read_of_unprogrammed_page_rejected():
    env, array = make_array()
    array.open_block(0)
    array.prime_program(0, 512)

    def proc(env):
        yield from array.read(0, 5, 512)

    process = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run_until_complete(process)


def test_invalidate_bounds():
    env, array = make_array()
    array.open_block(0)
    array.prime_program(0, 1000)
    array.invalidate(0, 400)
    assert array.blocks[0].valid_bytes == 600
    with pytest.raises(SimulationError):
        array.invalidate(0, 700)


def test_erase_requires_zero_valid_bytes():
    env, array = make_array()
    array.open_block(0)
    array.prime_program(0, 512)

    def proc(env):
        yield from array.erase(0)

    process = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run_until_complete(process)


def test_erase_returns_block_to_free():
    env, array = make_array()
    array.open_block(0)
    array.prime_program(0, 512)
    array.invalidate(0, 512)

    def proc(env):
        yield from array.erase(0)

    process = env.process(proc(env))
    env.run_until_complete(process)
    assert array.blocks[0].state is BlockState.FREE
    assert array.blocks[0].erase_count == 1
    assert array.counters.block_erases == 1


def test_parallel_programs_on_distinct_dies_overlap():
    env, array = make_array()
    geo = array.geometry
    # Blocks 0 and 1 sit on different dies (striped numbering).
    assert geo.die_of_block(0) != geo.die_of_block(1)
    array.open_block(0)
    array.open_block(1)

    def program(block):
        yield from array.program(block, geo.page_bytes, 512)

    start = env.now
    procs = [env.process(program(0)), env.process(program(1))]

    def waiter(env):
        yield env.all_of(procs)
        return env.now

    done = env.process(waiter(env))
    env.run()
    elapsed = done.value - start
    single = array.timing.transfer_us(geo.page_bytes) + array.timing.program_us
    # Same channel serializes transfers, but the programs overlap.
    assert elapsed < 2 * single


def test_same_die_programs_serialize():
    env, array = make_array()
    geo = array.geometry
    same_die_block = geo.total_dies  # striping wraps back to die 0
    assert geo.die_of_block(0) == geo.die_of_block(same_die_block)
    array.open_block(0)
    array.open_block(same_die_block)

    def program(block):
        yield from array.program(block, geo.page_bytes, 512)

    procs = [env.process(program(0)), env.process(program(same_die_block))]

    def waiter(env):
        yield env.all_of(procs)
        return env.now

    done = env.process(waiter(env))
    env.run()
    single = array.timing.transfer_us(geo.page_bytes) + array.timing.program_us
    assert done.value >= 2 * array.timing.program_us
    assert done.value >= single


def test_free_blocks_and_valid_bytes_aggregates():
    env, array = make_array()
    total = array.geometry.total_blocks
    assert array.free_blocks() == total
    array.open_block(3)
    array.prime_program(3, 999)
    assert array.free_blocks() == total - 1
    assert array.total_valid_bytes() == 999
