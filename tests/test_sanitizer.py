"""Runtime sanitizer: digest hook, tripwires, and planted-bug localization."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.sanitizer import (
    Divergence,
    collect,
    collect_in_subprocess,
    localize,
    resolve_callable,
)
from repro.sim import engine as sim_engine

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "sanitizer_targets.py"
BUGGY = f"{FIXTURE}:buggy_model"
CLEAN = f"{FIXTURE}:clean_model"


def test_pop_observer_sees_every_event_in_fire_order():
    seen = []
    sim_engine.set_pop_observer(lambda now, event: seen.append(
        (now, type(event).__name__)
    ))
    try:
        env = sim_engine.Environment()

        def model(env):
            yield env.timeout(5.0)
            yield env.timeout(3.0)

        env.process(model(env), name="probe")
        env.run()
    finally:
        sim_engine.set_pop_observer(None)
    assert seen, "observer must capture pops"
    times = [now for now, _ in seen]
    assert times == sorted(times)
    assert times[-1] == 8.0
    # Clearing the observer really clears it.
    count = len(seen)
    env2 = sim_engine.Environment()
    env2.process(model(env2), name="again")
    env2.run()
    assert len(seen) == count


def test_collect_is_deterministic_in_process():
    first = collect(CLEAN, 0)
    second = collect(CLEAN, 0)
    assert first.digest == second.digest
    assert first.total_events == second.total_events > 0
    assert first.records == second.records
    assert localize(first, second) is None
    assert first.trips == []


def test_resolve_callable_validates_spec():
    import pytest

    assert resolve_callable(CLEAN)() == resolve_callable(CLEAN)()
    with pytest.raises(ValueError):
        resolve_callable("no-colon-here")
    with pytest.raises(ValueError):
        resolve_callable(f"{FIXTURE}:missing_function")


def test_planted_set_order_bug_is_localized_to_named_event():
    """The tentpole acceptance check: vary PYTHONHASHSEED, and the first
    divergent event must be one of the planted process completions."""
    from tests.fixtures.sanitizer_targets import NAMES

    left = collect_in_subprocess(BUGGY, 0, "0")
    right = collect_in_subprocess(BUGGY, 0, "1")
    assert left.hash_seed == "0" and right.hash_seed == "1"
    divergence = localize(left, right)
    assert divergence is not None, \
        "hash-seed variation must expose the set-order bug"
    assert divergence.kind == "event"
    named = {
        record[2]
        for record in (divergence.left, divergence.right)
        if record is not None and record[2]
    }
    assert named, "divergent records must carry process names"
    assert named <= set(NAMES)
    rendered = divergence.render()
    assert "first divergent event" in rendered
    assert any(name in rendered for name in named)


def test_clean_twin_survives_hash_seed_variation():
    left = collect_in_subprocess(CLEAN, 0, "0")
    right = collect_in_subprocess(CLEAN, 0, "1")
    assert localize(left, right) is None


def test_cli_fails_on_buggy_and_passes_on_clean():
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    buggy = subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", "--target", BUGGY],
        cwd=REPO_ROOT, capture_output=True, text=True, env=env,
    )
    assert buggy.returncode == 1, buggy.stdout + buggy.stderr
    assert "FAIL" in buggy.stdout
    assert "first divergent event" in buggy.stdout
    clean = subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", "--target", CLEAN],
        cwd=REPO_ROOT, capture_output=True, text=True, env=env,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "OK" in clean.stdout


def test_tripwires_record_unblessed_repro_calls(tmp_path):
    """A wall-clock read from model code trips; a suppressed line is blessed."""
    from repro.lint.sanitizer import _Tripwires

    model_dir = tmp_path / "repro"
    model_dir.mkdir()
    model = model_dir / "hotline.py"
    model.write_text(textwrap.dedent("""
        import time

        def naughty():
            return time.time()

        def blessed():
            return time.time()  # simlint: disable=SIM001
    """))
    naughty = resolve_callable(f"{model}:naughty")
    blessed = resolve_callable(f"{model}:blessed")
    tripwires = _Tripwires()
    tripwires.install()
    try:
        naughty()
        blessed()
    finally:
        tripwires.uninstall()
    assert len(tripwires.trips) == 1
    assert "hotline.py" in tripwires.trips[0]
    assert "time.time" in tripwires.trips[0]
    # Uninstall restores the real clock.
    import time as time_module
    assert time_module.time.__module__ == "time"


def test_divergence_render_variants():
    assert "fingerprints differ" in \
        Divergence("fingerprint", None, None, None).render()
    assert "beyond the recorded prefix" in \
        Divergence("tail", 7, None, None).render()
    event = Divergence(
        "event", 3, (1.5, "Process", "gc"), None
    ).render()
    assert "index 3" in event
    assert "'gc'" in event
    assert "<end of run>" in event


def test_determinism_gate_reuses_sanitizer(tmp_path):
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "determinism_gate.py"),
         "--n-ops", "40"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "determinism gate: OK" in result.stdout
    assert "events" in result.stdout  # the sanitizer's event count
