"""Fault-injection and recovery-path tests (the error-path harness).

Scheduled faults make each recovery path deterministic: a read-retry
sequence, a program-fail reallocation, block retirement, and read-only
degradation each fire exactly where the test puts them.  The statistical
model's determinism is locked by same-seed replay: identical seeds must
produce identical ``DeviceStats`` and identical trace span counts.
"""

import dataclasses

import pytest

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
from repro.errors import (
    ConfigurationError,
    DeviceReadOnlyError,
    UncorrectableReadError,
)
from repro.faults.model import FaultConfig, FaultInjector, READ_OK, ReadResult
from repro.faults.run import fault_profile
from repro.flash.geometry import Geometry
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.kvftl.population import KeyScheme
from repro.sim.engine import Environment
from repro.trace.tracer import TraceCollector, TraceConfig, Tracer
from repro.units import KIB


def small_geometry(blocks_per_plane=16):
    return Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )


def make_kv(injector=None, blocks_per_plane=16, **config_kwargs):
    env = Environment()
    ssd = KVSSD(env, small_geometry(blocks_per_plane),
                config=KVSSDConfig(**config_kwargs), faults=injector)
    return env, ssd


def make_block(injector=None, blocks_per_plane=16, **config_kwargs):
    env = Environment()
    ssd = BlockSSD(env, small_geometry(blocks_per_plane),
                   config=BlockSSDConfig(**config_kwargs), faults=injector)
    return env, ssd


def run(env, generator, limit_delta=600e6):
    process = env.process(generator)
    return env.run_until_complete(process, limit=env.now + limit_delta)


def settle(env, delta_us=100_000.0):
    """Let background workers (flush, GC, retirement) make progress."""
    env.run(until=env.now + delta_us)


KEY = b"fault-key-000001"


# -- injector unit behavior ----------------------------------------------------


def test_fault_config_validation():
    with pytest.raises(ConfigurationError):
        FaultConfig(read_corrected_prob=1.5)
    with pytest.raises(ConfigurationError):
        FaultConfig(wear_factor=-0.1)
    with pytest.raises(ConfigurationError):
        FaultConfig(max_read_retries=0)
    assert not FaultConfig().statistical
    assert FaultConfig(program_fail_prob=0.1).statistical


def test_schedule_rejects_unknown_kind():
    injector = FaultInjector()
    with pytest.raises(ConfigurationError):
        injector.schedule("cosmic_ray")
    with pytest.raises(ConfigurationError):
        injector.schedule("program_fail", count=0)


def test_scheduled_read_fault_pins_until_finished():
    injector = FaultInjector()
    injector.schedule("read_uncorrectable")
    # Attempt 0 decides and pins; retries keep failing forever.
    assert injector.read_attempt(3, 7, 0, 0) is False
    for attempt in range(1, 6):
        assert injector.read_attempt(3, 7, 0, attempt) is False
    # Other pages are unaffected while the pin is live.
    assert injector.read_attempt(3, 8, 0, 0) is True
    injector.finish_read(3, 7)
    assert injector.read_attempt(3, 7, 0, 0) is True


def test_scheduled_corrected_fault_clears_after_one_retry():
    injector = FaultInjector()
    injector.schedule("read_corrected")
    assert injector.read_attempt(1, 1, 0, 0) is False
    assert injector.read_attempt(1, 1, 0, 1) is True
    assert injector.injected == {"read_corrected": 1}


def test_schedule_block_filter_only_matches_target():
    injector = FaultInjector()
    injector.schedule("program_fail", block=5)
    assert injector.program_fails(3, 0) is False
    assert injector.pending_scheduled() == 1
    assert injector.program_fails(5, 0) is True
    assert injector.pending_scheduled() == 0


def test_bad_block_is_permanent():
    injector = FaultInjector()
    injector.schedule("bad_block", block=2)
    assert injector.program_fails(2, 0) is True
    assert injector.is_bad(2)
    # Every later program and erase on the block fails without schedules.
    assert injector.program_fails(2, 0) is True
    assert injector.erase_fails(2, 0) is True
    assert injector.program_fails(4, 0) is False


def test_wear_multiplier_raises_statistical_rates():
    config = FaultConfig(program_fail_prob=0.5, wear_factor=1.0)
    # At erase_count 10 the effective probability saturates at 1.0.
    assert config.wear_multiplier(10) == 11.0
    injector = FaultInjector(config)
    assert injector.program_fails(0, 10) is True


def test_read_result_flags():
    assert READ_OK.ok and not READ_OK.corrected
    assert ReadResult(ok=True, retries=2).corrected
    assert ReadResult(ok=False, retries=3).uncorrectable


# -- read-retry recovery -------------------------------------------------------


def test_scheduled_corrected_read_retries_then_succeeds():
    injector = FaultInjector()
    env, ssd = make_kv(injector)
    run(env, ssd.store(KEY, 4096))
    settle(env)  # flush to flash so the retrieve reads media

    injector.schedule("read_corrected")
    assert run(env, ssd.retrieve(KEY)) == 4096
    assert ssd.stats.read_retries == 1
    assert ssd.stats.corrected_reads == 1
    assert ssd.stats.uncorrectable_reads == 0
    assert ssd.stats.recovery_us > 0.0


def test_scheduled_uncorrectable_read_runs_exactly_one_retry_sequence():
    injector = FaultInjector()
    env, ssd = make_kv(injector)
    run(env, ssd.store(KEY, 4096))
    settle(env)

    injector.schedule("read_uncorrectable")
    with pytest.raises(UncorrectableReadError):
        run(env, ssd.retrieve(KEY))
    # Exactly one full retry sequence: max_read_retries steps, no more.
    assert ssd.stats.read_retries == injector.config.max_read_retries
    assert ssd.stats.uncorrectable_reads == 1
    assert ssd.stats.corrected_reads == 0
    assert injector.pending_scheduled() == 0
    # The pin was released with the sequence: the same page reads clean.
    assert run(env, ssd.retrieve(KEY)) == 4096
    assert ssd.stats.read_retries == injector.config.max_read_retries


def test_retry_backoff_is_timed():
    injector = FaultInjector(FaultConfig(read_retry_backoff_us=100.0))
    env, ssd = make_kv(injector)
    run(env, ssd.store(KEY, 4096))
    settle(env)

    clean_started = env.now
    run(env, ssd.retrieve(KEY))
    clean_us = env.now - clean_started

    injector.schedule("read_corrected")
    faulted_started = env.now
    run(env, ssd.retrieve(KEY))
    faulted_us = env.now - faulted_started
    # One retry costs at least the first backoff step plus the re-read.
    assert faulted_us >= clean_us + 100.0


# -- program-fail reallocation and retirement ----------------------------------


def test_program_fail_reallocates_and_retires_block():
    injector = FaultInjector()
    env, ssd = make_block(injector)

    injector.schedule("program_fail")
    run(env, ssd.write(0, 32 * KIB))
    run(env, ssd.drain())
    settle(env, 500_000.0)  # GC worker drains the retire queue

    assert ssd.stats.program_fails == 1
    assert ssd.stats.reallocations == 1
    assert ssd.stats.retired_blocks == 1
    assert len(ssd.core.grown_defects) == 1
    defect = next(iter(ssd.core.grown_defects))
    assert defect in ssd.core.pool.retired
    # The data landed elsewhere and reads back fine.
    run(env, ssd.read(0, 32 * KIB))
    assert ssd.core.read_only is False


def test_retired_block_never_returns_to_pool():
    injector = FaultInjector()
    env, ssd = make_block(injector)
    injector.schedule("program_fail")
    run(env, ssd.write(0, 32 * KIB))
    run(env, ssd.drain())
    settle(env, 500_000.0)
    defect = next(iter(ssd.core.grown_defects))
    with pytest.raises(ConfigurationError):
        ssd.core.pool.push(defect)


def test_erase_fail_retires_victim():
    from repro.kvftl.blob import blobs_per_page

    injector = FaultInjector()
    env, ssd = make_kv(injector, blocks_per_plane=4)
    # Fill most of the device, then update until GC erases; the first
    # erase fails and the victim is retired instead of recycled.
    injector.schedule("erase_fail")
    scheme = KeyScheme(prefix=b"erasef", digits=10)
    per_page = blobs_per_page(scheme.key_bytes, 4096,
                              ssd.array.geometry.page_bytes, ssd.config)
    pairs = int(
        (ssd.free_block_count() - ssd.config.stream_width - 6)
        * ssd.array.geometry.pages_per_block * per_page * 0.9
    )
    ssd.fast_fill(pairs, 4096, scheme)

    def updates(count):
        for index in range(count):
            yield env.process(ssd.store(scheme.key_for(index % pairs), 4096))

    for _ in range(30):
        run(env, updates(400))
        settle(env, 2_000_000.0)
        if ssd.stats.erase_fails:
            break
    assert injector.injected.get("erase_fail", 0) == 1
    assert ssd.stats.erase_fails == 1
    assert ssd.stats.retired_blocks >= 1


# -- spare exhaustion and read-only degradation --------------------------------


def test_spare_exhaustion_makes_device_read_only_but_readable():
    injector = FaultInjector()
    env, ssd = make_block(injector, spare_block_limit=1)
    run(env, ssd.write(0, 32 * KIB))
    run(env, ssd.drain())

    # Three consecutive program fails retire three blocks — past the
    # one-block spare budget.
    injector.schedule("program_fail", count=3)
    run(env, ssd.write(32 * KIB, 32 * KIB))
    run(env, ssd.drain())
    settle(env, 1_000_000.0)

    assert ssd.stats.retired_blocks >= 2
    assert ssd.core.read_only is True
    with pytest.raises(DeviceReadOnlyError):
        run(env, ssd.write(64 * KIB, 32 * KIB))
    # Reads keep working on a read-only device.
    run(env, ssd.read(0, 32 * KIB))
    run(env, ssd.read(32 * KIB, 32 * KIB))


def test_read_only_kv_store_raises_but_retrieve_works():
    injector = FaultInjector()
    env, ssd = make_kv(injector, spare_block_limit=1)
    run(env, ssd.store(KEY, 4096))
    settle(env)

    injector.schedule("program_fail", count=3)
    run(env, ssd.store(b"fault-key-000002", 4096))
    settle(env, 1_000_000.0)

    assert ssd.core.read_only is True
    with pytest.raises(DeviceReadOnlyError):
        run(env, ssd.store(b"fault-key-000003", 4096))
    assert run(env, ssd.retrieve(KEY)) == 4096


# -- seeded determinism --------------------------------------------------------


def _measured_run(personality, seed):
    """One traced statistical-fault run; returns (stats dict, span count)."""
    tracer = Tracer(TraceConfig(), TraceCollector(1 << 18))
    fault_config = fault_profile(0.05, seed=seed)
    geometry = lab_geometry(8)
    scheme = KeyScheme(prefix=b"det-", digits=12)
    spec = WorkloadSpec(
        n_ops=200,
        op="mixed",
        population=200,
        key_scheme=scheme,
        value_bytes=4096,
        read_fraction=0.5,
        seed=13,
    )
    if personality == "kv":
        rig = build_kv_rig(geometry, tracer=tracer, fault_config=fault_config)
        rig.device.fast_fill(200, 4096, scheme)
        adapter = rig.adapter
    else:
        rig = build_block_rig(geometry, tracer=tracer,
                              fault_config=fault_config)
        rig.device.prime_sequential_fill(200)
        adapter = rig.adapter(4096)
    execute_workload(
        rig.env, adapter, generate_operations(spec),
        queue_depth=4, name="det", stop_after_us=60e6,
    )
    stats = dataclasses.asdict(rig.device.stats)
    return stats, len(tracer.collector.records())


@pytest.mark.parametrize("personality", ["kv", "block"])
def test_identical_seeds_replay_identical_stats_and_spans(personality):
    first_stats, first_spans = _measured_run(personality, seed=21)
    second_stats, second_spans = _measured_run(personality, seed=21)
    assert first_stats == second_stats
    assert first_spans == second_spans
    # The run actually exercised the fault model.
    assert first_stats["read_retries"] > 0


def test_different_seeds_diverge():
    # Not a hard guarantee for arbitrary seeds, but at a 5% rate over
    # hundreds of reads two streams virtually always differ; a failure
    # here means the seed is being ignored.
    first, _ = _measured_run("kv", seed=1)
    second, _ = _measured_run("kv", seed=2)
    assert first != second


# -- faults disabled is the bit-exact baseline ---------------------------------


def test_no_injector_runs_clean_and_counts_nothing():
    env, ssd = make_kv(None)
    run(env, ssd.store(KEY, 4096))
    settle(env)
    assert run(env, ssd.retrieve(KEY)) == 4096
    stats = ssd.stats
    assert stats.read_retries == 0
    assert stats.corrected_reads == 0
    assert stats.uncorrectable_reads == 0
    assert stats.program_fails == 0
    assert stats.erase_fails == 0
    assert stats.retired_blocks == 0
    assert stats.recovery_us == 0.0
