"""Call-graph construction: symbols, resolution, edges, reachability."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.callgraph import Project, module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_project(tmp_path, files):
    """Write ``files`` into a package ``pkg`` and parse it as a Project."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return Project.build([tmp_path])


def test_module_name_follows_package_structure(tmp_path):
    pkg = tmp_path / "outer" / "inner"
    pkg.mkdir(parents=True)
    (tmp_path / "outer" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(pkg / "mod.py") == "outer.inner.mod"
    assert module_name_for(pkg / "__init__.py") == "outer.inner"
    # The shipped tree resolves the same way from any walk anchor.
    assert module_name_for(
        REPO_ROOT / "src" / "repro" / "exec" / "cache.py"
    ) == "repro.exec.cache"


def test_symbols_functions_methods_classes(tmp_path):
    project = build_project(tmp_path, {
        "a.py": """
            def top():
                return 1

            class Device:
                def start(self):
                    return self.step()

                def step(self):
                    return 2
        """,
    })
    assert "pkg.a.top" in project.functions
    assert "pkg.a.Device.start" in project.functions
    assert project.functions["pkg.a.Device.start"].is_method
    assert not project.functions["pkg.a.top"].is_method
    device = project.classes["pkg.a.Device"]
    assert device.methods == {
        "start": "pkg.a.Device.start", "step": "pkg.a.Device.step",
    }


def test_edges_resolve_imports_aliases_and_self_calls(tmp_path):
    project = build_project(tmp_path, {
        "util.py": """
            def helper():
                return 1
        """,
        "main.py": """
            from pkg.util import helper
            from pkg import util as u

            def direct():
                return helper()

            def through_alias():
                return u.helper()

            class Runner:
                def go(self):
                    return self.inner()

                def inner(self):
                    return direct()
        """,
    })
    edges = project.edges
    assert "pkg.util.helper" in edges["pkg.main.direct"]
    assert "pkg.util.helper" in edges["pkg.main.through_alias"]
    assert "pkg.main.Runner.inner" in edges["pkg.main.Runner.go"]
    assert "pkg.main.direct" in edges["pkg.main.Runner.inner"]


def test_constructor_call_routes_to_init(tmp_path):
    project = build_project(tmp_path, {
        "a.py": """
            class Widget:
                def __init__(self):
                    self.size = 1

            def make():
                return Widget()
        """,
    })
    assert "pkg.a.Widget.__init__" in project.edges["pkg.a.make"]


def test_transitive_callees_and_reachability(tmp_path):
    project = build_project(tmp_path, {
        "chain.py": """
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1

            def island():
                return 2
        """,
    })
    reached = project.transitive_callees("pkg.chain.a")
    assert reached == {"pkg.chain.b", "pkg.chain.c"}
    assert project.reachable_from(["pkg.chain.a"]) == {
        "pkg.chain.a", "pkg.chain.b", "pkg.chain.c",
    }
    assert "pkg.chain.island" not in reached


def test_relative_imports_resolve(tmp_path):
    project = build_project(tmp_path, {
        "base.py": """
            def ground():
                return 0
        """,
        "user.py": """
            from .base import ground

            def call():
                return ground()
        """,
    })
    assert "pkg.base.ground" in project.edges["pkg.user.call"]


def test_unparsable_file_is_reported_not_fatal(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "ok.py").write_text("def fine():\n    return 1\n")
    (pkg / "broken.py").write_text("def broken(:\n")
    project = Project.build([tmp_path])
    assert "pkg.ok.fine" in project.functions
    assert len(project.unparsed) == 1
    assert project.unparsed[0].endswith("broken.py")


def test_format_graph_header_and_edges(tmp_path):
    project = build_project(tmp_path, {
        "a.py": """
            def f():
                return g()

            def g():
                return 1
        """,
    })
    dump = project.format_graph()
    header = dump.splitlines()[0]
    assert header.startswith("# call graph:")
    assert "pkg.a.f -> pkg.a.g" in dump


def test_shipped_tree_builds_one_project():
    project = Project.build([str(REPO_ROOT / "src" / "repro")])
    assert project.unparsed == []
    assert "repro.sim.engine.Environment.timeout" in project.functions
    assert "repro.exec.cache.point_key" in project.functions
    # The exec runner provably reaches the cache-key computation.
    reached = project.transitive_callees(
        "repro.exec.runner.SweepRunner.run"
    )
    assert "repro.exec.cache.point_key" in reached
