"""Unit tests for workload generation and the queue-depth runner."""

import pytest

from repro.errors import WorkloadError
from repro.kvbench.distributions import (
    ZipfianGenerator,
    sequential_indices,
    sliding_window_indices,
    uniform_indices,
)
from repro.kvbench.report import format_series, format_table, sparkline
from repro.kvbench.runner import drive_workload
from repro.kvbench.workload import (
    OpType,
    Pattern,
    WorkloadSpec,
    generate_operations,
)
from repro.kvftl.population import KeyScheme
from repro.sim.engine import Environment


# -- distributions ---------------------------------------------------------------


def test_sequential_wraps_population():
    assert list(sequential_indices(5, 8)) == [0, 1, 2, 3, 4, 0, 1, 2]


def test_uniform_deterministic_by_seed():
    a = list(uniform_indices(100, 50, seed=3))
    b = list(uniform_indices(100, 50, seed=3))
    c = list(uniform_indices(100, 50, seed=4))
    assert a == b
    assert a != c
    assert all(0 <= index < 100 for index in a)


def test_zipfian_skew():
    generator = ZipfianGenerator(10_000, theta=0.99, seed=7, scramble=False)
    draws = list(generator.indices(20_000))
    # Rank 0 is by far the most common under no scrambling.
    share_of_top = draws.count(0) / len(draws)
    assert share_of_top > 0.05
    assert all(0 <= index < 10_000 for index in draws)


def test_zipfian_scramble_disperses_hot_keys():
    plain = ZipfianGenerator(10_000, seed=7, scramble=False)
    scrambled = ZipfianGenerator(10_000, seed=7, scramble=True)
    top_plain = max(set(plain.indices(5000)), key=list(plain.indices(5000)).count)
    draws = list(scrambled.indices(5000))
    hottest = max(set(draws), key=draws.count)
    assert hottest != top_plain  # the hot identity moved somewhere else
    assert draws.count(hottest) / len(draws) > 0.03  # but skew remains


def test_zipfian_validates_parameters():
    with pytest.raises(WorkloadError):
        ZipfianGenerator(0)
    with pytest.raises(WorkloadError):
        ZipfianGenerator(10, theta=1.5)


def test_sliding_window_traverses_population():
    draws = list(sliding_window_indices(1000, 2000, window_fraction=0.05, seed=3))
    assert all(0 <= index < 1000 for index in draws)
    assert min(draws[:100]) < 100  # starts at the front
    assert max(draws[-100:]) > 800  # ends near the back


def test_sliding_window_stays_local():
    draws = list(sliding_window_indices(10_000, 1000, window_fraction=0.01, seed=3))
    for position, index in enumerate(draws):
        base = int(position / 1000 * 10_000)
        assert base <= index <= base + 100 or index < 100  # wraparound tail


# -- workload specs -----------------------------------------------------------------


def test_insert_uniform_covers_every_key_once():
    spec = WorkloadSpec(n_ops=50, op="insert", pattern=Pattern.UNIFORM,
                        population=50)
    keys = [op.key_index for op in generate_operations(spec)]
    assert sorted(keys) == list(range(50))
    assert keys != list(range(50))  # but not in order


def test_read_ops_have_zero_payload():
    spec = WorkloadSpec(n_ops=10, op="read", population=10)
    for op in generate_operations(spec):
        assert op.op is OpType.READ
        assert op.value_bytes == 0


def test_mixed_workload_fraction():
    spec = WorkloadSpec(n_ops=2000, op="mixed", population=100,
                        read_fraction=0.7, value_bytes=100)
    kinds = [op.op for op in generate_operations(spec)]
    reads = sum(1 for kind in kinds if kind is OpType.READ)
    assert 0.6 < reads / len(kinds) < 0.8


def test_keys_follow_scheme():
    scheme = KeyScheme(prefix=b"xy", digits=6)
    spec = WorkloadSpec(n_ops=5, op="insert", pattern=Pattern.SEQUENTIAL,
                        key_scheme=scheme)
    ops = list(generate_operations(spec))
    assert ops[0].key == b"xy000000"
    assert all(len(op.key) == scheme.key_bytes for op in ops)


def test_spec_validation():
    with pytest.raises(WorkloadError):
        WorkloadSpec(n_ops=0, op="insert")
    with pytest.raises(WorkloadError):
        WorkloadSpec(n_ops=1, op="unknown")
    with pytest.raises(WorkloadError):
        WorkloadSpec(n_ops=1, op="insert", value_bytes=-1)


# -- runner ----------------------------------------------------------------------------


class FixedLatencyAdapter:
    """Test double: constant-latency op execution with failure injection."""

    def __init__(self, env, latency_us=10.0, fail_every=0):
        self.env = env
        self.latency_us = latency_us
        self.fail_every = fail_every
        self.executed = 0

    def execute(self, op):
        self.executed += 1
        if self.fail_every and self.executed % self.fail_every == 0:
            from repro.errors import KeyNotFoundError

            def failing(env):
                yield env.timeout(1.0)
                raise KeyNotFoundError("injected")

            return failing(self.env)

        def success(env, nbytes):
            yield env.timeout(self.latency_us)
            return nbytes

        return success(self.env, op.value_bytes or 100)


def run_fixed(env, adapter, n_ops=40, queue_depth=4):
    spec = WorkloadSpec(n_ops=n_ops, op="insert", pattern=Pattern.SEQUENTIAL,
                        value_bytes=100)
    process = env.process(
        drive_workload(env, adapter, generate_operations(spec), queue_depth)
    )
    return env.run_until_complete(process)


def test_runner_executes_all_ops():
    env = Environment()
    adapter = FixedLatencyAdapter(env)
    result = run_fixed(env, adapter)
    assert result.completed_ops == 40
    assert result.failed_ops == 0
    assert result.latency.count() == 40


def test_queue_depth_parallelism():
    env1 = Environment()
    serial = run_fixed(env1, FixedLatencyAdapter(env1), queue_depth=1)
    env4 = Environment()
    parallel = run_fixed(env4, FixedLatencyAdapter(env4), queue_depth=4)
    assert parallel.elapsed_us == pytest.approx(serial.elapsed_us / 4)


def test_runner_counts_failures_without_raising():
    env = Environment()
    adapter = FixedLatencyAdapter(env, fail_every=5)
    result = run_fixed(env, adapter)
    assert result.failed_ops == 8
    assert result.completed_ops == 32


def test_runner_throughput():
    env = Environment()
    result = run_fixed(env, FixedLatencyAdapter(env, latency_us=10.0),
                       n_ops=100, queue_depth=1)
    assert result.throughput_kops() == pytest.approx(100.0)  # ops per ms


def test_runner_rejects_bad_queue_depth():
    env = Environment()
    with pytest.raises(WorkloadError):
        env.run_until_complete(
            env.process(
                drive_workload(env, FixedLatencyAdapter(env), [], queue_depth=0)
            )
        )


# -- report ---------------------------------------------------------------------------


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "22.25" in lines[3]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_series_and_sparkline():
    assert format_series("x", [1.0, 2.5]) == "x: [1.0, 2.5]"
    line = sparkline([0.0, 1.0, 2.0, 4.0])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
