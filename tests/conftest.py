"""Shared pytest configuration plus the miniature figure-case registry.

The smoke suite (`test_figures_smoke.py`) and the golden suite
(`test_golden_figures.py`) exercise the same experiments at the same
miniature scale; before the registry each suite re-invoked the figure
functions with its own copy of the parameters, so the invocations
drifted apart and every run was paid twice.  A figure now registers here
once — ``run`` builds the mini result, ``metrics`` reduces it to the
flat dict the golden suite diffs — and :func:`figure_result` memoizes
the run so both suites share one execution per pytest session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Union

import pytest

from repro.core.figures import (
    fig2_end_to_end,
    fig3_index_occupancy,
    fig4_value_size_concurrency,
    fig5_packing_bandwidth,
    fig6_foreground_gc,
    fig7_space_amplification,
    fig8_key_size_bandwidth,
    replay_rotation,
    replay_ttl_scan_mix,
)
from repro.frontend.run import frontend_load_sweep
from repro.units import KIB

Metric = Union[int, float]


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from live runs instead of "
        "diffing against them",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--regen-golden"))


# -- miniature figure-case registry --------------------------------------


@dataclass(frozen=True)
class FigureCase:
    """One miniature figure run shared by the smoke and golden suites."""

    name: str
    #: Invoke the experiment at its smallest meaningful scale.
    run: Callable[[], Any]
    #: Reduce the result to the flat metric dict the golden suite diffs.
    metrics: Callable[[Any], Dict[str, Metric]]


FIGURE_CASES: Dict[str, FigureCase] = {}
_RESULTS: Dict[str, Any] = {}


def register_figure(
    name: str,
    run: Callable[[], Any],
    metrics: Callable[[Any], Dict[str, Metric]],
) -> None:
    if name in FIGURE_CASES:
        raise ValueError(f"figure case {name!r} registered twice")
    FIGURE_CASES[name] = FigureCase(name, run, metrics)


def figure_result(name: str) -> Any:
    """The memoized result of one registered miniature figure run."""
    if name not in _RESULTS:
        _RESULTS[name] = FIGURE_CASES[name].run()
    return _RESULTS[name]


# -- case definitions ----------------------------------------------------


def _fig2_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for system in ("kvssd", "rocksdb"):
        for phase in ("insert", "update", "read"):
            metrics[f"{system}.rand.{phase}_us"] = (
                result.latency_us[system]["rand"][phase]
            )
        metrics[f"{system}.cpu_us_per_op"] = result.cpu_us_per_op[system]
    metrics["rocksdb_over_kv.insert"] = (
        result.latency_us["rocksdb"]["rand"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    return metrics


register_figure(
    "fig2",
    lambda: fig2_end_to_end(
        n_ops=250,
        queue_depth=8,
        systems=("kvssd", "rocksdb"),
        patterns=("seq", "rand"),
        blocks_per_plane=8,
    ),
    _fig2_metrics,
)


def _fig3_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {
        "low_kvps": result.low_kvps,
        "high_kvps": result.high_kvps,
    }
    for device in ("kv", "block"):
        for occupancy in ("low", "high"):
            for op in ("read", "write"):
                metrics[f"{device}.{occupancy}.{op}_us"] = (
                    result.latency_us[device][occupancy][op]
                )
    metrics["kv.read_degradation"] = (
        result.latency_us["kv"]["high"]["read"]
        / result.latency_us["kv"]["low"]["read"]
    )
    return metrics


register_figure(
    "fig3",
    lambda: fig3_index_occupancy(
        value_bytes=512,
        low_fraction=0.0005,
        high_fraction=0.5,
        measured_ops=200,
        blocks_per_plane=8,
    ),
    _fig3_metrics,
)


def _fig4_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for op in ("read", "write"):
        for qd in (1, 64):
            metrics[f"ratio.{op}.qd{qd}"] = result.ratio[op][qd][4096]
            metrics[f"kv.{op}.qd{qd}_us"] = (
                result.latency_us["kv"][op][qd][4096]
            )
    return metrics


register_figure(
    "fig4",
    lambda: fig4_value_size_concurrency(
        value_sizes=(4 * KIB,),
        queue_depths=(1, 64),
        n_ops=200,
        blocks_per_plane=8,
    ),
    _fig4_metrics,
)


def _fig5_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for size in (24 * KIB, 25 * KIB):
        metrics[f"kv.{size}.mib_s"] = result.kv_mib_s[size]
        metrics[f"block.{size}.mib_s"] = result.block_mib_s[size]
        metrics[f"kv.{size}.fragments"] = result.kv_fragments[size]
    return metrics


register_figure(
    "fig5",
    lambda: fig5_packing_bandwidth(
        value_sizes=(24 * KIB, 25 * KIB),
        n_ops=200,
        queue_depth=32,
        blocks_per_plane=8,
    ),
    _fig5_metrics,
)


def _fig6_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for scenario in ("kv-uniform", "rocksdb-uniform"):
        metrics[f"{scenario}.foreground_gc_runs"] = (
            result.foreground_gc_runs[scenario]
        )
        metrics[f"{scenario}.waf"] = result.stats_summary[scenario]["waf"]
        metrics[f"{scenario}.gc_moved_mib"] = (
            result.stats_summary[scenario]["gc_moved_mib"]
        )
        metrics[f"{scenario}.p99_us"] = (
            result.latency_summary[scenario]["p99"]
        )
        series = result.series[scenario]
        metrics[f"{scenario}.series_len"] = len(series)
        metrics[f"{scenario}.series_min"] = min(series)
        metrics[f"{scenario}.series_max"] = max(series)
    return metrics


register_figure(
    "fig6",
    lambda: fig6_foreground_gc(
        blocks_per_plane=4, scenarios=("kv-uniform", "rocksdb-uniform"),
    ),
    _fig6_metrics,
)


def _fig7_metrics(result: Any) -> Dict[str, Metric]:
    sizes = (50, 1024, 4096)
    metrics: Dict[str, Metric] = {
        "max_kvps_full_scale": result.max_kvps_full_scale,
        "rocksdb.sa": result.sa["rocksdb"][sizes[0]],
    }
    for size in sizes:
        metrics[f"kvssd.{size}.sa"] = result.sa["kvssd"][size]
        metrics[f"kvssd.{size}.analytic"] = result.kv_analytic[size]
        metrics[f"aerospike.{size}.sa"] = result.sa["aerospike"][size]
    return metrics


register_figure(
    "fig7",
    lambda: fig7_space_amplification(
        value_sizes=(50, 1024, 4096), kvps=3000, blocks_per_plane=8
    ),
    _fig7_metrics,
)


def _fig8_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for key_bytes in (16, 24):
        metrics[f"commands.k{key_bytes}"] = result.commands[key_bytes]
        for mode in ("sync", "async"):
            metrics[f"{mode}.k{key_bytes}.mib_s"] = (
                result.mib_s[mode][key_bytes]
            )
    metrics["cliff_ratio.sync"] = result.cliff_ratio("sync")
    metrics["cliff_ratio.async"] = result.cliff_ratio("async")
    return metrics


register_figure(
    "fig8",
    lambda: fig8_key_size_bandwidth(
        key_sizes=(16, 24), n_ops=400, blocks_per_plane=8
    ),
    _fig8_metrics,
)


#: Mini frontend sweep: one load on the device-bound plateau, one far
#: past saturation — enough to pin the knee shape without the full curve.
FRONTEND_MINI_LOADS = (16.0, 384.0)
FRONTEND_MINI_REQUESTS = 240


def _fig_frontend_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for cls in result.class_names:
        for load in result.loads_kops:
            tag = f"{cls}.{load:g}k"
            metrics[f"{tag}.p50_us"] = result.p50[cls][load]
            metrics[f"{tag}.p99_us"] = result.p99[cls][load]
            metrics[f"{tag}.p999_us"] = result.p999[cls][load]
            metrics[f"{tag}.queue_p99_us"] = result.queue_p99[cls][load]
            metrics[f"{tag}.shed_fraction"] = result.shed_fraction[cls][load]
            metrics[f"{tag}.violation_fraction"] = (
                result.violation_fraction[cls][load]
            )
    for load in result.loads_kops:
        metrics[f"throughput.{load:g}k"] = result.throughput_kops[load]
        metrics[f"mean_batch.{load:g}k"] = result.mean_batch[load]
    knee = result.knee_kops()
    metrics["knee_kops"] = -1.0 if knee is None else knee
    return metrics


register_figure(
    "fig_frontend",
    lambda: frontend_load_sweep(
        loads_kops=FRONTEND_MINI_LOADS,
        n_requests=FRONTEND_MINI_REQUESTS,
        blocks_per_plane=8,
    ),
    _fig_frontend_metrics,
)


#: Mini replay cases mirror the ``repro replay --smoke`` parameters, so
#: the goldens pin exactly what CI's smoke job executes.
REPLAY_MINI_ROTATES = (0, 64)
REPLAY_MINI_VARIANTS = ("plain", "ttl+scan")


def _fig_replay_rotation_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for device in ("kv", "block"):
        for rotate in REPLAY_MINI_ROTATES:
            tag = f"{device}.rot{rotate}"
            latency = result.latency_us[device][rotate]
            metrics[f"{tag}.mean_us"] = latency["mean"]
            metrics[f"{tag}.p99_us"] = latency["p99"]
            metrics[f"{tag}.p999_us"] = latency["p999"]
            metrics[f"{tag}.waf"] = result.stats_summary[device][rotate]["waf"]
            metrics[f"{tag}.completed"] = result.completed_ops[device][rotate]
        metrics[f"{device}.rotation_penalty"] = result.rotation_penalty(device)
    return metrics


register_figure(
    "fig_replay_rotation",
    lambda: replay_rotation(
        rotate_every=REPLAY_MINI_ROTATES,
        n_ops=200,
        population=512,
        working_set=64,
        blocks_per_plane=8,
    ),
    _fig_replay_rotation_metrics,
)


def _fig_replay_mix_metrics(result: Any) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for variant in REPLAY_MINI_VARIANTS:
        latency = result.latency_us[variant]
        ops = result.ops[variant]
        buckets = result.buckets[variant]
        metrics[f"{variant}.p99_us"] = latency["p99"]
        metrics[f"{variant}.read_p99_us"] = latency["read_p99"]
        metrics[f"{variant}.read_p999_us"] = latency["read_p999"]
        metrics[f"{variant}.completed"] = ops["completed"]
        metrics[f"{variant}.failed"] = ops["failed"]
        metrics[f"{variant}.deletes"] = ops["deletes"]
        metrics[f"{variant}.scans"] = ops["scans"]
        metrics[f"{variant}.bucket_keys"] = buckets["keys"]
        metrics[f"{variant}.bucket_count"] = buckets["count"]
        metrics[f"{variant}.bucket_page_writes"] = buckets["page_writes"]
        metrics[f"{variant}.waf"] = result.stats_summary[variant]["waf"]
    metrics["tail_inflation.ttl+scan"] = result.tail_inflation("ttl+scan")
    return metrics


register_figure(
    "fig_replay_mix",
    lambda: replay_ttl_scan_mix(
        variants=REPLAY_MINI_VARIANTS,
        n_ops=200,
        population=400,
        ttl_ops=120,
        blocks_per_plane=8,
    ),
    _fig_replay_mix_metrics,
)
