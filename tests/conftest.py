"""Shared pytest configuration for the repro test suite."""

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from live runs instead of "
        "diffing against them",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--regen-golden"))
