"""Unit tests for key schemes and primed populations."""

import pytest

from repro.kvftl.population import KeyScheme, PrimedPopulation


# -- KeyScheme ---------------------------------------------------------------


def test_key_scheme_roundtrip():
    scheme = KeyScheme(prefix=b"key-", digits=12)
    for index in (0, 1, 999, 10**12 - 1):
        key = scheme.key_for(index)
        assert len(key) == scheme.key_bytes == 16
        assert scheme.index_of(key) == index


def test_key_scheme_rejects_foreign_keys():
    scheme = KeyScheme(prefix=b"key-", digits=12)
    assert scheme.index_of(b"other-000000001") is None
    assert scheme.index_of(b"key-abcdefghijkl") is None
    assert scheme.index_of(b"key-0001") is None  # wrong length


def test_key_scheme_negative_index_rejected():
    with pytest.raises(ValueError):
        KeyScheme().key_for(-1)


def test_key_scheme_digits_validated():
    with pytest.raises(ValueError):
        KeyScheme(digits=0)


# -- PrimedPopulation --------------------------------------------------------------


def make_population(count=100, blobs_per_page=10):
    population = PrimedPopulation(
        scheme=KeyScheme(prefix=b"fill", digits=12),
        count=count,
        value_bytes=512,
        footprint_bytes=1024,
        blobs_per_page=blobs_per_page,
    )
    pages = -(-count // blobs_per_page)
    for page_seq in range(pages):
        population.page_blocks.append(100 + page_seq)
        population.page_indices.append(page_seq % 4)
    return population


def test_location_arithmetic():
    population = make_population()
    assert population.page_of(0) == 0
    assert population.page_of(9) == 0
    assert population.page_of(10) == 1
    assert population.location_of(25) == (102, 2)


def test_lookup_by_key():
    population = make_population()
    key = population.scheme.key_for(42)
    assert population.lookup(key) == 42
    assert population.lookup(population.scheme.key_for(100)) is None
    assert population.lookup(b"unrelated-key-00") is None


def test_override_kills_primed_identity():
    population = make_population()
    population.override(42)
    assert population.lookup(population.scheme.key_for(42)) is None
    assert population.live_count == 99
    with pytest.raises(ValueError):
        population.override(42)


def test_relocation_changes_location():
    population = make_population()
    population.relocate(7, block=555, page=9)
    assert population.location_of(7) == (555, 9)
    # Other pairs keep their original placement.
    assert population.location_of(8) == (100, 0)


def test_relocate_overridden_rejected():
    population = make_population()
    population.override(7)
    with pytest.raises(ValueError):
        population.relocate(7, 1, 1)


def test_override_clears_relocation():
    population = make_population()
    population.relocate(7, 555, 9)
    population.override(7)
    assert 7 not in population.relocated


def test_indices_in_fill_page_handles_tail():
    population = make_population(count=25, blobs_per_page=10)
    assert list(population.indices_in_fill_page(0)) == list(range(10))
    assert list(population.indices_in_fill_page(2)) == [20, 21, 22, 23, 24]
    with pytest.raises(ValueError):
        population.indices_in_fill_page(3)


def test_index_bounds_checked():
    population = make_population()
    with pytest.raises(ValueError):
        population.location_of(100)
