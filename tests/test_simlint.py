"""simlint: one positive and one negative fixture per rule, CLI wiring.

Each rule gets a minimal snippet that must trigger it and a twin snippet
using the sanctioned idiom that must stay clean; a final test asserts
the shipped ``src/repro`` tree lints clean through the real CLI.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths, lint_source
from repro.lint.engine import format_findings, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source: str):
    return [f.code for f in lint_source(source)]


# -- SIM001: wall clock -------------------------------------------------------


def test_sim001_flags_wall_clock_reads():
    flagged = codes(
        "import time\n"
        "def measure():\n"
        "    return time.time()\n"
    )
    assert flagged == ["SIM001"]
    assert codes(
        "from time import perf_counter\n"
        "started = perf_counter()\n"
    ) == ["SIM001"]
    assert codes(
        "import datetime\n"
        "stamp = datetime.datetime.now()\n"
    ) == ["SIM001"]
    assert codes(
        "from datetime import datetime\n"
        "stamp = datetime.utcnow()\n"
    ) == ["SIM001"]


def test_sim001_allows_simulated_clock():
    assert codes(
        "def wait(env):\n"
        "    started = env.now\n"
        "    tracer.now()\n"  # Tracer.now reads the sim clock
        "    return env.now - started\n"
    ) == []
    # time.sleep is not a clock *read*; other linters police it.
    assert codes("import time\ntime.sleep(1)\n") == []


# -- SIM002: unseeded randomness ---------------------------------------------


def test_sim002_flags_global_and_unseeded_rng():
    assert codes(
        "import random\n"
        "value = random.random()\n"
    ) == ["SIM002"]
    assert codes(
        "from random import randint\n"
        "value = randint(1, 6)\n"
    ) == ["SIM002"]
    assert codes(
        "import random\n"
        "rng = random.Random()\n"
    ) == ["SIM002"]
    assert codes(
        "import random\n"
        "rng = random.SystemRandom(4)\n"
    ) == ["SIM002"]


def test_sim002_allows_seeded_instances():
    assert codes(
        "import random\n"
        "rng = random.Random(1234)\n"
        "value = rng.random()\n"
    ) == []
    assert codes(
        "from random import Random\n"
        "rng = Random(seed)\n"
    ) == []


# -- SIM003: dropped generator ------------------------------------------------


def test_sim003_flags_unstarted_generator_statement():
    assert codes(
        "def worker(env):\n"
        "    yield env.timeout(1)\n"
        "def main(env):\n"
        "    worker(env)\n"
    ) == ["SIM003"]
    assert codes(
        "class Device:\n"
        "    def drain(self):\n"
        "        yield self.env.timeout(1)\n"
        "    def close(self):\n"
        "        self.drain()\n"
    ) == ["SIM003"]


def test_sim003_allows_started_or_delegated_generators():
    assert codes(
        "def worker(env):\n"
        "    yield env.timeout(1)\n"
        "def main(env):\n"
        "    env.process(worker(env))\n"
        "    proc = worker(env)\n"
        "def outer(env):\n"
        "    yield from worker(env)\n"
    ) == []
    # A same-named method on *another* object is not provably ours.
    assert codes(
        "class Device:\n"
        "    def drain(self):\n"
        "        yield self.env.timeout(1)\n"
        "    def flush(self):\n"
        "        self.buffer.drain()\n"
    ) == []


# -- SIM004: timestamp equality ----------------------------------------------


def test_sim004_flags_timestamp_equality():
    assert codes("ready = env.now == deadline_us\n") == ["SIM004"]
    assert codes("if started_us != finished_us:\n    pass\n") == ["SIM004"]


def test_sim004_allows_ordering_and_tolerance():
    assert codes("done = env.now >= deadline_us\n") == []
    assert codes(
        "from repro.units import times_equal\n"
        "same = times_equal(started_us, finished_us)\n"
    ) == []
    # String constants that merely *name* a timestamp field are fine.
    assert codes("ok = field_name != 'command_overhead_us'\n") == []


# -- SIM005: mutable defaults -------------------------------------------------


def test_sim005_flags_mutable_and_call_defaults():
    assert codes("def add(item, bucket=[]):\n    bucket.append(item)\n") \
        == ["SIM005"]
    assert codes(
        "def build(costs=DriverCosts()):\n    return costs\n"
    ) == ["SIM005"]
    assert codes(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Spec:\n"
        "    scheme: KeyScheme = KeyScheme()\n"
    ) == ["SIM005"]


def test_sim005_allows_none_factory_and_immutable_defaults():
    assert codes(
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class Spec:\n"
        "    items: list = field(default_factory=list)\n"
        "    limit: float = float('inf')\n"
        "    MIXES = {'A': 1}\n"  # unannotated: class constant, not a field
        "def build(costs=None, cap=float('inf')):\n"
        "    return costs\n"
    ) == []


# -- SIM006: phase context manager -------------------------------------------


def test_sim006_flags_unmanaged_phase():
    assert codes(
        "def op(span):\n"
        "    span.phase('flash')\n"
        "    return 1\n"
    ) == ["SIM006"]


def test_sim006_allows_with_statement():
    assert codes(
        "def op(span):\n"
        "    with span.phase('flash'):\n"
        "        return 1\n"
    ) == []


def test_sim007_flags_hot_path_allocation_patterns():
    hot = "src/repro/sim/queue.py"
    packed = (
        "from heapq import heappush\n"
        "def schedule(queue, t, seq, event):\n"
        "    heappush(queue, (t, seq, event))\n"
    )
    assert [f.code for f in lint_source(packed, hot)] == ["SIM007"]
    closure = (
        "def kick(env, op):\n"
        "    env.schedule(lambda: op.run(), 5.0)\n"
    )
    assert [f.code for f in lint_source(closure, hot)] == ["SIM007"]
    callback = (
        "def wire(event, op):\n"
        "    event.callbacks.append(lambda ev: op.finish(ev))\n"
    )
    assert [f.code for f in lint_source(callback, hot)] == ["SIM007"]


def test_sim007_scoped_to_sim_and_flash_paths():
    packed = (
        "from heapq import heappush\n"
        "def schedule(queue, t, seq, event):\n"
        "    heappush(queue, (t, seq, event))\n"
    )
    # Outside the hot-path directories the pattern is fine (e.g. a
    # priority queue in experiment orchestration code).
    assert lint_source(packed, "src/repro/exec/engine.py") == []
    assert lint_source(packed, "tools/replay.py") == []
    assert [f.code for f in lint_source(packed, "src/repro/flash/nand.py")] \
        == ["SIM007"]


def test_sim007_allows_allocation_free_hot_code():
    clean = (
        "from heapq import heappush\n"
        "def schedule(queue, entry, event, resume):\n"
        "    heappush(queue, entry)\n"  # reused entry, no packing
        "    event.callbacks.append(resume)\n"  # bound method, no lambda
    )
    assert lint_source(clean, "src/repro/sim/queue.py") == []


# -- suppressions -------------------------------------------------------------


def test_line_suppression_silences_only_that_code_and_line():
    clean = (
        "import time\n"
        "started = time.time()  # simlint: disable=SIM001\n"
    )
    assert codes(clean) == []
    other_code = (
        "import time\n"
        "started = time.time()  # simlint: disable=SIM002\n"
    )
    assert codes(other_code) == ["SIM001"]
    other_line = (
        "import time\n"
        "# simlint: disable=SIM001\n"
        "started = time.time()\n"
    )
    assert codes(other_line) == ["SIM001"]


def test_file_suppression_and_multi_code_parse():
    source = (
        "# simlint: disable-file=SIM001\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.perf_counter()\n"
    )
    assert codes(source) == []
    file_codes, line_codes = parse_suppressions(
        "x = 1  # simlint: disable=SIM001,SIM005\n"
    )
    assert file_codes == set()
    assert line_codes == {1: {"SIM001", "SIM005"}}
    # A bare disable with no codes suppresses nothing.
    assert codes(
        "import time\nstarted = time.time()  # simlint: disable\n"
    ) == ["SIM001"]


# -- engine / CLI -------------------------------------------------------------


def test_syntax_error_reports_sim000():
    assert codes("def broken(:\n") == ["SIM000"]


def test_rule_catalog_covers_all_emitted_codes():
    assert set(RULES) == {
        "SIM000", "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
        "SIM007",
        # Whole-program rules (repro.lint.dataflow).
        "SIM008", "SIM009", "SIM010", "SIM011", "SIM012",
    }


def test_format_findings_renders_path_line_and_summary(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstarted = time.time()\n")
    findings = lint_paths([tmp_path])
    report = format_findings(findings)
    assert f"{bad}:2:11: SIM001" in report
    assert "simlint: 1 finding" in report
    # The summary line carries per-rule hit counts.
    assert "[SIM001×1]" in report
    assert format_findings([]) == "simlint: clean"


def test_shipped_tree_lints_clean_via_cli():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "simlint: clean" in result.stdout


def test_cli_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "def jitter(values=[]):\n"
        "    return random.random()\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert "SIM002" in result.stdout
    assert "SIM005" in result.stdout


def test_list_rules_flag():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    for code in RULES:
        assert code in result.stdout


def test_explain_prints_rationale_and_examples():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--explain", "SIM009"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "SIM009" in result.stdout
    assert "Rationale:" in result.stdout
    assert "Bad::" in result.stdout
    assert "Good::" in result.stdout
    unknown = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--explain", "SIM999"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert unknown.returncode == 2


def test_sarif_output_is_valid_and_locates_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstarted = time.time()\n")
    sarif_path = tmp_path / "findings.sarif"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad),
         "--sarif", str(sarif_path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1  # findings still set the exit code
    document = json.loads(sarif_path.read_text())
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    (finding,) = run["results"]
    assert finding["ruleId"] == "SIM001"
    region = finding["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    rules = run["tool"]["driver"]["rules"]
    assert [rule["id"] for rule in rules] == ["SIM001"]


def test_timings_flag_reports_per_rule_wall_times(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("VALUE = 1\n")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path), "--timings"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    for label in ("per-module", "SIM008", "SIM012", "total"):
        assert f"simlint-timing: {label} " in result.stdout


def test_pycache_artifacts_are_invisible_to_walker_and_salt(tmp_path):
    """Hygiene: a stray .py under __pycache__ is neither linted nor salted."""
    from repro.lint.sources import is_python_source, walk_python_sources

    good = tmp_path / "mod.py"
    good.write_text("VALUE = 1\n")
    cache_dir = tmp_path / "__pycache__"
    cache_dir.mkdir()
    stray = cache_dir / "stray.py"
    stray.write_text("import time\nx = time.time()\n")
    hidden = tmp_path / ".build" / "gen.py"
    hidden.parent.mkdir()
    hidden.write_text("VALUE = 2\n")
    assert walk_python_sources(tmp_path) == [good]
    assert not is_python_source(stray)
    assert is_python_source(good)
    assert lint_paths([tmp_path]) == []


def test_mypy_strict_on_substrate_if_available():
    """Typecheck gate: strict on sim/flash/ftl/faults per pyproject.toml.

    mypy is an optional tool, not a runtime dependency — when it is not
    installed (the lab image ships without it) this skips and the CI
    typecheck job is authoritative.
    """
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
