"""Property-based tests (hypothesis) for the cluster's consistent-hash ring.

The two load-bearing properties from the module docstring of
``repro.cluster.ring``:

* removing a node remaps only the tokens it owned (everything else keeps
  its exact primary, and the remapped fraction tracks 1/N within a
  vnode-variance tolerance);
* adding the node back restores the exact prior assignment, because ring
  points are a pure function of member names.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing, stable_hash
from repro.errors import ConfigurationError

# Node pools are drawn as unique short names; tokens mimic the router's
# "tenant/partition" placement tokens.
node_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=2,
    max_size=8,
    unique=True,
)
token_sets = st.lists(
    st.integers(min_value=0, max_value=4096).map(lambda i: f"ten/{i}"),
    min_size=1,
    max_size=200,
    unique=True,
)
vnode_counts = st.integers(min_value=1, max_value=64)


# -- determinism ---------------------------------------------------------------


@given(nodes=node_names, tokens=token_sets, vnodes=vnode_counts)
@settings(max_examples=50)
def test_assignment_is_a_pure_function_of_membership(nodes, tokens, vnodes):
    """Construction order never matters: same members, same placement."""
    forward = HashRing(nodes, vnodes=vnodes)
    backward = HashRing(list(reversed(nodes)), vnodes=vnodes)
    assert forward.assignment(tokens) == backward.assignment(tokens)


def test_stable_hash_is_process_independent():
    # Pinned constant: MD5 of b"shard0#0", first 8 bytes big-endian.
    # A change here means every cached cluster result is invalidated.
    assert stable_hash(b"shard0#0") == 0x1D817794D01D2955


# -- minimal disruption on removal ---------------------------------------------


@given(nodes=node_names, tokens=token_sets, vnodes=vnode_counts)
@settings(max_examples=50)
def test_remove_remaps_only_the_removed_nodes_tokens(nodes, tokens, vnodes):
    ring = HashRing(nodes, vnodes=vnodes)
    victim = nodes[0]
    before = ring.assignment(tokens)
    ring.remove(victim)
    after = ring.assignment(tokens)
    for token in tokens:
        if before[token] != victim:
            # Survivor-owned tokens must not move at all.
            assert after[token] == before[token]
        else:
            assert after[token] != victim


@given(nodes=node_names, vnodes=st.integers(min_value=8, max_value=64))
@settings(max_examples=25)
def test_removed_fraction_tracks_one_over_n(nodes, vnodes):
    """The remapped share approximates 1/N, within vnode variance.

    With few vnodes per node the arc lengths are noisy, so the bound is
    loose: the removed node must own *some* tokens' worth of the ring
    less than the whole of it.  A dense fixed token set keeps the
    measurement itself deterministic.
    """
    tokens = [f"ten/{i}" for i in range(1024)]
    ring = HashRing(nodes, vnodes=vnodes)
    victim = nodes[0]
    owned = sum(
        1 for owner in ring.assignment(tokens).values() if owner == victim
    )
    fraction = owned / len(tokens)
    expected = 1.0 / len(nodes)
    # Arc-length variance of `vnodes` random points: generous envelope
    # of 4x either way, which still rejects a broken (all-or-nothing)
    # placement while passing every healthy configuration.
    assert fraction <= min(1.0, 4.0 * expected)
    if vnodes >= 16 and len(nodes) <= 4:
        assert fraction >= expected / 4.0


@given(nodes=node_names, tokens=token_sets, vnodes=vnode_counts)
@settings(max_examples=50)
def test_surviving_replica_prefix_is_preserved(nodes, tokens, vnodes):
    """Replica lists lose only the removed node; survivors keep order."""
    ring = HashRing(nodes, vnodes=vnodes)
    victim = nodes[-1]
    replicas = min(3, len(nodes))
    before = {token: ring.preference(token, replicas) for token in tokens}
    ring.remove(victim)
    after_n = min(replicas, len(ring))
    for token in tokens:
        survivors = [node for node in before[token] if node != victim]
        assert ring.preference(token, after_n)[: len(survivors)] == survivors


# -- add-back restores the prior world -----------------------------------------


@given(nodes=node_names, tokens=token_sets, vnodes=vnode_counts)
@settings(max_examples=50)
def test_add_back_restores_exact_prior_assignment(nodes, tokens, vnodes):
    ring = HashRing(nodes, vnodes=vnodes)
    replicas = min(3, len(nodes))
    before_primary = ring.assignment(tokens)
    before_pref = {token: ring.preference(token, replicas) for token in tokens}
    victim = nodes[len(nodes) // 2]
    ring.remove(victim)
    ring.add(victim)
    assert ring.assignment(tokens) == before_primary
    for token in tokens:
        assert ring.preference(token, replicas) == before_pref[token]


# -- guard rails ---------------------------------------------------------------


def test_ring_rejects_degenerate_configurations():
    with pytest.raises(ConfigurationError):
        HashRing([])
    with pytest.raises(ConfigurationError):
        HashRing(["a", "a"])
    with pytest.raises(ConfigurationError):
        HashRing(["a"], vnodes=0)
    ring = HashRing(["a", "b"])
    with pytest.raises(ConfigurationError):
        ring.add("a")
    with pytest.raises(ConfigurationError):
        ring.remove("zz")
    with pytest.raises(ConfigurationError):
        ring.preference("t", 3)
    ring.remove("a")
    with pytest.raises(ConfigurationError):
        ring.remove("b")
    assert ring.primary("t") == "b"
