"""Integration tests for the KV-SSD personality."""

import pytest

from repro.errors import (
    CapacityLimitError,
    ConfigurationError,
    InvalidKeyError,
    InvalidValueError,
    KeyNotFoundError,
)
from repro.flash.geometry import Geometry
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.kvftl.population import KeyScheme
from repro.sim.engine import Environment
from repro.units import KIB, MIB


def make_ssd(blocks_per_plane=16, **config_kwargs):
    geometry = Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )
    env = Environment()
    ssd = KVSSD(env, geometry, config=KVSSDConfig(**config_kwargs))
    return env, ssd


def run(env, generator, limit_delta=600e6):
    process = env.process(generator)
    return env.run_until_complete(process, limit=env.now + limit_delta)


def key(i):
    return b"testkey-%08d" % i


def test_store_retrieve_roundtrip():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.store(key(1), 4096))
        value = yield env.process(ssd.retrieve(key(1)))
        return value

    assert run(env, proc(env)) == 4096
    assert ssd.live_kvps == 1


def test_retrieve_absent_raises():
    env, ssd = make_ssd()
    with pytest.raises(KeyNotFoundError):
        run(env, ssd.retrieve(key(404)))


def test_exist_truth():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.store(key(1), 100))
        present = yield env.process(ssd.exist(key(1)))
        absent = yield env.process(ssd.exist(key(2)))
        return present, absent

    assert run(env, proc(env)) == (True, False)


def test_delete_removes_pair():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.store(key(1), 512))
        yield env.process(ssd.drain())
        yield env.process(ssd.delete(key(1)))

    run(env, proc(env))
    assert ssd.live_kvps == 0
    assert not ssd.contains(key(1))
    with pytest.raises(KeyNotFoundError):
        run(env, ssd.retrieve(key(1)))


def test_update_replaces_and_reclaims_accounting():
    env, ssd = make_ssd()

    def proc(env):
        yield env.process(ssd.store(key(1), 1000))
        yield env.process(ssd.drain())
        yield env.process(ssd.store(key(1), 3000))
        yield env.process(ssd.drain())
        value = yield env.process(ssd.retrieve(key(1)))
        return value

    assert run(env, proc(env)) == 3000
    assert ssd.live_kvps == 1
    layout = ssd.layout_for(len(key(1)), 3000)
    assert ssd.space.device_bytes == layout.footprint_bytes


def test_key_and_value_validation():
    env, ssd = make_ssd()
    with pytest.raises(InvalidKeyError):
        run(env, ssd.store(b"abc", 100))
    with pytest.raises(InvalidKeyError):
        run(env, ssd.store(b"x" * 300, 100))
    with pytest.raises(InvalidValueError):
        run(env, ssd.store(key(1), 3 * MIB))


def test_sequential_and_random_store_latency_identical():
    # The paper's central Fig. 2 finding: hashing removes any sequential
    # advantage on the KV device.
    env, ssd = make_ssd()

    def measure(env, keys):
        latencies = []
        for one in keys:
            started = env.now
            yield env.process(ssd.store(one, 4096))
            latencies.append(env.now - started)
        yield env.process(ssd.drain())
        return sum(latencies) / len(latencies)

    import random

    sequential = run(env, measure(env, [key(i) for i in range(200)]))
    order = list(range(200, 400))
    random.Random(3).shuffle(order)
    scattered = run(env, measure(env, [key(i) for i in order]))
    assert scattered == pytest.approx(sequential, rel=0.1)


def test_split_value_store_and_retrieve():
    env, ssd = make_ssd()
    big = 60 * KIB

    def proc(env):
        yield env.process(ssd.store(key(9), big))
        yield env.process(ssd.drain())
        value = yield env.process(ssd.retrieve(key(9)))
        return value

    assert run(env, proc(env)) == big
    record = ssd._records[key(9)]
    assert len(record.fragments) > 1
    assert all(location is not None for location in record.locations)
    # Fragments land on distinct pages.
    assert len(set(record.locations)) == len(record.locations)


def test_split_store_slower_than_unsplit():
    env, ssd = make_ssd()

    def timed_store(env, one, value_bytes):
        started = env.now
        yield env.process(ssd.store(one, value_bytes))
        return env.now - started

    small = run(env, timed_store(env, key(1), 16 * KIB))
    large = run(env, timed_store(env, key(2), 32 * KIB))
    assert large > small + 100.0  # splitting penalty is material


def test_fast_fill_pairs_indistinguishable_from_stored():
    env, ssd = make_ssd()
    scheme = KeyScheme(prefix=b"fill", digits=12)
    population = ssd.fast_fill(5000, 512, scheme)
    assert ssd.live_kvps == 5000
    assert population.live_count == 5000

    def proc(env):
        value = yield env.process(ssd.retrieve(scheme.key_for(777)))
        yield env.process(ssd.store(scheme.key_for(777), 512))  # update
        yield env.process(ssd.drain())
        updated = yield env.process(ssd.retrieve(scheme.key_for(777)))
        yield env.process(ssd.delete(scheme.key_for(778)))
        return value, updated

    assert run(env, proc(env)) == (512, 512)
    assert ssd.live_kvps == 4999
    assert population.live_count == 4998  # 777 overridden, 778 deleted


def test_fast_fill_rejects_split_and_duplicates():
    env, ssd = make_ssd()
    scheme = KeyScheme(prefix=b"fill", digits=12)
    with pytest.raises(ConfigurationError):
        ssd.fast_fill(10, 30 * KIB, scheme)
    ssd.fast_fill(10, 512, scheme)
    with pytest.raises(ConfigurationError):
        ssd.fast_fill(10, 512, scheme)


def test_capacity_limit_enforced():
    env, ssd = make_ssd()
    scheme = KeyScheme(prefix=b"fill", digits=12)
    with pytest.raises(CapacityLimitError):
        ssd.fast_fill(ssd.max_kvps + 1, 512, scheme)


def test_space_amplification_small_values():
    env, ssd = make_ssd()
    ssd.fast_fill(1000, 50, KeyScheme(prefix=b"fill", digits=12))
    # 50 B values with 16 B keys: ~15.5x (paper: up to ~17-20x).
    assert 14.0 < ssd.space.amplification() < 17.0


def test_gc_relocates_and_preserves_pairs():
    env, ssd = make_ssd(blocks_per_plane=4, gc_threshold_fraction=0.25)
    scheme = KeyScheme(prefix=b"fill", digits=12)
    count = 3000  # ~16 blocks of 4 KiB blobs on this tiny geometry
    ssd.fast_fill(count, 4096, scheme)

    def churn(env):
        # Update a rotating subset until GC must run.
        for round_index in range(8):
            for i in range(0, count, 3):
                yield env.process(ssd.store(scheme.key_for(i), 4096))
        yield env.process(ssd.drain())

    run(env, churn(env))
    assert ssd.counters.gc_runs > 0
    assert ssd.live_kvps == count

    def verify(env):
        # Spot-check reads across primed, updated, and relocated pairs.
        sizes = []
        for i in (0, 1, 2, 3, count // 2, count - 1):
            value = yield env.process(ssd.retrieve(scheme.key_for(i)))
            sizes.append(value)
        return sizes

    assert run(env, verify(env)) == [4096] * 6


def test_valid_bytes_consistency_after_churn():
    env, ssd = make_ssd(blocks_per_plane=4, gc_threshold_fraction=0.25)
    scheme = KeyScheme(prefix=b"fill", digits=12)
    count = 2000

    def churn(env):
        for i in range(count):
            yield env.process(ssd.store(scheme.key_for(i), 2048))
        for i in range(0, count, 2):
            yield env.process(ssd.store(scheme.key_for(i), 2048))
        yield env.process(ssd.drain())

    run(env, churn(env))
    # Array-level valid bytes equal the space accountant's device bytes.
    assert ssd.array.total_valid_bytes() == ssd.space.device_bytes


def test_iterator_bucket_counts_follow_stores():
    env, ssd = make_ssd()

    def proc(env):
        for i in range(10):
            yield env.process(ssd.store(b"aaaa-%010d" % i, 100))
        for i in range(5):
            yield env.process(ssd.store(b"bbbb-%010d" % i, 100))

    run(env, proc(env))
    assert ssd.iterators.bucket_count(b"aaaa") == 10
    assert ssd.iterators.bucket_count(b"bbbb") == 5


def test_multi_command_key_costs_more_interface_time():
    env, ssd = make_ssd()

    def timed(env, ncommands):
        started = env.now
        yield env.process(ssd.store(key(1) if ncommands == 1 else key(2),
                                    1024, ncommands))
        return env.now - started

    one = run(env, timed(env, 1))
    two = run(env, timed(env, 2))
    assert two == pytest.approx(one + ssd.config.host_interface_us)
