"""Property-based tests (hypothesis) on the open-loop serving frontend.

Four invariants the frontend must hold for *any* configuration, not just
the calibrated sweep scenario:

* arrival processes are seed-deterministic, strictly increasing, emit
  exactly ``n_requests`` times, and realize their configured mean rate;
* bounded admission never acknowledges a shed request — shed requests
  carry the ``COMMAND_INTERRUPTED`` status and never reach the device;
* the batcher preserves per-tenant FIFO order;
* the scheduler never starves a non-empty SLO class.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.arrivals import PROCESSES, ArrivalSpec, generate_arrivals
from repro.frontend.frontend import run_frontend
from repro.frontend.spec import FrontendSpec, SLOClass, TenantLoad
from repro.nvme.command import NvmeStatus

#: Mean-rate tolerance per process kind.  The MMPP's dwell-time variance
#: converges slowest; the homogeneous Poisson fastest.
RATE_TOLERANCE = {"poisson": 0.10, "mmpp": 0.25, "diurnal": 0.15}


# -- arrival processes ---------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    # "trace" replays explicit timestamps instead of synthesizing them;
    # its determinism and rate properties live in tests/test_traces.py.
    process=st.sampled_from(tuple(p for p in PROCESSES if p != "trace")),
    rate_kops=st.sampled_from((8.0, 64.0, 400.0)),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_arrivals_deterministic_monotonic_rate_correct(
    process: str, rate_kops: float, seed: int
) -> None:
    n_requests = 3000
    rate_per_us = rate_kops * 1000.0 / 1e6
    # The realized mean only converges over a window holding many
    # modulation cycles, so scale the mmpp dwell and the diurnal period
    # to the expected span (the mean is invariant to this time scaling).
    span = n_requests / rate_per_us
    modulation = {}
    if process == "mmpp":
        modulation["mean_burst_us"] = span / 600.0
    elif process == "diurnal":
        modulation["diurnal_period_us"] = span / 4.0
    spec = ArrivalSpec(
        rate_ops_s=rate_kops * 1000.0,
        n_requests=n_requests,
        process=process,
        seed=seed,
        **modulation,
    )
    times = list(generate_arrivals(spec))
    assert times == list(generate_arrivals(spec))  # seed-deterministic
    assert len(times) == spec.n_requests
    assert times[0] > 0.0
    assert all(b > a for a, b in zip(times, times[1:]))  # strictly increasing
    realized_rate = spec.n_requests / times[-1]  # requests per us
    relative_error = abs(realized_rate - spec.rate_per_us) / spec.rate_per_us
    assert relative_error < RATE_TOLERANCE[process]


# -- serving invariants --------------------------------------------------


def _overload_spec(
    scheduler: str, admit_capacity: int, seed: int
) -> FrontendSpec:
    """A two-class overload: offered load far past device capacity, so a
    small admission window must shed and both class queues stay deep."""
    classes = (
        SLOClass(name="lat", deadline_us=2_000.0),
        SLOClass(name="bulk", deadline_us=20_000.0),
    )
    tenants = (
        TenantLoad(
            name="lat",
            slo="lat",
            arrivals=ArrivalSpec(
                rate_ops_s=400_000.0, n_requests=160, seed=seed
            ),
            op="read",
            population=64,
            seed=seed,
        ),
        TenantLoad(
            name="bulk",
            slo="bulk",
            arrivals=ArrivalSpec(
                rate_ops_s=200_000.0,
                n_requests=80,
                process="mmpp",
                seed=seed + 1,
            ),
            op="read",
            value_bytes=512,
            population=64,
            seed=seed + 1,
        ),
    )
    return FrontendSpec(
        classes=classes,
        tenants=tenants,
        admit_capacity=admit_capacity,
        dispatch_width=2,
        scheduler=scheduler,
        seed=seed,
    )


@settings(max_examples=6, deadline=None)
@given(
    scheduler=st.sampled_from(("edf", "fifo")),
    admit_capacity=st.integers(min_value=4, max_value=24),
    seed=st.integers(min_value=1, max_value=1000),
)
def test_admission_never_acknowledges_a_shed_request(
    scheduler: str, admit_capacity: int, seed: int
) -> None:
    spec = _overload_spec(scheduler, admit_capacity, seed)
    result = run_frontend(spec, keep_requests=True)
    assert result.requests is not None
    assert result.shed > 0  # the overload must actually trip admission
    for request in result.requests:
        if request.shed:
            assert request.status is NvmeStatus.COMMAND_INTERRUPTED
            assert request.admit_us < 0.0  # never admitted
            assert request.batch_us < 0.0  # never batched
            assert request.submit_us < 0.0  # never reached the device
        else:
            assert request.status is not NvmeStatus.COMMAND_INTERRUPTED
    terminal = result.completed + result.failed
    assert terminal == result.admitted
    assert result.offered == result.admitted + result.shed


@settings(max_examples=6, deadline=None)
@given(
    scheduler=st.sampled_from(("edf", "fifo")),
    seed=st.integers(min_value=1, max_value=1000),
)
def test_batcher_preserves_per_tenant_fifo(scheduler: str, seed: int) -> None:
    spec = _overload_spec(scheduler, admit_capacity=64, seed=seed)
    result = run_frontend(spec, keep_requests=True)
    assert result.requests is not None
    batched = [r for r in result.requests if r.batch_seq >= 0]
    assert batched
    for tenant in ("lat", "bulk"):
        order = sorted(
            (r for r in batched if r.tenant == tenant),
            key=lambda r: r.batch_seq,
        )
        sequences = [r.seq for r in order]
        assert sequences == sorted(sequences)


def _sustained_spec(scheduler: str, seed: int) -> FrontendSpec:
    """Sustained overload whose arrival span (~3.5 ms) far exceeds the
    deadline gap (2 ms), so an aged bulk head's absolute deadline falls
    before fresh lat arrivals' — a deadline-aware scheduler *must*
    interleave the classes, and a class-priority scheduler that simply
    drains lat first would fail the interleave assertion below."""
    classes = (
        SLOClass(name="lat", deadline_us=500.0),
        SLOClass(name="bulk", deadline_us=2_500.0),
    )
    tenants = (
        TenantLoad(
            name="lat",
            slo="lat",
            arrivals=ArrivalSpec(
                rate_ops_s=200_000.0, n_requests=700, seed=seed
            ),
            op="read",
            population=64,
            seed=seed,
        ),
        TenantLoad(
            name="bulk",
            slo="bulk",
            arrivals=ArrivalSpec(
                rate_ops_s=85_000.0, n_requests=300, seed=seed + 1
            ),
            op="read",
            value_bytes=512,
            population=64,
            seed=seed + 1,
        ),
    )
    return FrontendSpec(
        classes=classes,
        tenants=tenants,
        admit_capacity=64,
        dispatch_width=2,
        scheduler=scheduler,
        seed=seed,
    )


@settings(max_examples=6, deadline=None)
@given(
    scheduler=st.sampled_from(("edf", "fifo")),
    seed=st.integers(min_value=1, max_value=1000),
)
def test_scheduler_never_starves_a_nonempty_class(
    scheduler: str, seed: int
) -> None:
    """Under sustained overload every admitted request still completes,
    and the bulk class is served interleaved with the latency class
    rather than held until the latency queue drains."""
    spec = _sustained_spec(scheduler, seed)
    result = run_frontend(spec, keep_requests=True)
    assert result.requests is not None
    admitted = [r for r in result.requests if not r.shed]
    assert all(r.complete_us >= 0.0 for r in admitted)
    lat_batches = [r.batch_us for r in admitted if r.slo == "lat"]
    bulk_batches = [r.batch_us for r in admitted if r.slo == "bulk"]
    assert lat_batches and bulk_batches
    assert min(bulk_batches) < max(lat_batches)
