"""Unit tests for the global hash index, index managers, and iterators."""

import pytest

from repro.errors import ConfigurationError
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.hashindex import GlobalHashIndex
from repro.kvftl.indexmanager import BloomModel
from repro.kvftl.iterator import IteratorBuckets
from repro.units import KIB, MIB

PAGE = 32 * KIB


def make_index(dram_bytes=4 * MIB, config=None):
    config = config or KVSSDConfig()
    return GlobalHashIndex(
        config, PAGE, dram_bytes, region_blocks=[0, 1, 2], pages_per_block=16
    )


# -- size model ----------------------------------------------------------------


def test_index_grows_linearly_with_entries():
    index = make_index()
    index.prime_entries(1000)
    small = index.index_bytes
    index.prime_entries(1000)
    assert index.index_bytes == 2 * small


def test_resident_fraction_clamps_at_one():
    index = make_index(dram_bytes=1 * MIB)
    index.prime_entries(100)
    assert index.resident_fraction() == 1.0


def test_resident_fraction_drops_past_dram():
    index = make_index(dram_bytes=64 * KIB)
    index.prime_entries(1_000_000)
    fraction = index.resident_fraction()
    assert 0.0 < fraction < 0.1


def test_lookup_flash_reads_zero_when_resident():
    index = make_index(dram_bytes=64 * MIB)
    index.prime_entries(1000)
    assert index.lookup_flash_reads(b"any-key") == 0


def test_lookup_flash_reads_positive_when_overflowed():
    index = make_index(dram_bytes=64 * KIB)
    index.prime_entries(5_000_000)
    reads = [
        index.lookup_flash_reads(b"key-%06d" % i) for i in range(300)
    ]
    assert any(r > 0 for r in reads)
    # Deep index: non-resident lookups walk two levels.
    assert max(reads) == 2


# -- merge model ----------------------------------------------------------------


def test_merge_free_when_index_resident():
    index = make_index(dram_bytes=64 * MIB)
    for _ in range(64):
        index.note_insert()
    work = index.take_merge_batch()
    assert work.page_reads == 0
    assert work.page_writes == 0
    assert index.dirty_entries == 0


def test_merge_expensive_when_overflowed():
    index = make_index(dram_bytes=64 * KIB)
    index.prime_entries(5_000_000)
    for _ in range(64):
        index.note_insert()
    work = index.take_merge_batch()
    # Nearly every entry in the batch dirties its own non-resident page.
    assert work.page_writes > 40
    assert work.page_reads > 40


def test_merge_batch_consumes_at_most_batch_size():
    config = KVSSDConfig(merge_batch=16)
    index = GlobalHashIndex(config, PAGE, 64 * KIB, [0], 16)
    for _ in range(40):
        index.note_insert()
    index.take_merge_batch()
    assert index.dirty_entries == 24


def test_merge_empty_is_noop():
    index = make_index()
    work = index.take_merge_batch()
    assert (work.page_reads, work.page_writes) == (0, 0)


def test_delete_decrements_entries():
    index = make_index()
    index.note_insert()
    index.note_delete()
    assert index.entries == 0
    with pytest.raises(ConfigurationError):
        index.note_delete()


def test_region_pages_round_robin():
    index = make_index()
    first = index.next_region_page()
    second = index.next_region_page()
    assert first != second
    total = 3 * 16
    pages = {index.next_region_page() for _ in range(total)}
    assert len(pages) == total  # full rotation visits every region page


# -- bloom filter -------------------------------------------------------------------


def test_bloom_never_false_negative():
    bloom = BloomModel(0.01)
    for i in range(500):
        assert bloom.maybe_present(b"key-%06d" % i, actually_present=True)


def test_bloom_false_positive_rate_close_to_config():
    bloom = BloomModel(0.05)
    hits = sum(
        1
        for i in range(5000)
        if bloom.maybe_present(b"absent-%06d" % i, actually_present=False)
    )
    assert 0.02 < hits / 5000 < 0.09


def test_bloom_zero_rate_always_negative():
    bloom = BloomModel(0.0)
    assert not bloom.maybe_present(b"nope", actually_present=False)


# -- iterator buckets ------------------------------------------------------------------


def test_iterator_buckets_group_by_prefix():
    buckets = IteratorBuckets(flush_keys=1000)
    buckets.note_store(b"abcd-1")
    buckets.note_store(b"abcd-2")
    buckets.note_store(b"wxyz-1")
    assert buckets.bucket_count(b"abcd") == 2
    assert buckets.bucket_count(b"wxyz") == 1
    assert buckets.buckets() == [b"abcd", b"wxyz"]
    assert buckets.total_keys == 3


def test_iterator_flush_cadence():
    buckets = IteratorBuckets(flush_keys=4)
    flushes = sum(buckets.note_store(b"pfx-%d" % i) for i in range(12))
    assert flushes == 3
    assert buckets.bucket_page_writes == 3


def test_iterator_delete_shrinks_and_guards():
    buckets = IteratorBuckets(flush_keys=10)
    buckets.note_store(b"abcd-1")
    buckets.note_delete(b"abcd-1")
    assert buckets.bucket_count(b"abcd") == 0
    with pytest.raises(ConfigurationError):
        buckets.note_delete(b"abcd-1")


def test_iterator_bulk_counts():
    buckets = IteratorBuckets(flush_keys=100)
    buckets.note_bulk(b"fill-000", 1000)
    assert buckets.bucket_count(b"fill") == 1000
    assert buckets.bucket_page_writes == 10
