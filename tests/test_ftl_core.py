"""Tests for the shared FTL core: DeviceStats and personality parity.

The core's contract is that reclamation behaviour is a function of the
flash layout alone, never of the hosting personality.  The parity tests
sculpt identical valid-byte layouts under both devices and assert the
core makes identical decisions (same victims, same benefit scores, same
allowance stalls); the DeviceStats tests pin the unified telemetry
struct both personalities report through.
"""

import pytest

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.core.model import device_stats_summary
from repro.errors import ConfigurationError
from repro.flash.geometry import Geometry, tiny_geometry
from repro.flash.nand import BlockState, FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.core import DeviceStats, FtlCore, VICTIM_POLICIES
from repro.ftl.writebuffer import WriteBuffer
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.sim.engine import Environment
from repro.units import KIB


def lab_geometry():
    return Geometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=32,
        page_bytes=32 * KIB,
    )


def make_pair(policy="greedy"):
    """Both personalities on identical hardware, matched page payloads.

    ``page_reserved_bytes=0`` makes the KV usable page equal the block
    personality's slots-per-page payload, so ``gc_page_benefit`` is
    directly comparable.
    """
    kv_env = Environment()
    kv = KVSSD(
        kv_env,
        lab_geometry(),
        config=KVSSDConfig(page_reserved_bytes=0, gc_victim_policy=policy),
    )
    blk_env = Environment()
    blk = BlockSSD(
        blk_env, lab_geometry(), config=BlockSSDConfig(gc_victim_policy=policy)
    )
    assert kv.core.page_payload_bytes == blk.core.page_payload_bytes
    return (kv_env, kv), (blk_env, blk)


def sculpt(device, block, valid_bytes):
    """Close ``block`` holding ``valid_bytes`` of live data, page-spread."""
    pages = device.array.geometry.pages_per_block
    device.pool.reserve(block)
    device.array.open_block(block)
    per_page = valid_bytes // pages
    for _ in range(pages):
        device.array.prime_program(block, per_page)
    assert device.array.blocks[block].state is BlockState.CLOSED


# -- DeviceStats --------------------------------------------------------------


def test_stats_space_accounting_roundtrip():
    stats = DeviceStats()
    stats.record_store(16, 100, 1024)
    stats.record_store(16, 500, 1024)
    assert stats.app_bytes == 632
    assert stats.device_bytes == 2048
    assert stats.amplification() == pytest.approx(2048 / 632)
    assert stats.amplification_value_only() == pytest.approx(2048 / 600)
    # Canonical SAF alias used by the figures.
    assert stats.space_amplification() == stats.amplification()
    stats.record_remove(16, 100, 1024)
    stats.record_remove(16, 500, 1024)
    assert stats.app_bytes == 0
    assert stats.device_bytes == 0


def test_stats_rejects_unmatched_accounting():
    stats = DeviceStats()
    with pytest.raises(ValueError):
        stats.record_store(-1, 100, 1024)
    with pytest.raises(ValueError):
        stats.record_remove(16, 100, 1024)
    with pytest.raises(ValueError):
        DeviceStats().amplification()


def test_stats_snapshot_delta_cover_subclass_fields():
    stats = DeviceStats()
    stats.host_write_bytes = 1000
    stats.flash_programs = 3
    stats.buffer_stall_us = 5.0
    stats.gc_victims.append(7)
    before = stats.snapshot()
    stats.host_write_bytes += 500
    stats.flash_programs += 2
    stats.buffer_stall_us += 2.5
    stats.allowance_stalls += 1
    stats.gc_victims.append(9)
    delta = stats.delta(before)
    assert isinstance(delta, DeviceStats)
    assert delta.host_write_bytes == 500
    assert delta.flash_programs == 2
    assert delta.buffer_stall_us == pytest.approx(2.5)
    assert delta.allowance_stalls == 1
    assert delta.gc_victims == [9]  # only entries appended after snapshot
    assert before.gc_victims == [7]  # snapshot copied, not aliased


def test_stats_stall_time_and_waf():
    stats = DeviceStats()
    assert stats.write_amplification() == 1.0  # idle device
    stats.host_write_bytes = 1000
    stats.gc_relocated_bytes = 500
    assert stats.write_amplification() == pytest.approx(1.5)
    stats.buffer_stall_us = 30.0
    stats.allowance_stall_us = 70.0
    assert stats.stall_time_us() == pytest.approx(100.0)


def test_device_stats_summary_headlines():
    stats = DeviceStats()
    stats.host_write_bytes = 1000
    stats.gc_relocated_bytes = 2 * 1024 * 1024
    stats.gc_runs = 4
    stats.foreground_gc_runs = 1
    stats.buffer_stall_us = 1500.0
    stats.allowance_stall_us = 500.0
    summary = device_stats_summary(stats)
    assert summary["waf"] == pytest.approx(stats.write_amplification())
    assert summary["gc_moved_mib"] == pytest.approx(2.0)
    assert summary["foreground_gc_fraction"] == pytest.approx(0.25)
    assert summary["stall_ms"] == pytest.approx(2.0)
    assert device_stats_summary(DeviceStats())["foreground_gc_fraction"] == 0.0


def test_write_buffer_feeds_stall_telemetry():
    env = Environment()
    stats = DeviceStats()
    buffer = WriteBuffer(env, capacity_bytes=1000, stats=stats)

    def writer(env):
        yield from buffer.admit(800)
        yield from buffer.admit(800)

    def drainer(env):
        yield env.timeout(30.0)
        buffer.drain(800)

    env.process(writer(env))
    env.process(drainer(env))
    env.run()
    assert stats.buffer_stall_us == pytest.approx(30.0)


def test_flash_array_feeds_operation_counters():
    env = Environment()
    stats = DeviceStats()
    array = FlashArray(env, tiny_geometry(), FlashTiming(), stats=stats)
    array.open_block(0)
    array.prime_program(0, 64)  # untimed setup must not count
    assert stats.flash_programs == 0

    def proc(env):
        yield from array.program(1, array.geometry.page_bytes, 64)
        yield from array.read(1, 0, array.geometry.page_bytes)

    array.open_block(1)
    env.run_until_complete(env.process(proc(env)))
    assert stats.flash_programs == 1
    assert stats.flash_reads == 1


def test_core_rejects_unknown_victim_policy():
    env = Environment()
    array = FlashArray(env, tiny_geometry(), FlashTiming())
    with pytest.raises(ConfigurationError):
        FtlCore(
            env,
            array,
            personality=None,
            stream_width=1,
            write_buffer_bytes=1024,
            flush_linger_us=500.0,
            gc_threshold_fraction=0.08,
            gc_reserve_blocks=1,
            page_payload_bytes=1024,
            user_capacity_bytes=1024,
            gc_victim_policy="nope",
        )
    with pytest.raises(ConfigurationError):
        KVSSDConfig(gc_victim_policy="nope")
    with pytest.raises(ConfigurationError):
        BlockSSDConfig(gc_victim_policy="nope")


# -- personality parity -------------------------------------------------------

#: Valid bytes per sculpted block (divisible by the 32 pages per block).
LAYOUT = [8192, 2048, 16384, 4096]


@pytest.mark.parametrize("policy", VICTIM_POLICIES)
def test_identical_layouts_yield_identical_victims(policy):
    (kv_env, kv), (blk_env, blk) = make_pair(policy)
    kv_off = len(kv._index_region)  # KV data blocks sit past the index region
    for i, valid in enumerate(LAYOUT):
        sculpt(kv, kv_off + i, valid)
        sculpt(blk, i, valid)

    for i in range(len(LAYOUT)):
        assert kv.core.gc_page_benefit(kv_off + i) == blk.core.gc_page_benefit(i)
    assert kv.core.has_reclaimable_victim()
    assert blk.core.has_reclaimable_victim()

    kv_seq, blk_seq = [], []
    for _ in LAYOUT:
        kv_victim = kv.core.select_victim()
        blk_victim = blk.core.select_victim()
        kv_seq.append(kv_victim - kv_off)
        blk_seq.append(blk_victim)
        # Consume the victim the way GC would: drop the live data and
        # erase, so the next selection moves on.
        for env, device, victim in (
            (kv_env, kv, kv_victim),
            (blk_env, blk, blk_victim),
        ):
            device.array.invalidate(victim, device.array.blocks[victim].valid_bytes)
            env.run_until_complete(
                env.process(device.array.erase(victim)), limit=env.now + 1e6
            )
    assert kv_seq == blk_seq
    assert not kv.core.has_reclaimable_victim()
    assert not blk.core.has_reclaimable_victim()


def test_index_region_is_fenced_from_gc():
    (_, kv), _ = make_pair()
    # Region blocks are CLOSED with zero valid bytes — irresistible to any
    # victim policy unless the eligibility fence holds.
    assert all(
        kv.array.blocks[b].state is BlockState.CLOSED for b in kv._index_region
    )
    assert kv.core.select_victim() is None
    assert not kv.core.has_reclaimable_victim()


def drain_pool_to(core, floor):
    taken = []
    while len(core.pool) > floor:
        taken.append(core.pool.pop())
    return taken


@pytest.mark.parametrize("make", [0, 1])
def test_allowance_arbitration_and_stall_accounting(make):
    (kv_env, kv), (blk_env, blk) = make_pair()
    env, device = ((kv_env, kv), (blk_env, blk))[make]
    core = device.core
    taken = drain_pool_to(core, core.gc_reserve_blocks)

    # GC digs below the reserve without stalling...
    env.run_until_complete(
        env.process(core.block_allowance(for_gc=True)), limit=env.now + 1e6
    )
    assert core.stats.allowance_stalls == 0

    # ...while a host flush waits above it until space frees.
    done = []

    def host(env):
        yield from core.block_allowance(for_gc=False)
        done.append(env.now)

    def refill(env):
        yield env.timeout(50.0)
        core.pool.push(taken.pop())
        core._space.notify_all()

    env.process(refill(env))
    env.run_until_complete(env.process(host(env)), limit=env.now + 1e6)
    assert done == [50.0]
    assert core.stats.allowance_stalls == 1
    assert core.stats.allowance_stall_us == pytest.approx(50.0)


def test_allowance_stalls_match_across_personalities():
    (kv_env, kv), (blk_env, blk) = make_pair()
    for env, device in ((kv_env, kv), (blk_env, blk)):
        core = device.core
        taken = drain_pool_to(core, core.gc_reserve_blocks)

        def host(env, core=core):
            yield from core.block_allowance(for_gc=False)

        def refill(env, core=core, taken=taken):
            yield env.timeout(125.0)
            core.pool.push(taken.pop())
            core._space.notify_all()

        env.process(refill(env))
        env.run_until_complete(env.process(host(env)), limit=env.now + 1e6)
    assert kv.stats.allowance_stalls == blk.stats.allowance_stalls == 1
    assert kv.stats.allowance_stall_us == pytest.approx(
        blk.stats.allowance_stall_us
    )
