"""Tests for the YCSB sweep cells (workload-by-system grid)."""

import pytest

from repro.errors import WorkloadError
from repro.exec.runner import SweepRunner
from repro.kvbench.ycsb_sweep import (
    YCSB_SYSTEMS,
    YCSB_WORKLOADS,
    run_ycsb_sweep,
    ycsb_cell,
    ycsb_sweep_spec,
)


def test_spec_covers_the_full_grid_with_unique_labels():
    spec = ycsb_sweep_spec()
    labels = [point.label for point in spec.points]
    assert len(labels) == len(YCSB_WORKLOADS) * len(YCSB_SYSTEMS)
    assert len(set(labels)) == len(labels)
    assert labels[0] == "A.kv" and labels[-1] == "F.lsm"


def test_cell_measures_one_pair():
    cell = ycsb_cell("C", "kv", n_ops=80, population=400)
    assert cell.workload == "C" and cell.system == "kv"
    assert cell.completed_ops == 80 and cell.failed_ops == 0
    assert 0 < cell.mean_us <= cell.p99_us
    assert cell.throughput_kops > 0


def test_cell_rejects_unknown_system():
    with pytest.raises(WorkloadError, match="unknown system"):
        ycsb_cell("A", "optane", n_ops=10, population=10)


def test_sweep_assembles_by_workload_and_system(tmp_path):
    runner = SweepRunner(workers=2, cache=True, cache_dir=str(tmp_path))
    table = run_ycsb_sweep(
        workloads=("A", "E"), n_ops=60, population=300, runner=runner
    )
    assert set(table) == {"A", "E"}
    for cells in table.values():
        assert set(cells) == {"kv", "lsm"}
    # Scans already dominate at small scale: E's KV/LSM gap exceeds A's.
    ratio_a = table["A"]["kv"].mean_us / table["A"]["lsm"].mean_us
    ratio_e = table["E"]["kv"].mean_us / table["E"]["lsm"].mean_us
    assert ratio_e > ratio_a
    # Cached re-run serves every cell from disk with identical results.
    again = run_ycsb_sweep(
        workloads=("A", "E"), n_ops=60, population=300, runner=runner
    )
    assert runner.last_report.hits == 4
    assert again == table
