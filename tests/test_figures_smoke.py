"""Smoke tests for the figure experiments at miniature scale.

The benchmarks run the figures at reproduction scale; these tests run the
same code paths at the smallest meaningful sizes so `pytest tests/`
exercises every experiment end to end in seconds.
"""

import pytest

from repro.core.figures import (
    fig2_end_to_end,
    fig4_value_size_concurrency,
    fig5_packing_bandwidth,
    fig6_foreground_gc,
    fig7_space_amplification,
    fig8_key_size_bandwidth,
)
from repro.units import KIB


def test_fig2_minimal_kv_only():
    result = fig2_end_to_end(
        n_ops=250, systems=("kvssd",), patterns=("seq", "rand"),
        blocks_per_plane=8,
    )
    phases = result.latency_us["kvssd"]["rand"]
    assert set(phases) == {"insert", "update", "read"}
    assert all(value > 0 for value in phases.values())
    # Hash indexing: no sequential advantage.
    ratio = (
        result.latency_us["kvssd"]["seq"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    assert 0.8 < ratio < 1.25


def test_fig4_single_cell():
    result = fig4_value_size_concurrency(
        value_sizes=(4 * KIB,), queue_depths=(1,), n_ops=200,
        blocks_per_plane=8,
    )
    ratio = result.ratio["write"][1][4 * KIB]
    assert 1.5 < ratio < 4.0  # the paper's ~2.5x zone
    assert result.latency_us["kv"]["write"][1][4 * KIB] > 0


def test_fig5_boundary_pair():
    result = fig5_packing_bandwidth(
        value_sizes=(24 * KIB, 25 * KIB), n_ops=200, blocks_per_plane=8
    )
    assert result.kv_fragments[24 * KIB] == 1
    assert result.kv_fragments[25 * KIB] == 3
    assert result.kv_mib_s[25 * KIB] < result.kv_mib_s[24 * KIB]


def test_fig7_three_sizes():
    result = fig7_space_amplification(
        value_sizes=(50, 1024, 4096), kvps=3000, blocks_per_plane=8
    )
    assert result.sa["kvssd"][50] > 10.0
    assert result.sa["kvssd"][4096] < 1.05
    assert result.sa["aerospike"][50] < 2.0
    assert result.sa["rocksdb"][50] == pytest.approx(1.0 + 1.0 / 9.0)
    assert 2.8e9 < result.max_kvps_full_scale < 3.4e9


def test_fig6_golden_foreground_gc_shape():
    """Golden shape of the Fig. 6 mini run: the fixed-seed experiment
    must keep producing foreground GC on the KV scenario and none on the
    RocksDB-on-block scenario, with the tail ordering that follows.  A
    change here means the GC engine's behavior shifted, not just noise —
    the run is fully deterministic."""
    result = fig6_foreground_gc(
        blocks_per_plane=4, scenarios=("kv-uniform", "rocksdb-uniform"),
    )
    assert result.foreground_gc_runs["kv-uniform"] > 0
    assert result.foreground_gc_runs["rocksdb-uniform"] == 0
    kv_p99 = result.latency_summary["kv-uniform"]["p99"]
    rocksdb_p99 = result.latency_summary["rocksdb-uniform"]["p99"]
    assert kv_p99 > rocksdb_p99
    # GC writes amplify the KV scenario; the TRIM-heavy block scenario
    # collects nothing at this scale.
    assert result.stats_summary["kv-uniform"]["waf"] > 1.1
    assert result.stats_summary["rocksdb-uniform"]["waf"] == pytest.approx(1.0)
    assert result.stats_summary["kv-uniform"]["gc_moved_mib"] > 0.0


def test_fig8_cliff_minimal():
    result = fig8_key_size_bandwidth(
        key_sizes=(16, 24), n_ops=400, async_queue_depth=16,
        blocks_per_plane=8,
    )
    assert result.commands[16] == 1
    assert result.commands[24] == 2
    assert result.mib_s["async"][24] < result.mib_s["async"][16]
