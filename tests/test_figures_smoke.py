"""Smoke tests for the figure experiments at miniature scale.

The benchmarks run the figures at reproduction scale; these tests run the
same code paths at the smallest meaningful sizes so `pytest tests/`
exercises every experiment end to end in seconds.
"""

import pytest

from repro.core.figures import (
    fig2_end_to_end,
    fig4_value_size_concurrency,
    fig5_packing_bandwidth,
    fig7_space_amplification,
    fig8_key_size_bandwidth,
)
from repro.units import KIB


def test_fig2_minimal_kv_only():
    result = fig2_end_to_end(
        n_ops=250, systems=("kvssd",), patterns=("seq", "rand"),
        blocks_per_plane=8,
    )
    phases = result.latency_us["kvssd"]["rand"]
    assert set(phases) == {"insert", "update", "read"}
    assert all(value > 0 for value in phases.values())
    # Hash indexing: no sequential advantage.
    ratio = (
        result.latency_us["kvssd"]["seq"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    assert 0.8 < ratio < 1.25


def test_fig4_single_cell():
    result = fig4_value_size_concurrency(
        value_sizes=(4 * KIB,), queue_depths=(1,), n_ops=200,
        blocks_per_plane=8,
    )
    ratio = result.ratio["write"][1][4 * KIB]
    assert 1.5 < ratio < 4.0  # the paper's ~2.5x zone
    assert result.latency_us["kv"]["write"][1][4 * KIB] > 0


def test_fig5_boundary_pair():
    result = fig5_packing_bandwidth(
        value_sizes=(24 * KIB, 25 * KIB), n_ops=200, blocks_per_plane=8
    )
    assert result.kv_fragments[24 * KIB] == 1
    assert result.kv_fragments[25 * KIB] == 3
    assert result.kv_mib_s[25 * KIB] < result.kv_mib_s[24 * KIB]


def test_fig7_three_sizes():
    result = fig7_space_amplification(
        value_sizes=(50, 1024, 4096), kvps=3000, blocks_per_plane=8
    )
    assert result.sa["kvssd"][50] > 10.0
    assert result.sa["kvssd"][4096] < 1.05
    assert result.sa["aerospike"][50] < 2.0
    assert result.sa["rocksdb"][50] == pytest.approx(1.0 + 1.0 / 9.0)
    assert 2.8e9 < result.max_kvps_full_scale < 3.4e9


def test_fig8_cliff_minimal():
    result = fig8_key_size_bandwidth(
        key_sizes=(16, 24), n_ops=400, async_queue_depth=16,
        blocks_per_plane=8,
    )
    assert result.commands[16] == 1
    assert result.commands[24] == 2
    assert result.mib_s["async"][24] < result.mib_s["async"][16]
