"""Smoke tests for the figure experiments at miniature scale.

The benchmarks run the figures at reproduction scale; these tests assert
the *shape* of the miniature runs registered in
``tests.conftest.FIGURE_CASES`` — the same memoized results the golden
suite diffs, so each mini figure executes once per session no matter how
many suites consume it.
"""

import pytest

from repro.units import KIB
from tests.conftest import figure_result


def test_fig2_minimal():
    result = figure_result("fig2")
    phases = result.latency_us["kvssd"]["rand"]
    assert set(phases) == {"insert", "update", "read"}
    assert all(value > 0 for value in phases.values())
    # Hash indexing: no sequential advantage.
    ratio = (
        result.latency_us["kvssd"]["seq"]["insert"]
        / result.latency_us["kvssd"]["rand"]["insert"]
    )
    assert 0.8 < ratio < 1.25


def test_fig4_single_cell():
    result = figure_result("fig4")
    ratio = result.ratio["write"][1][4 * KIB]
    assert 1.5 < ratio < 4.0  # the paper's ~2.5x zone
    assert result.latency_us["kv"]["write"][1][4 * KIB] > 0


def test_fig5_boundary_pair():
    result = figure_result("fig5")
    assert result.kv_fragments[24 * KIB] == 1
    assert result.kv_fragments[25 * KIB] == 3
    assert result.kv_mib_s[25 * KIB] < result.kv_mib_s[24 * KIB]


def test_fig7_three_sizes():
    result = figure_result("fig7")
    assert result.sa["kvssd"][50] > 10.0
    assert result.sa["kvssd"][4096] < 1.05
    assert result.sa["aerospike"][50] < 2.0
    assert result.sa["rocksdb"][50] == pytest.approx(1.0 + 1.0 / 9.0)
    assert 2.8e9 < result.max_kvps_full_scale < 3.4e9


def test_fig6_golden_foreground_gc_shape():
    """Golden shape of the Fig. 6 mini run: the fixed-seed experiment
    must keep producing foreground GC on the KV scenario and none on the
    RocksDB-on-block scenario, with the tail ordering that follows.  A
    change here means the GC engine's behavior shifted, not just noise —
    the run is fully deterministic."""
    result = figure_result("fig6")
    assert result.foreground_gc_runs["kv-uniform"] > 0
    assert result.foreground_gc_runs["rocksdb-uniform"] == 0
    kv_p99 = result.latency_summary["kv-uniform"]["p99"]
    rocksdb_p99 = result.latency_summary["rocksdb-uniform"]["p99"]
    assert kv_p99 > rocksdb_p99
    # GC writes amplify the KV scenario; the TRIM-heavy block scenario
    # collects nothing at this scale.
    assert result.stats_summary["kv-uniform"]["waf"] > 1.1
    assert result.stats_summary["rocksdb-uniform"]["waf"] == pytest.approx(1.0)
    assert result.stats_summary["kv-uniform"]["gc_moved_mib"] > 0.0


def test_fig8_cliff_minimal():
    result = figure_result("fig8")
    assert result.commands[16] == 1
    assert result.commands[24] == 2
    assert result.mib_s["async"][24] < result.mib_s["async"][16]


def test_fig_replay_rotation_shape():
    """Both devices replay the identical churn trace to completion, and
    the rotating working set never costs less than the static control
    (the whole hot set is cold right after every rotation)."""
    result = figure_result("fig_replay_rotation")
    for device in ("kv", "block"):
        for rotate, cell in result.latency_us[device].items():
            assert result.completed_ops[device][rotate] == 200
            assert cell["mean"] > 0
        assert result.rotation_penalty(device) >= 1.0


def test_fig_replay_mix_shape():
    """The TTL+scan variant must actually exercise the new machinery:
    expiry deletes land, prefix scans run through the iterator buckets,
    and the read tail inflates over the plain point-op baseline."""
    result = figure_result("fig_replay_mix")
    plain, mixed = result.ops["plain"], result.ops["ttl+scan"]
    assert plain["deletes"] == plain["scans"] == 0
    assert mixed["deletes"] > 0 and mixed["scans"] > 0
    assert mixed["failed"] == 0
    assert result.tail_inflation("ttl+scan") > 1.0
    assert result.buckets["ttl+scan"]["keys"] > 0


def test_fig_frontend_knee_shape():
    """The serving-frontend mini sweep must show the open-loop story:
    a saturation knee between the plateau load and the overload point,
    with pre-submit queueing absorbing most of the added lat-class tail
    (per the request timestamp trails)."""
    result = figure_result("fig_frontend")
    low, high = result.loads_kops
    assert result.knee_kops() == high
    assert result.p99["lat"][high] > result.p99["lat"][low]
    assert result.queueing_share("lat", high) >= 0.8
    # Overload cannot push completed throughput past device capacity.
    assert result.throughput_kops[high] < high
