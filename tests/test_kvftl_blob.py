"""Unit tests for blob layout, key hashing, and validation."""

import pytest

from repro.errors import ConfigurationError, InvalidKeyError, InvalidValueError
from repro.kvftl.blob import (
    blobs_per_page,
    layout_blob,
    space_amplification,
    usable_page_bytes,
    validate_key,
    validate_value_size,
)
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.keyhash import hash_fraction, iterator_bucket, key_hash64
from repro.units import KIB, MIB

PAGE = 32 * KIB
CFG = KVSSDConfig()


# -- validation -----------------------------------------------------------------


def test_key_length_limits():
    validate_key(b"abcd", CFG)
    validate_key(b"x" * 255, CFG)
    with pytest.raises(InvalidKeyError):
        validate_key(b"abc", CFG)
    with pytest.raises(InvalidKeyError):
        validate_key(b"x" * 256, CFG)
    with pytest.raises(InvalidKeyError):
        validate_key("not-bytes", CFG)  # type: ignore[arg-type]


def test_value_length_limits():
    validate_value_size(0, CFG)
    validate_value_size(2 * MIB, CFG)
    with pytest.raises(InvalidValueError):
        validate_value_size(-1, CFG)
    with pytest.raises(InvalidValueError):
        validate_value_size(2 * MIB + 1, CFG)


# -- layout ---------------------------------------------------------------------


def test_small_blob_padded_to_min_alloc():
    layout = layout_blob(16, 50, PAGE, CFG)
    assert layout.raw_bytes == CFG.metadata_bytes + 16 + 50
    assert layout.footprint_bytes == CFG.min_alloc_bytes
    assert not layout.is_split
    assert layout.padding_bytes == CFG.min_alloc_bytes - layout.raw_bytes


def test_mid_size_blob_packed_tightly():
    layout = layout_blob(16, 4096, PAGE, CFG)
    assert layout.footprint_bytes == CFG.metadata_bytes + 16 + 4096
    assert layout.fragments == [layout.footprint_bytes]


def test_24k_value_fits_one_page():
    # The paper's hypothesis: a 32 KiB page fits up to a 24 KiB value
    # plus key and metadata.
    layout = layout_blob(16, 24 * KIB, PAGE, CFG)
    assert not layout.is_split


def test_25k_value_splits():
    layout = layout_blob(16, 25 * KIB, PAGE, CFG)
    assert layout.is_split
    assert layout.data_fragments == 2
    assert layout.offset_pages == 1
    usable = usable_page_bytes(PAGE, CFG)
    assert all(fragment == usable for fragment in layout.fragments)


def test_49k_value_needs_three_data_fragments():
    layout = layout_blob(16, 49 * KIB, PAGE, CFG)
    assert layout.data_fragments == 3
    assert layout.offset_pages == 2


def test_fragments_sum_to_footprint():
    for value in (0, 50, 1024, 24 * KIB, 25 * KIB, 100 * KIB, 2 * MIB):
        layout = layout_blob(16, value, PAGE, CFG)
        assert sum(layout.fragments) == layout.footprint_bytes
        assert layout.footprint_bytes >= layout.raw_bytes


def test_usable_page_leaves_reserve():
    assert usable_page_bytes(PAGE, CFG) == PAGE - CFG.page_reserved_bytes
    with pytest.raises(ConfigurationError):
        usable_page_bytes(CFG.page_reserved_bytes + 10, CFG)


def test_blobs_per_page_for_paper_sizes():
    # 512 B values pad to 1 KiB -> 24 blobs in the 24.5 KiB usable area.
    assert blobs_per_page(16, 512, PAGE, CFG) == 24
    with pytest.raises(ConfigurationError):
        blobs_per_page(16, 30 * KIB, PAGE, CFG)


def test_space_amplification_matches_paper_shape():
    # ~15.5x for 50 B values with 16 B keys (paper: up to ~17-20x).
    assert space_amplification(16, 50, PAGE, CFG) == pytest.approx(
        1024 / 66, rel=1e-6
    )
    # Close to 1 for 1-4 KiB values (paper: "packs very tightly").
    assert space_amplification(16, 2048, PAGE, CFG) < 1.05
    assert space_amplification(16, 4096, PAGE, CFG) < 1.02


def test_space_amplification_empty_pair_rejected():
    with pytest.raises(InvalidValueError):
        space_amplification(0, 0, PAGE, CFG)


# -- key hashing --------------------------------------------------------------------


def test_key_hash_deterministic_and_64bit():
    assert key_hash64(b"hello") == key_hash64(b"hello")
    assert key_hash64(b"hello") != key_hash64(b"hellp")
    assert 0 <= key_hash64(b"anything") < (1 << 64)


def test_hash_fraction_uniform_range():
    fractions = [hash_fraction(b"key-%06d" % i) for i in range(2000)]
    assert all(0.0 <= fraction < 1.0 for fraction in fractions)
    mean = sum(fractions) / len(fractions)
    assert 0.38 < mean < 0.62  # roughly uniform (FNV over structured keys)
    # All quartiles populated.
    for low in (0.0, 0.25, 0.5, 0.75):
        assert any(low <= fraction < low + 0.25 for fraction in fractions)


def test_hash_destroys_sequential_order():
    # The paper's core observation: hashing erases key order.
    hashes = [key_hash64(b"key-%012d" % i) for i in range(100)]
    sorted_pairs = sorted(range(100), key=lambda i: hashes[i])
    assert sorted_pairs != list(range(100))


def test_iterator_bucket_first_four_bytes():
    assert iterator_bucket(b"abcdef") == b"abcd"
    assert iterator_bucket(b"ab") == b"ab\x00\x00"
