"""Unit tests for Resource, TokenBucket, and Signal."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, TokenBucket
from repro.sim.signal import Signal


# -- Resource ----------------------------------------------------------------


def test_resource_serializes_at_capacity_one():
    env = Environment()
    resource = Resource(env, 1)
    finish_times = []

    def worker(env):
        yield from resource.serve(10.0)
        finish_times.append(env.now)

    for _ in range(3):
        env.process(worker(env))
    env.run()
    assert finish_times == [10.0, 20.0, 30.0]


def test_resource_parallel_at_higher_capacity():
    env = Environment()
    resource = Resource(env, 3)
    finish_times = []

    def worker(env):
        yield from resource.serve(10.0)
        finish_times.append(env.now)

    for _ in range(3):
        env.process(worker(env))
    env.run()
    assert finish_times == [10.0, 10.0, 10.0]


def test_resource_fifo_ordering():
    env = Environment()
    resource = Resource(env, 1)
    order = []

    def worker(env, tag):
        yield from resource.serve(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(worker(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_rejects_zero_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, 0)


def test_release_of_ungranted_request_rejected():
    env = Environment()
    resource = Resource(env, 1)
    first = resource.request()
    second = resource.request()  # queued, not granted
    assert first.triggered
    assert not second.triggered
    with pytest.raises(SimulationError):
        resource.release(second)


def test_busy_fraction_tracks_utilization():
    env = Environment()
    resource = Resource(env, 1)

    def worker(env):
        yield from resource.serve(50.0)
        yield env.timeout(50.0)

    env.process(worker(env))
    env.run()
    assert resource.busy_fraction() == pytest.approx(0.5)


def test_queue_length_visible_while_waiting():
    env = Environment()
    resource = Resource(env, 1)

    def holder(env):
        yield from resource.serve(100.0)

    def observer(env):
        yield env.timeout(1.0)
        return resource.queue_length

    env.process(holder(env))
    env.process(holder(env))
    env.process(holder(env))
    probe = env.process(observer(env))
    env.run()
    assert probe.value == 2


# -- TokenBucket ---------------------------------------------------------------


def test_token_bucket_grants_when_available():
    env = Environment()
    bucket = TokenBucket(env, 10)
    grant = bucket.get(4)
    assert grant.triggered
    assert bucket.available == 6


def test_token_bucket_blocks_until_put():
    env = Environment()
    bucket = TokenBucket(env, 4, initial=0)
    progress = []

    def taker(env):
        yield bucket.get(3)
        progress.append(env.now)

    def giver(env):
        yield env.timeout(25.0)
        bucket.put(3)

    env.process(taker(env))
    env.process(giver(env))
    env.run()
    assert progress == [25.0]


def test_token_bucket_fifo_head_blocks_smaller_requests():
    env = Environment()
    bucket = TokenBucket(env, 10, initial=0)
    order = []

    def taker(env, amount, tag):
        yield bucket.get(amount)
        order.append(tag)

    env.process(taker(env, 8, "big"))
    env.process(taker(env, 1, "small"))

    def feed(env):
        yield env.timeout(1.0)
        bucket.put(1)  # not enough for the head request
        yield env.timeout(1.0)
        bucket.put(8)  # head takes 8, leaving 1 for the small request

    env.process(feed(env))
    env.run()
    assert order == ["big", "small"]


def test_token_bucket_overflow_rejected():
    env = Environment()
    bucket = TokenBucket(env, 4)
    with pytest.raises(SimulationError):
        bucket.put(1)


def test_token_bucket_rejects_oversized_request():
    env = Environment()
    bucket = TokenBucket(env, 4)
    with pytest.raises(SimulationError):
        bucket.get(5)


def test_token_bucket_initial_bounds_checked():
    env = Environment()
    with pytest.raises(SimulationError):
        TokenBucket(env, 4, initial=9)


def test_release_hands_slot_to_earliest_waiter():
    """A released slot passes directly to the head of the wait queue.

    ``in_service`` must not dip during the handoff: the slot never
    returns to the free pool when a waiter is parked, so the busy-time
    integral charges the handoff interval to the successor.
    """
    env = Environment()
    resource = Resource(env, 1)
    holder = resource.request()
    assert holder.triggered
    waiters = [resource.request() for _ in range(3)]
    assert resource.in_service == 1
    assert resource.queue_length == 3

    resource.release(holder)
    assert waiters[0].triggered
    assert not waiters[1].triggered
    assert resource.in_service == 1  # slot moved, never freed
    assert resource.queue_length == 2

    resource.release(waiters[0])
    resource.release(waiters[1])
    resource.release(waiters[2])
    assert resource.in_service == 0
    assert resource.queue_length == 0


def test_busy_accounting_exact_across_handoffs():
    """Back-to-back serves through a handoff integrate to the exact total."""
    env = Environment()
    resource = Resource(env, 1)

    def worker(env):
        yield from resource.serve(10.0)

    for _ in range(4):
        env.process(worker(env))
    env.process(worker(env))

    def idle_tail(env):
        yield env.timeout(100.0)

    env.process(idle_tail(env))
    env.run()
    # 5 serves x 10us busy over a 100us window, no double counting at
    # the grant handoff instants.
    assert resource.busy_slot_us() == pytest.approx(50.0)
    assert resource.busy_fraction() == pytest.approx(0.5)


# -- Signal ----------------------------------------------------------------------


def test_signal_wakes_all_waiters():
    env = Environment()
    signal = Signal(env)
    woken = []

    def waiter(env, tag):
        yield signal.wait()
        woken.append((tag, env.now))

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))

    def notifier(env):
        yield env.timeout(10.0)
        signal.notify_all()

    env.process(notifier(env))
    env.run()
    assert woken == [("a", 10.0), ("b", 10.0)]


def test_signal_is_rearmable():
    env = Environment()
    signal = Signal(env)
    wake_times = []

    def waiter(env):
        for _ in range(2):
            yield signal.wait()
            wake_times.append(env.now)

    def notifier(env):
        yield env.timeout(5.0)
        signal.notify_all()
        yield env.timeout(5.0)
        signal.notify_all()

    env.process(waiter(env))
    env.process(notifier(env))
    env.run()
    assert wake_times == [5.0, 10.0]
    assert signal.notify_count == 2


def test_signal_notify_without_waiters_is_safe():
    env = Environment()
    signal = Signal(env)
    signal.notify_all()
    assert signal.waiting == 0


def test_signal_wake_order_matches_wait_order():
    """Waiters wake in the order they parked, every run, regardless of
    the delays that got them there — the determinism the flush/GC
    workers rely on when several wake to contend for the same blocks."""
    env = Environment()
    signal = Signal(env)
    woken = []

    def waiter(env, tag, delay):
        yield env.timeout(delay)
        yield signal.wait()
        woken.append(tag)

    # Parking order (by delay) deliberately differs from creation order.
    env.process(waiter(env, "late", 3.0))
    env.process(waiter(env, "early", 1.0))
    env.process(waiter(env, "middle", 2.0))

    def notifier(env):
        yield env.timeout(10.0)
        signal.notify_all()

    env.process(notifier(env))
    env.run()
    assert woken == ["early", "middle", "late"]


def test_signal_waiter_parked_during_notify_waits_for_next_round():
    """A wait() issued while a notification is being delivered arms for
    the *next* notify_all — notifications are edges, not levels."""
    env = Environment()
    signal = Signal(env)
    wake_times = []

    def chained(env):
        yield signal.wait()
        # Re-arm immediately upon waking, same timestamp as the notify.
        yield signal.wait()
        wake_times.append(env.now)

    def notifier(env):
        yield env.timeout(5.0)
        signal.notify_all()
        yield env.timeout(5.0)
        signal.notify_all()

    env.process(chained(env))
    env.process(notifier(env))
    env.run()
    assert wake_times == [10.0]
    assert signal.waiting == 0
