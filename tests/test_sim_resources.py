"""Unit tests for Resource, TokenBucket, and Signal."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, TokenBucket
from repro.sim.signal import Signal


# -- Resource ----------------------------------------------------------------


def test_resource_serializes_at_capacity_one():
    env = Environment()
    resource = Resource(env, 1)
    finish_times = []

    def worker(env):
        yield from resource.serve(10.0)
        finish_times.append(env.now)

    for _ in range(3):
        env.process(worker(env))
    env.run()
    assert finish_times == [10.0, 20.0, 30.0]


def test_resource_parallel_at_higher_capacity():
    env = Environment()
    resource = Resource(env, 3)
    finish_times = []

    def worker(env):
        yield from resource.serve(10.0)
        finish_times.append(env.now)

    for _ in range(3):
        env.process(worker(env))
    env.run()
    assert finish_times == [10.0, 10.0, 10.0]


def test_resource_fifo_ordering():
    env = Environment()
    resource = Resource(env, 1)
    order = []

    def worker(env, tag):
        yield from resource.serve(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(worker(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_rejects_zero_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, 0)


def test_release_of_ungranted_request_rejected():
    env = Environment()
    resource = Resource(env, 1)
    first = resource.request()
    second = resource.request()  # queued, not granted
    assert first.triggered
    assert not second.triggered
    with pytest.raises(SimulationError):
        resource.release(second)


def test_busy_fraction_tracks_utilization():
    env = Environment()
    resource = Resource(env, 1)

    def worker(env):
        yield from resource.serve(50.0)
        yield env.timeout(50.0)

    env.process(worker(env))
    env.run()
    assert resource.busy_fraction() == pytest.approx(0.5)


def test_queue_length_visible_while_waiting():
    env = Environment()
    resource = Resource(env, 1)

    def holder(env):
        yield from resource.serve(100.0)

    def observer(env):
        yield env.timeout(1.0)
        return resource.queue_length

    env.process(holder(env))
    env.process(holder(env))
    env.process(holder(env))
    probe = env.process(observer(env))
    env.run()
    assert probe.value == 2


# -- TokenBucket ---------------------------------------------------------------


def test_token_bucket_grants_when_available():
    env = Environment()
    bucket = TokenBucket(env, 10)
    grant = bucket.get(4)
    assert grant.triggered
    assert bucket.available == 6


def test_token_bucket_blocks_until_put():
    env = Environment()
    bucket = TokenBucket(env, 4, initial=0)
    progress = []

    def taker(env):
        yield bucket.get(3)
        progress.append(env.now)

    def giver(env):
        yield env.timeout(25.0)
        bucket.put(3)

    env.process(taker(env))
    env.process(giver(env))
    env.run()
    assert progress == [25.0]


def test_token_bucket_fifo_head_blocks_smaller_requests():
    env = Environment()
    bucket = TokenBucket(env, 10, initial=0)
    order = []

    def taker(env, amount, tag):
        yield bucket.get(amount)
        order.append(tag)

    env.process(taker(env, 8, "big"))
    env.process(taker(env, 1, "small"))

    def feed(env):
        yield env.timeout(1.0)
        bucket.put(1)  # not enough for the head request
        yield env.timeout(1.0)
        bucket.put(8)  # head takes 8, leaving 1 for the small request

    env.process(feed(env))
    env.run()
    assert order == ["big", "small"]


def test_token_bucket_overflow_rejected():
    env = Environment()
    bucket = TokenBucket(env, 4)
    with pytest.raises(SimulationError):
        bucket.put(1)


def test_token_bucket_rejects_oversized_request():
    env = Environment()
    bucket = TokenBucket(env, 4)
    with pytest.raises(SimulationError):
        bucket.get(5)


def test_token_bucket_initial_bounds_checked():
    env = Environment()
    with pytest.raises(SimulationError):
        TokenBucket(env, 4, initial=9)


# -- Signal ----------------------------------------------------------------------


def test_signal_wakes_all_waiters():
    env = Environment()
    signal = Signal(env)
    woken = []

    def waiter(env, tag):
        yield signal.wait()
        woken.append((tag, env.now))

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))

    def notifier(env):
        yield env.timeout(10.0)
        signal.notify_all()

    env.process(notifier(env))
    env.run()
    assert woken == [("a", 10.0), ("b", 10.0)]


def test_signal_is_rearmable():
    env = Environment()
    signal = Signal(env)
    wake_times = []

    def waiter(env):
        for _ in range(2):
            yield signal.wait()
            wake_times.append(env.now)

    def notifier(env):
        yield env.timeout(5.0)
        signal.notify_all()
        yield env.timeout(5.0)
        signal.notify_all()

    env.process(waiter(env))
    env.process(notifier(env))
    env.run()
    assert wake_times == [5.0, 10.0]
    assert signal.notify_count == 2


def test_signal_notify_without_waiters_is_safe():
    env = Environment()
    signal = Signal(env)
    signal.notify_all()
    assert signal.waiting == 0
