"""Tests for the span-tracing subsystem and latency attribution."""

import json

import pytest

from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
from repro.core.model import device_stats_summary
from repro.errors import ConfigurationError
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.population import KeyScheme
from repro.metrics.attribution import LatencyBreakdown
from repro.sim.engine import Environment
from repro.trace.export import (
    chrome_trace_events,
    format_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.trace.tracer import (
    BUCKETS,
    NULL_SPAN,
    SpanRecord,
    TraceCollector,
    TraceConfig,
    Tracer,
)

SCHEME = KeyScheme(prefix=b"key-", digits=12)


def _traced_tracer(max_spans=1 << 18, **config_kwargs):
    config = TraceConfig(**config_kwargs)
    return Tracer(config, TraceCollector(max_spans), pid=1,
                  process_name="test-device")


def _kv_run(tracer, n_ops=400, queue_depth=4, value_bytes=4096):
    rig = build_kv_rig(lab_geometry(blocks_per_plane=16), tracer=tracer)
    rig.device.fast_fill(n_ops, value_bytes, SCHEME)
    spec = WorkloadSpec(
        n_ops=n_ops, op="mixed", population=n_ops, key_scheme=SCHEME,
        value_bytes=value_bytes, read_fraction=0.4, seed=5,
    )
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(spec),
        queue_depth=queue_depth, name="traced",
    )
    return rig, run


def _block_run(tracer, n_ops=400, queue_depth=4, io_bytes=4096):
    rig = build_block_rig(lab_geometry(blocks_per_plane=16), tracer=tracer)
    adapter = rig.adapter(io_bytes)
    rig.device.prime_sequential_fill(rig.device.n_units // 4)
    spec = WorkloadSpec(
        n_ops=n_ops, op="mixed", population=n_ops, key_scheme=SCHEME,
        value_bytes=io_bytes, read_fraction=0.4, seed=5,
    )
    run = execute_workload(
        rig.env, adapter, generate_operations(spec),
        queue_depth=queue_depth, name="traced",
    )
    return rig, run


# -- configuration and collector ---------------------------------------------


def test_trace_config_validation():
    with pytest.raises(ConfigurationError):
        TraceConfig(sample_every=0)
    with pytest.raises(ConfigurationError):
        TraceConfig(max_spans=0)
    with pytest.raises(ConfigurationError):
        TraceConfig(categories=("op", "nonsense"))


def test_collector_ring_drops_oldest():
    collector = TraceCollector(max_spans=3)
    for i in range(5):
        collector.append(SpanRecord(1, "t", f"r{i}", "op", float(i), 1.0))
    assert len(collector) == 3
    assert collector.dropped == 2
    assert [r.name for r in collector.records()] == ["r2", "r3", "r4"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer.disabled()
    tracer.bind(Environment())
    assert not tracer.enabled
    span = tracer.op("store")
    assert span is NULL_SPAN
    assert not span
    with span.phase("flash"):
        pass
    span.finish(anything=1)
    assert len(tracer.collector) == 0


def test_unbound_tracer_is_inert_and_bind_is_idempotent():
    tracer = _traced_tracer()
    assert not tracer.enabled
    assert tracer.op("store") is NULL_SPAN
    env = Environment()
    tracer.bind(env)
    tracer.bind(env)  # same env: fine
    assert tracer.enabled
    with pytest.raises(ConfigurationError):
        tracer.bind(Environment())


def test_op_sampling_keeps_one_in_n():
    tracer = _traced_tracer(sample_every=3)
    tracer.bind(Environment())
    spans = [tracer.op("store") for _ in range(9)]
    kept = [span for span in spans if span]
    assert len(kept) == 3
    for span in kept:
        span.finish()


def test_category_filtering():
    tracer = _traced_tracer(categories=("flash",))
    tracer.bind(Environment())
    assert tracer.wants("flash")
    assert not tracer.wants("op")
    assert tracer.op("store") is NULL_SPAN


# -- span mechanics -----------------------------------------------------------


def test_span_phases_accumulate_and_sum_to_duration():
    env = Environment()
    tracer = _traced_tracer()
    tracer.bind(env)

    def workload(env):
        span = tracer.op("store")
        with span.phase("nvme"):
            yield env.timeout(2.0)
        with span.phase("flash"):
            yield env.timeout(5.0)
        with span.phase("flash"):
            yield env.timeout(1.0)
        span.finish(tag="x")

    env.process(workload(env))
    env.run()
    ops = [r for r in tracer.collector.records() if r.cat == "op"]
    assert len(ops) == 1
    record = ops[0]
    assert record.dur == pytest.approx(8.0)
    assert record.args["components"] == {"nvme": 2.0, "flash": 6.0}
    assert record.args["tag"] == "x"
    assert sum(record.args["components"].values()) == pytest.approx(record.dur)


def test_span_lanes_give_concurrent_ops_distinct_tracks():
    env = Environment()
    tracer = _traced_tracer()
    tracer.bind(env)

    def op_process(env, delay):
        span = tracer.op("store")
        with span.phase("flash"):
            yield env.timeout(delay)
        span.finish()

    env.process(op_process(env, 5.0))
    env.process(op_process(env, 5.0))
    env.run()
    tracks = {r.track for r in tracer.collector.records() if r.cat == "op"}
    assert len(tracks) == 2


# -- end-to-end attribution ---------------------------------------------------


@pytest.mark.parametrize("personality", ["kv", "block"])
def test_op_components_sum_to_measured_latency(personality):
    tracer = _traced_tracer()
    runner = _kv_run if personality == "kv" else _block_run
    _, run = runner(tracer)
    assert run.failed_ops == 0
    ops = [r for r in tracer.collector.records() if r.cat == "op"]
    assert len(ops) >= run.completed_ops
    for record in ops:
        components = record.args["components"]
        assert set(components) <= set(BUCKETS)
        assert sum(components.values()) == pytest.approx(record.dur, abs=1e-6)


@pytest.mark.parametrize("personality", ["kv", "block"])
def test_flash_spans_agree_with_device_stats(personality):
    """Trace flash-timeline time equals DeviceStats.flash_busy_us exactly."""
    tracer = _traced_tracer()
    runner = _kv_run if personality == "kv" else _block_run
    rig, run = runner(tracer, queue_depth=1)
    breakdown = LatencyBreakdown.from_records(
        tracer.collector.records(), pid=tracer.pid
    )
    flash_span_us = breakdown.category_time_us("flash")
    assert flash_span_us > 0.0
    assert flash_span_us == pytest.approx(
        rig.device.stats.flash_busy_us, abs=1e-6
    )
    summary = device_stats_summary(rig.device.stats)
    assert summary["flash_busy_ms"] == pytest.approx(
        flash_span_us / 1000.0, abs=1e-6
    )
    # The measured-phase delta agrees too (the run started at t=0 here).
    assert run.device_stats.flash_busy_us == pytest.approx(
        rig.device.stats.flash_busy_us
    )


def test_run_result_trace_summary_wired():
    tracer = _traced_tracer()
    _, run = _kv_run(tracer, n_ops=120)
    assert run.trace_summary is not None
    assert set(run.trace_summary) == {"store", "retrieve"}
    for stats in run.trace_summary.values():
        assert stats["count"] > 0
        assert stats["p999_us"] >= stats["p99_us"]
        assert sum(stats["components_us"].values()) == pytest.approx(
            stats["mean_us"], rel=1e-9
        )


def test_run_result_trace_summary_absent_without_tracer():
    _, run = _kv_run(None, n_ops=50)
    assert run.trace_summary is None


# -- aggregation --------------------------------------------------------------


def test_latency_breakdown_aggregates_records():
    records = [
        SpanRecord(1, "op.0", "store", "op", 0.0, 10.0,
                   {"components": {"nvme": 4.0, "flash": 6.0}}),
        SpanRecord(1, "op.0", "store", "op", 10.0, 20.0,
                   {"components": {"nvme": 5.0, "flash": 15.0}}),
        SpanRecord(2, "op.0", "store", "op", 0.0, 99.0,
                   {"components": {"nvme": 99.0}}),  # other device
        SpanRecord(1, "die0", "read", "flash", 0.0, 7.0),
        SpanRecord(1, "gc", "gc.collect", "gc", 0.0, 3.0),
    ]
    breakdown = LatencyBreakdown.from_records(records, pid=1)
    assert breakdown.op_types() == ["store"]
    assert breakdown.count("store") == 2
    assert breakdown.mean_total_us("store") == pytest.approx(15.0)
    assert breakdown.mean_components_us("store") == pytest.approx(
        {"nvme": 4.5, "flash": 10.5}
    )
    assert breakdown.category_time_us("flash") == pytest.approx(7.0)
    assert breakdown.category_time_us("gc") == pytest.approx(3.0)
    summary = breakdown.summary()
    assert summary["store"]["count"] == 2


def test_latency_breakdown_since_us_filters_prefill():
    records = [
        SpanRecord(1, "op.0", "store", "op", 0.0, 10.0,
                   {"components": {"flash": 10.0}}),
        SpanRecord(1, "op.0", "store", "op", 100.0, 30.0,
                   {"components": {"flash": 30.0}}),
    ]
    breakdown = LatencyBreakdown.from_records(records, pid=1, since_us=50.0)
    assert breakdown.count("store") == 1
    assert breakdown.mean_total_us("store") == pytest.approx(30.0)


def test_format_breakdown_components_sum_column():
    records = [
        SpanRecord(1, "op.0", "store", "op", 0.0, 10.0,
                   {"components": {"nvme": 4.0, "flash": 6.0}}),
    ]
    table = format_breakdown(LatencyBreakdown.from_records(records))
    assert "store" in table
    for header in ("mean us", "p99 us", "p999 us", "sum us"):
        assert header in table


# -- export -------------------------------------------------------------------


def test_chrome_trace_structure(tmp_path):
    tracer = _traced_tracer()
    _kv_run(tracer, n_ops=60)
    document = to_chrome_trace(tracer.collector)
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["dropped_spans"] == 0
    phases = {event["ph"] for event in events}
    assert "X" in phases and "M" in phases
    process_meta = [e for e in events
                    if e["ph"] == "M" and e["name"] == "process_name"]
    assert {e["args"]["name"] for e in process_meta} == {"test-device"}
    thread_meta = [e for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
    assert {e["args"]["name"] for e in thread_meta} >= {"die0", "ch0"}
    for event in events:
        if event["ph"] == "X":
            assert event["dur"] > 0.0
        elif event["ph"] == "i":
            assert event["s"] == "t"
    # Round-trips through JSON and the file writer.
    out = tmp_path / "trace.json"
    count = write_chrome_trace(tracer.collector, str(out))
    assert count == len(events)
    loaded = json.loads(out.read_text())
    assert len(loaded["traceEvents"]) == count


def test_chrome_trace_tids_stable_per_track():
    collector = TraceCollector(64)
    collector.process_names[1] = "dev"
    for ts in (0.0, 5.0):
        collector.append(SpanRecord(1, "die0", "read", "flash", ts, 1.0))
    collector.append(SpanRecord(1, "ch0", "xfer", "flash", 2.0, 1.0))
    events = [e for e in chrome_trace_events(collector) if e["ph"] == "X"]
    die_tids = {e["tid"] for e in events if e["name"] == "read"}
    ch_tids = {e["tid"] for e in events if e["name"] == "xfer"}
    assert len(die_tids) == 1
    assert len(ch_tids) == 1
    assert die_tids != ch_tids


# -- scenario runner and CLI --------------------------------------------------


def test_run_traced_covers_both_personalities():
    from repro.trace.run import run_traced

    report = run_traced(fig="fig2", n_ops=80)
    assert set(report.runs) == {"kv-ssd", "block-ssd"}
    assert set(report.breakdowns) == {"kv-ssd", "block-ssd"}
    for personality, run in report.runs.items():
        assert run.completed_ops > 0
        breakdown = report.breakdowns[personality]
        assert breakdown.op_types()
    pids = {r.pid for r in report.collector.records()}
    assert pids == {1, 2}
    assert report.collector.process_names == {1: "kv-ssd", 2: "block-ssd"}


def test_run_traced_rejects_unknown_fig():
    from repro.trace.run import run_traced

    with pytest.raises(ConfigurationError):
        run_traced(fig="fig99")


def test_cli_trace_command_writes_perfetto_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    exit_code = main(["trace", "--fig", "fig2", "--out", str(out)])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "kv-ssd" in captured and "block-ssd" in captured
    assert "sum us" in captured
    document = json.loads(out.read_text())
    assert document["traceEvents"]
