"""Unit tests for the block personality's mapping structures."""

import pytest

from repro.blockftl.mapping import UNMAPPED, PageMap, SegmentCache
from repro.errors import AddressError, ConfigurationError
from repro.flash.geometry import tiny_geometry
from repro.units import KIB


def make_map(n_units=64):
    geometry = tiny_geometry()  # 4 KiB pages -> 1 slot per page
    return PageMap(geometry, 4 * KIB, n_units)


# -- PageMap ---------------------------------------------------------------


def test_bind_and_lookup_roundtrip():
    pagemap = make_map()
    pagemap.bind(5, block=2, page=3, slot=0)
    slot_id = pagemap.lookup(5)
    assert slot_id != UNMAPPED
    assert pagemap.unflatten(slot_id) == (2, 3, 0)
    assert pagemap.unit_at(slot_id) == 5
    assert pagemap.mapped_units == 1


def test_rebind_moves_unit():
    pagemap = make_map()
    pagemap.bind(5, 2, 3, 0)
    old_slot = pagemap.lookup(5)
    pagemap.bind(5, 4, 1, 0)
    assert pagemap.unit_at(old_slot) == UNMAPPED
    assert pagemap.unflatten(pagemap.lookup(5)) == (4, 1, 0)
    assert pagemap.mapped_units == 1


def test_bind_occupied_slot_rejected():
    pagemap = make_map()
    pagemap.bind(1, 2, 3, 0)
    with pytest.raises(AddressError):
        pagemap.bind(2, 2, 3, 0)


def test_unbind_returns_slot_and_guards():
    pagemap = make_map()
    pagemap.bind(1, 2, 3, 0)
    slot = pagemap.unbind(1)
    assert pagemap.unit_at(slot) == UNMAPPED
    assert not pagemap.is_mapped(1)
    with pytest.raises(AddressError):
        pagemap.unbind(1)


def test_unit_range_checked():
    pagemap = make_map(n_units=10)
    with pytest.raises(AddressError):
        pagemap.lookup(10)
    with pytest.raises(AddressError):
        pagemap.bind(-1, 0, 0, 0)


def test_live_units_in_block_enumeration():
    pagemap = make_map()
    pagemap.bind(7, 3, 0, 0)
    pagemap.bind(9, 3, 2, 0)
    pagemap.bind(11, 4, 0, 0)
    live = pagemap.live_units_in_block(3)
    assert sorted(live) == [(7, 0, 0), (9, 2, 0)]
    assert pagemap.live_units_in_block(5) == []


def test_slot_arithmetic_inverse():
    pagemap = make_map()
    geometry = pagemap.geometry
    for block in (0, geometry.total_blocks - 1):
        for page in (0, geometry.pages_per_block - 1):
            slot_id = pagemap.slot_id(block, page, 0)
            assert pagemap.unflatten(slot_id) == (block, page, 0)


def test_map_unit_must_divide_page():
    with pytest.raises(ConfigurationError):
        PageMap(tiny_geometry(), 3000, 10)


# -- SegmentCache --------------------------------------------------------------


def test_segment_cache_hits_within_segment():
    cache = SegmentCache(segment_units=100, entries=2)
    assert not cache.access(5)  # cold
    assert cache.access(6)  # same segment
    assert cache.access(99)
    assert not cache.access(100)  # next segment


def test_segment_cache_lru_eviction():
    cache = SegmentCache(segment_units=10, entries=2)
    cache.access(0)  # segment 0
    cache.access(10)  # segment 1
    cache.access(20)  # segment 2 evicts segment 0
    assert not cache.access(0)


def test_segment_cache_lru_promotion():
    cache = SegmentCache(segment_units=10, entries=2)
    cache.access(0)
    cache.access(10)
    cache.access(0)  # promote segment 0
    cache.access(20)  # evicts segment 1, not 0
    assert cache.access(0)
    assert not cache.access(10)


def test_segment_cache_hit_rate():
    cache = SegmentCache(segment_units=10, entries=4)
    assert cache.hit_rate() == 0.0
    cache.access(0)
    cache.access(1)
    assert cache.hit_rate() == pytest.approx(0.5)
