"""Unit tests for the shared FTL substrate: pools, streams, victims, buffer."""

import pytest

from repro.errors import ConfigurationError, DeviceFullError
from repro.flash.geometry import tiny_geometry
from repro.flash.nand import BlockState, FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import cost_benefit_victim, greedy_victim, select_victim
from repro.ftl.writebuffer import WriteBuffer
from repro.sim.engine import Environment


def make_array():
    env = Environment()
    return env, FlashArray(env, tiny_geometry(), FlashTiming())


# -- FreeBlockPool -------------------------------------------------------------


def test_pool_starts_with_all_free_blocks():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    assert len(pool) == array.geometry.total_blocks


def test_pool_pop_prefers_die():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    block = pool.pop(preferred_die=1)
    assert array.geometry.die_of_block(block) == 1


def test_pool_pop_falls_back_when_die_empty():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    per_die = array.geometry.blocks_per_die
    for _ in range(per_die):
        pool.pop(preferred_die=0)
    block = pool.pop(preferred_die=0)
    assert array.geometry.die_of_block(block) != 0


def test_pool_exhaustion_raises():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    for _ in range(array.geometry.total_blocks):
        pool.pop()
    with pytest.raises(DeviceFullError):
        pool.pop()


def test_pool_reserve_removes_specific_block():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    pool.reserve(3)
    assert len(pool) == array.geometry.total_blocks - 1
    with pytest.raises(DeviceFullError):
        pool.reserve(3)


def test_pool_push_returns_block():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    block = pool.pop()
    pool.push(block)
    assert len(pool) == array.geometry.total_blocks


# -- AllocationStream --------------------------------------------------------------


def test_stream_rotates_across_open_blocks():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    stream = AllocationStream(array, pool, width=2)
    first = stream.next_slot()
    second = stream.next_slot()
    third = stream.next_slot()
    assert first != second
    assert third == first  # rotation wraps
    assert len(stream.open_block_indices()) == 2


def test_wide_stream_spreads_across_dies():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    width = array.geometry.total_dies
    stream = AllocationStream(array, pool, width=width)
    dies = {
        array.geometry.die_of_block(stream.next_slot()) for _ in range(width)
    }
    assert len(dies) == width


def test_stream_replaces_full_blocks():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    stream = AllocationStream(array, pool, width=1)
    first = stream.next_slot()
    for _ in range(array.geometry.pages_per_block):
        array.prime_program(first, 64)
    replacement = stream.next_slot()
    assert replacement != first
    assert array.blocks[replacement].state is BlockState.OPEN


def test_stream_width_validated_and_clamped():
    _env, array = make_array()
    pool = FreeBlockPool(array)
    with pytest.raises(ConfigurationError):
        AllocationStream(array, pool, width=0)
    wide = AllocationStream(array, pool, width=9999)
    assert wide.width == array.geometry.total_dies


# -- victim selection ------------------------------------------------------------------


def close_block(array, block, valid_bytes):
    array.open_block(block)
    pages = array.geometry.pages_per_block
    per_page = valid_bytes // pages
    for page in range(pages):
        array.prime_program(block, per_page)


def test_greedy_picks_min_valid():
    _env, array = make_array()
    close_block(array, 0, 4096)
    close_block(array, 1, 1024)
    close_block(array, 2, 8192)
    assert greedy_victim(array) == 1


def test_greedy_none_when_no_closed_blocks():
    _env, array = make_array()
    assert greedy_victim(array) is None


def test_greedy_short_circuits_on_empty_block():
    _env, array = make_array()
    close_block(array, 0, 4096)
    close_block(array, 1, 1024)
    array.invalidate(1, 1024)
    assert greedy_victim(array) == 1


def test_cost_benefit_prefers_low_utilization():
    _env, array = make_array()
    close_block(array, 0, 16)  # nearly empty
    close_block(array, 1, array.geometry.block_bytes // 2)
    assert cost_benefit_victim(array) == 0


def test_select_victim_dispatch():
    _env, array = make_array()
    close_block(array, 0, 64)
    assert select_victim(array, "greedy") == 0
    assert select_victim(array, "cost_benefit") == 0
    with pytest.raises(ValueError):
        select_victim(array, "nope")


# -- write buffer -------------------------------------------------------------------------


def test_write_buffer_blocks_when_full():
    env = Environment()
    buffer = WriteBuffer(env, capacity_bytes=1000)
    admitted = []

    def writer(env, nbytes, tag):
        yield from buffer.admit(nbytes)
        admitted.append((tag, env.now))

    env.process(writer(env, 800, "a"))
    env.process(writer(env, 800, "b"))

    def drainer(env):
        yield env.timeout(30.0)
        buffer.drain(800)

    env.process(drainer(env))
    env.run()
    assert admitted == [("a", 0.0), ("b", 30.0)]
    assert buffer.stall_time_us == pytest.approx(30.0)


def test_write_buffer_oversized_request_chunks():
    env = Environment()
    buffer = WriteBuffer(env, capacity_bytes=1000)
    done = []

    def writer(env):
        yield from buffer.admit(2500)
        done.append(env.now)
        buffer.drain(500)

    def drainer(env):
        for _ in range(2):
            yield env.timeout(10.0)
            buffer.drain(1000)

    env.process(writer(env))
    env.process(drainer(env))
    env.run()
    assert done  # completed despite exceeding buffer capacity
    assert buffer.occupied_bytes == 0  # 2500 admitted, 2500 drained


def test_write_buffer_occupancy_accounting():
    env = Environment()
    buffer = WriteBuffer(env, capacity_bytes=1000)

    def writer(env):
        yield from buffer.admit(300)

    process = env.process(writer(env))
    env.run_until_complete(process)
    assert buffer.occupied_bytes == 300
    buffer.drain(300)
    assert buffer.occupied_bytes == 0
