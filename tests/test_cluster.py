"""Acceptance tests for the sharded multi-device cluster (ISSUE 7).

The headline properties:

* a seeded 4-shard R=2 run with one mid-run read-only degradation
  completes with zero lost acknowledged writes;
* serial, process-pool, and cache-served executions produce
  byte-identical cluster fingerprints;
* quota-rejected inserts never reach a device;
* the router's op accounting balances exactly.
"""

from typing import Iterator, Tuple

import pytest

from repro.cluster import (
    ClusterSpec,
    DegradeEvent,
    TenantSpec,
    aggregate_device_stats,
    run_cluster,
)
from repro.cluster.router import build_plan, interleave, shard_plan
from repro.cluster.router import PlannedOp
from repro.cluster.run import ClusterResult
from repro.cluster.spec import shard_name
from repro.errors import ConfigurationError
from repro.exec.runner import SweepRunner
from repro.ftl.core import DeviceStats
from repro.kvbench.workload import OpType


def _acceptance_spec() -> ClusterSpec:
    """The issue's acceptance scenario, sized for test runtime."""
    return ClusterSpec(
        shards=4,
        replication=2,
        partitions=16,
        tenants=(
            TenantSpec(name="ta", workload="A", n_ops=150,
                       population=300, seed=11),
            TenantSpec(name="tb", workload="B", n_ops=150,
                       population=300, seed=12),
        ),
        degrade=(DegradeEvent(shard=1, at_op=150),),
        rebalance_window_ops=100,
        seed=7,
    )


@pytest.fixture(scope="module")
def acceptance_run() -> Iterator[Tuple[ClusterSpec, ClusterResult]]:
    spec = _acceptance_spec()
    yield spec, run_cluster(spec)


# -- zero lost acknowledged writes ---------------------------------------------


def test_degraded_run_loses_no_acknowledged_writes(acceptance_run):
    spec, result = acceptance_run
    assert result.degraded_shards == [1]
    assert result.failed_ops == 0
    assert result.verify_checked > 0
    assert result.verify_missing == 0
    assert result.zero_lost_writes
    # The retirement produced real drain traffic onto the survivors.
    assert result.drain_ops > 0
    degraded = result.shards[1]
    assert degraded.degraded and degraded.sacrificial_writes > 0
    assert degraded.degrade_at_us > 0
    for shard in result.shards:
        if shard.shard != 1:
            assert not shard.degraded


def test_rebalance_phases_are_recorded(acceptance_run):
    _, result = acceptance_run
    labels = set()
    for shard in result.shards:
        labels.update(shard.latency)
    assert {"pre", "rebalance", "drain"} <= labels
    p99, p999 = result.tail("rebalance")
    assert 0 < p99 <= p999


def test_cluster_rollups_are_consistent(acceptance_run):
    spec, result = acceptance_run
    assert result.client_ops == spec.total_client_ops
    # Write replication routs more device ops than the client issued.
    assert result.routed_ops > result.client_ops
    assert result.completed_ops == result.routed_ops + result.drain_ops
    assert result.elapsed_us > 0
    assert result.throughput_kops() > 0
    assert 0 < result.router_share() < 1
    stats = result.device_stats()
    assert stats.flash_programs > 0
    assert stats.flash_reads > 0


# -- byte-reproducibility across execution modes -------------------------------


def test_fingerprint_identical_serial_parallel_cached(acceptance_run, tmp_path):
    spec, serial = acceptance_run
    runner = SweepRunner(workers=2, cache=True, cache_dir=str(tmp_path))
    parallel = run_cluster(spec, runner)
    assert parallel.fingerprint() == serial.fingerprint()
    cached = run_cluster(spec, runner)
    assert cached.fingerprint() == serial.fingerprint()
    # The second runner pass was served entirely from the on-disk cache.
    report = runner.last_report
    assert report.hits == spec.shards


# -- router plan properties ----------------------------------------------------


def test_plan_accounting_balances(acceptance_run):
    spec, _ = acceptance_run
    plan = build_plan(spec)
    assert plan.client_ops == spec.total_client_ops
    emitted = sum(program.total_ops for program in plan.programs)
    assert emitted == plan.routed_ops + plan.drain_ops
    # Every program a worker re-derives matches the full plan's slice.
    for program in plan.programs:
        assert shard_plan(spec, program.shard) == program
    # The degraded shard left the directory entirely.
    retired = shard_name(1)
    assert all(
        retired not in holders for holders in plan.final_directory.values()
    )
    assert any(
        retired in holders for holders in plan.initial_directory.values()
    )
    # Surviving entries hold exactly R (3 survivors >= R=2) replicas.
    assert all(
        len(holders) == spec.replication
        for holders in plan.final_directory.values()
    )


def test_interleave_is_proportional_and_order_preserving():
    primary = [PlannedOp(OpType.READ, 0, i, 0, "pre") for i in range(6)]
    extra = [PlannedOp(OpType.INSERT, 0, i, 8, "drain") for i in range(3)]
    merged = interleave(primary, extra)
    assert len(merged) == 9
    assert [op.index for op in merged if op.label == "pre"] == list(range(6))
    assert [op.index for op in merged if op.label == "drain"] == list(range(3))
    # The extras spread through the stream instead of clumping at an end.
    positions = [i for i, op in enumerate(merged) if op.label == "drain"]
    assert positions[0] < 3 and positions[-1] >= len(merged) - 3
    assert interleave(primary, []) == primary
    assert interleave([], extra) == extra


# -- tenant quotas -------------------------------------------------------------


def test_quota_rejected_inserts_never_reach_a_device():
    # Workload D is insert-heavy; cap the tenant at its prefill so every
    # insert bounces off the router.
    spec = ClusterSpec(
        shards=2,
        replication=1,
        partitions=8,
        vnodes=8,
        tenants=(
            TenantSpec(name="tq", workload="D", n_ops=120, population=200,
                       quota_pairs=200, seed=5),
        ),
        seed=9,
    )
    plan = build_plan(spec)
    assert plan.rejected_inserts["tq"] > 0
    for program in plan.programs:
        for segment in program.segments:
            for op in segment:
                assert op.index < 200  # nothing past the quota was routed
    result = run_cluster(spec)
    assert result.zero_lost_writes
    assert result.rejected_inserts["tq"] == plan.rejected_inserts["tq"]


def test_unlimited_quota_accepts_inserts():
    spec = ClusterSpec(
        shards=2,
        replication=1,
        partitions=8,
        vnodes=8,
        tenants=(
            TenantSpec(name="tq", workload="D", n_ops=120, population=200,
                       seed=5),
        ),
        seed=9,
    )
    plan = build_plan(spec)
    assert plan.rejected_inserts["tq"] == 0
    assert any(
        op.index >= 200
        for program in plan.programs
        for segment in program.segments
        for op in segment
    )


# -- personalities and edge shapes ---------------------------------------------


def test_mixed_personality_cluster_runs_clean():
    spec = ClusterSpec(
        shards=2,
        replication=2,
        partitions=8,
        vnodes=8,
        personalities=("kv", "block"),
        tenants=(
            TenantSpec(name="ta", workload="B", n_ops=60, population=120,
                       seed=3),
        ),
        seed=13,
    )
    result = run_cluster(spec)
    assert result.zero_lost_writes
    assert [shard.personality for shard in result.shards] == ["kv", "block"]
    # Only the KV shard runs device-side verification.
    assert result.shards[0].verify_checked > 0
    assert result.shards[1].verify_checked == 0


def test_r1_degradation_under_replicates_but_loses_nothing():
    spec = ClusterSpec(
        shards=2,
        replication=1,
        partitions=8,
        vnodes=8,
        tenants=(
            TenantSpec(name="ta", workload="B", n_ops=80, population=160,
                       seed=3),
        ),
        degrade=(DegradeEvent(shard=0, at_op=40),),
        rebalance_window_ops=30,
        seed=13,
    )
    result = run_cluster(spec)
    assert result.degraded_shards == [0]
    assert result.zero_lost_writes


# -- aggregation ---------------------------------------------------------------


def test_aggregate_device_stats_sums_fields():
    a = DeviceStats()
    b = DeviceStats()
    a.flash_programs = 3
    b.flash_programs = 4
    a.flash_reads = 10
    total = aggregate_device_stats([a, b])
    assert total.flash_programs == 7
    assert total.flash_reads == 10
    # Inputs are left untouched.
    assert a.flash_programs == 3 and b.flash_programs == 4


# -- spec validation -----------------------------------------------------------


def test_spec_validation_rejects_bad_shapes():
    tenant = TenantSpec(name="ta", workload="A", n_ops=10, population=10)
    with pytest.raises(ConfigurationError):
        ClusterSpec(shards=0)
    with pytest.raises(ConfigurationError):
        ClusterSpec(shards=2, replication=3)
    with pytest.raises(ConfigurationError):
        ClusterSpec(tenants=())
    with pytest.raises(ConfigurationError):
        ClusterSpec(tenants=(tenant, tenant))  # duplicate tag
    with pytest.raises(ConfigurationError):
        ClusterSpec(shards=2, personalities=("kv",))
    with pytest.raises(ConfigurationError):
        ClusterSpec(shards=2, personalities=("kv", "optane"))
    with pytest.raises(ConfigurationError):
        ClusterSpec(
            shards=2, tenants=(tenant,),
            degrade=(DegradeEvent(shard=0, at_op=0),
                     DegradeEvent(shard=1, at_op=1)),
        )  # would retire every shard
    with pytest.raises(ConfigurationError):
        ClusterSpec(
            shards=4, tenants=(tenant,),
            degrade=(DegradeEvent(shard=0, at_op=10),),
        )  # at_op past the stream end
    with pytest.raises(ConfigurationError):
        TenantSpec(name="!x", workload="A", n_ops=10, population=10)
    with pytest.raises(ConfigurationError):
        TenantSpec(name="ta", workload="G", n_ops=10, population=10)
    with pytest.raises(ConfigurationError):
        TenantSpec(name="ta", workload="A", n_ops=10, population=10,
                   quota_pairs=5)


def test_churn_tenant_runs_clean_and_deterministic():
    """A churn-workload tenant (trace-generator stream, ISSUE 10)
    routes through the cluster like any YCSB tenant: zero failures,
    zero missing keys, byte-identical fingerprints across runs."""
    spec = ClusterSpec(
        shards=2,
        replication=1,
        partitions=8,
        tenants=(
            TenantSpec(name="tc", workload="churn", n_ops=120,
                       population=240, churn_working_set=48,
                       churn_rotate_every_ops=40, seed=13),
        ),
        blocks_per_plane=8,
        seed=5,
    )
    result = run_cluster(spec)
    assert result.completed_ops == 120
    assert result.failed_ops == 0
    assert result.verify_missing == 0
    assert run_cluster(spec).fingerprint() == result.fingerprint()


def test_churn_knob_validation():
    with pytest.raises(ConfigurationError, match="churn knobs only apply"):
        TenantSpec(name="ta", workload="A", n_ops=10, population=10,
                   churn_rotate_every_ops=5)
    with pytest.raises(ConfigurationError, match="exceeds the population"):
        TenantSpec(name="ta", workload="churn", n_ops=10, population=10,
                   churn_working_set=11)
    # The default hot window is population // 8, floored at one key.
    assert TenantSpec(name="ta", workload="churn", n_ops=10,
                      population=80).churn_window == 10
    assert TenantSpec(name="ta", workload="churn", n_ops=10,
                      population=4).churn_window == 1


def test_tenant_tags_are_four_byte_prefixes():
    assert TenantSpec(name="a", workload="A", n_ops=1,
                      population=1).tag == b"a___"
    assert TenantSpec(name="longname", workload="A", n_ops=1,
                      population=1).tag == b"long"
