"""Unit tests for the measurement instruments."""

import pytest

from repro.metrics.bandwidth import BandwidthTracker
from repro.metrics.counters import DeviceCounters
from repro.metrics.cpu import CpuAccountant
from repro.metrics.latency import LatencyRecorder, latency_ratio, percentile
from repro.metrics.space import SpaceAccountant
from repro.sim.engine import Environment
from repro.units import MIB


# -- latency ------------------------------------------------------------------


def test_percentile_interpolates():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.0) == 10.0
    assert percentile(samples, 1.0) == 40.0
    assert percentile(samples, 0.5) == pytest.approx(25.0)


def test_percentile_rejects_empty_and_bad_fraction():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_latency_recorder_summary():
    recorder = LatencyRecorder("test")
    for value in (10.0, 20.0, 30.0):
        recorder.record(value, "read")
    summary = recorder.summary("read")
    assert summary.count == 3
    assert summary.mean == pytest.approx(20.0)
    assert summary.minimum == 10.0
    assert summary.maximum == 30.0
    assert summary.p50 == pytest.approx(20.0)


def test_latency_summary_p999_tracks_extreme_tail():
    recorder = LatencyRecorder("tail")
    # 999 fast samples and one very slow one: p99 stays low while p999
    # reaches into the outlier.
    for _ in range(999):
        recorder.record(10.0, "read")
    recorder.record(10_000.0, "read")
    summary = recorder.summary("read")
    assert summary.p99 == pytest.approx(10.0)
    assert summary.p999 > summary.p99
    as_dict = summary.as_dict()
    assert as_dict["p999"] == pytest.approx(summary.p999)
    assert as_dict["p99"] == pytest.approx(summary.p99)


def test_latency_recorder_labels_and_merge():
    recorder = LatencyRecorder()
    recorder.record(5.0, "read")
    recorder.record(15.0, "insert")
    assert recorder.labels() == ["insert", "read"]
    assert recorder.count() == 2
    assert recorder.mean() == pytest.approx(10.0)


def test_latency_recorder_rejects_negative():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1.0)


def test_latency_recorder_empty_summary_raises():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.summary()


def test_latency_ratio():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record(30.0)
    b.record(10.0)
    assert latency_ratio(a, b) == pytest.approx(3.0)


# -- bandwidth -----------------------------------------------------------------


def test_bandwidth_windows_accumulate():
    tracker = BandwidthTracker(window_us=100.0)
    tracker.record(10.0, 1000)
    tracker.record(50.0, 1000)
    tracker.record(150.0, 4000)
    tracker.finish(200.0)
    points = tracker.points
    assert len(points) == 2
    assert points[0].bytes_moved == 2000
    assert points[0].operations == 2
    assert points[1].bytes_moved == 4000


def test_bandwidth_empty_windows_materialized():
    tracker = BandwidthTracker(window_us=10.0)
    tracker.record(5.0, 100)
    tracker.record(45.0, 100)
    tracker.finish(50.0)
    series = tracker.series_mib_per_sec()
    assert len(series) == 5
    assert series[1] == 0.0
    assert series[2] == 0.0


def test_bandwidth_rejects_time_travel():
    tracker = BandwidthTracker(window_us=10.0)
    tracker.record(5.0, 100)
    with pytest.raises(ValueError):
        tracker.record(4.0, 100)


def test_bandwidth_overall_rate():
    tracker = BandwidthTracker(window_us=1000.0)
    tracker.record(1_000_000.0, MIB)  # 1 MiB at t=1s
    assert tracker.overall_mib_per_sec() == pytest.approx(1.0)


def test_bandwidth_minimum_window():
    tracker = BandwidthTracker(window_us=10.0)
    tracker.record(5.0, 1000)
    tracker.record(15.0, 10)
    tracker.finish(20.0)
    assert tracker.minimum_window_mib_per_sec() < tracker.series_mib_per_sec()[0]


# -- CPU ---------------------------------------------------------------------------


def test_cpu_accountant_report():
    env = Environment()
    cpu = CpuAccountant(env, cores=4)
    cpu.charge("fs", 30.0)
    cpu.charge("lsm", 10.0)

    def advance(env):
        yield env.timeout(100.0)

    env.process(advance(env))
    env.run()
    report = cpu.report()
    assert report.busy_us == pytest.approx(40.0)
    assert report.utilization == pytest.approx(0.4)
    assert report.core_fraction == pytest.approx(0.1)
    assert report.by_component == {"fs": 30.0, "lsm": 10.0}


def test_cpu_epoch_resets_interval():
    env = Environment()
    cpu = CpuAccountant(env)
    cpu.charge("x", 100.0)

    def advance(env):
        yield env.timeout(50.0)

    env.process(advance(env))
    env.run()
    cpu.mark_epoch()
    cpu.charge("x", 7.0)
    report = cpu.report()
    assert report.busy_us == pytest.approx(7.0)


def test_cpu_rejects_negative_charge():
    env = Environment()
    cpu = CpuAccountant(env)
    with pytest.raises(ValueError):
        cpu.charge("x", -1.0)


# -- space ------------------------------------------------------------------------


def test_space_accountant_amplification():
    space = SpaceAccountant()
    space.record_store(16, 50, 1024)
    assert space.amplification() == pytest.approx(1024 / 66)
    assert space.amplification_value_only() == pytest.approx(1024 / 50)


def test_space_accountant_remove_balances():
    space = SpaceAccountant()
    space.record_store(16, 50, 1024)
    space.record_remove(16, 50, 1024)
    with pytest.raises(ValueError):
        space.amplification()


def test_space_accountant_unmatched_remove_rejected():
    space = SpaceAccountant()
    with pytest.raises(ValueError):
        space.record_remove(1, 1, 1)


# -- device counters -----------------------------------------------------------------


def test_device_counters_delta_and_waf():
    counters = DeviceCounters()
    counters.host_write_bytes = 1000
    counters.gc_relocated_bytes = 500
    snapshot = counters.snapshot()
    counters.host_write_bytes = 3000
    counters.gc_relocated_bytes = 1500
    counters.gc_events.append((1.0, True))
    delta = counters.delta(snapshot)
    assert delta.host_write_bytes == 2000
    assert delta.gc_relocated_bytes == 1000
    assert delta.gc_events == [(1.0, True)]
    assert delta.write_amplification() == pytest.approx(1.5)


def test_write_amplification_idle_is_one():
    assert DeviceCounters().write_amplification() == 1.0
