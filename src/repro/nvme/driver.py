"""Host-side device driver model (the paper's KDD).

The kernel device driver turns API calls into NVMe commands: it builds
submission entries, rings doorbells, and handles completions.  Costs
modeled per command:

* host CPU time, charged to the :class:`~repro.metrics.cpu.CpuAccountant`
  (this is the "thin" KV stack whose CPU the paper compares against
  RocksDB's "thick" one);
* a serialized submission path (doorbell + SQ tail update), which becomes
  the binding bottleneck for command-heavy traffic — the mechanism behind
  Fig. 8's large-key bandwidth cliff;
* synchronous mode additionally burns polling/wakeup CPU per command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ConfigurationError
from repro.metrics.cpu import CpuAccountant
from repro.nvme.command import NvmeStatus
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class DriverCosts:
    """Per-command host costs (microseconds)."""

    #: Serialized submission-path occupancy per command.
    submit_us: float = 4.0
    #: Host CPU to build and submit one command (async mode).
    cpu_async_us: float = 2.0
    #: Additional host CPU in synchronous mode (wait/wakeup or polling).
    cpu_sync_extra_us: float = 6.0
    #: Completion handling CPU per command.
    cpu_complete_us: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "submit_us",
            "cpu_async_us",
            "cpu_sync_extra_us",
            "cpu_complete_us",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")


class KernelDeviceDriver:
    """Submission/completion path shared by the block and KV APIs."""

    def __init__(
        self,
        env: Environment,
        cpu: CpuAccountant,
        costs: Optional[DriverCosts] = None,
        name: str = "kdd",
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.env = env
        self.cpu = cpu
        self.costs = costs if costs is not None else DriverCosts()
        self.name = name
        #: Optional span tracer; submissions/completions land on the
        #: driver's own timeline track.
        self.tracer = tracer
        self._submission_path = Resource(env, 1, name=f"{name}.submit")
        self.commands_submitted = 0
        self.commands_completed = 0
        #: Completions carrying a non-SUCCESS status.
        self.commands_failed = 0
        #: The status of the most recent completion (test/debug hook).
        self.last_status = NvmeStatus.SUCCESS

    def submit(
        self, ncommands: int, sync: bool, component: str
    ) -> Generator[Event, None, None]:
        """Pass ``ncommands`` through the submission path (timed).

        Charges host CPU to ``component`` and occupies the serialized
        submission path once per command.
        """
        if ncommands < 1:
            raise ConfigurationError(f"ncommands must be >= 1, got {ncommands}")
        per_command = self.costs.cpu_async_us + (
            self.costs.cpu_sync_extra_us if sync else 0.0
        )
        self.cpu.charge(component, ncommands * per_command)
        tracer = self.tracer
        trace = tracer is not None and tracer.wants("nvme")
        started = self.env.now if trace else 0.0
        for _ in range(ncommands):
            yield from self._submission_path.serve(self.costs.submit_us)
        self.commands_submitted += ncommands
        if trace:
            tracer.complete(
                self.name, "submit", "nvme", self.env.now - started,
                args={"n": ncommands, "sync": sync},
            )

    def complete(
        self,
        ncommands: int,
        component: str,
        status: NvmeStatus = NvmeStatus.SUCCESS,
    ) -> None:
        """Account completion handling for ``ncommands`` (CPU only).

        ``status`` is the completion-queue status the device reported;
        error completions cost the same CPU but are counted separately
        (the host error path proper — retries, log-page reads — is out
        of scope).
        """
        if ncommands < 1:
            raise ConfigurationError(f"ncommands must be >= 1, got {ncommands}")
        self.cpu.charge(component, ncommands * self.costs.cpu_complete_us)
        self.commands_completed += ncommands
        self.last_status = status
        if status.is_error:
            self.commands_failed += ncommands
        tracer = self.tracer
        if tracer is not None and tracer.wants("nvme"):
            tracer.instant(
                self.name, "complete", "nvme",
                args={"n": ncommands, "status": status.name},
            )
