"""NVMe command-set and host driver models."""

from repro.nvme.command import (
    INLINE_KEY_BYTES,
    NVME_COMMAND_BYTES,
    KVCommandSet,
    KVOpcode,
    commands_for_key,
    compound_command_count,
)
from repro.nvme.driver import DriverCosts, KernelDeviceDriver

__all__ = [
    "DriverCosts",
    "INLINE_KEY_BYTES",
    "KernelDeviceDriver",
    "KVCommandSet",
    "KVOpcode",
    "NVME_COMMAND_BYTES",
    "commands_for_key",
    "compound_command_count",
]
