"""NVMe KV command-set model.

Samsung's vendor-specific KV commands ride the standard 64-byte NVMe
submission entry.  16 of those bytes are reserved for the key; a key
longer than 16 bytes does not fit and requires a *second* command to carry
it (Sec. IV, "Impact of new host-side software stack").  Fig. 8 measures
the bandwidth cliff this creates — reproduced here by counting commands
per operation and charging per-command processing on both host and device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import (
    AddressError,
    CapacityLimitError,
    ConfigurationError,
    DeviceError,
    DeviceFullError,
    DeviceReadOnlyError,
    EraseFailError,
    InvalidKeyError,
    InvalidValueError,
    KeyNotFoundError,
    ProgramFailError,
    UncorrectableReadError,
)

#: Size of one NVMe submission queue entry.
NVME_COMMAND_BYTES = 64
#: Key bytes that fit inline in a KV command.
INLINE_KEY_BYTES = 16


class KVOpcode(enum.Enum):
    """Vendor-specific KV opcodes (SNIA KVS API operations)."""

    STORE = "store"
    RETRIEVE = "retrieve"
    DELETE = "delete"
    EXIST = "exist"


class NvmeStatus(enum.IntEnum):
    """Completion-queue status field, ``(SCT << 8) | SC`` per the spec.

    Generic (SCT 0) and media (SCT 2) codes come from the NVMe base
    specification; KV codes are the vendor-specific values Samsung's KV
    command set reports.  The simulated devices raise the exception
    hierarchy in :mod:`repro.errors`; :func:`status_for_error` translates
    at the driver boundary, the way a real completion path fills CQE DW3.
    """

    SUCCESS = 0x000
    # -- generic command status (SCT 0) ---------------------------------
    LBA_OUT_OF_RANGE = 0x080
    CAPACITY_EXCEEDED = 0x081
    NAMESPACE_WRITE_PROTECTED = 0x020
    #: "Command Interrupted" (NVMe base spec SC 21h): the controller asks
    #: the host to resubmit later — the status an admission-control layer
    #: returns when it sheds load.
    COMMAND_INTERRUPTED = 0x021
    INVALID_FIELD = 0x002
    # -- media and data integrity errors (SCT 2) ------------------------
    WRITE_FAULT = 0x280
    UNRECOVERED_READ_ERROR = 0x281
    # -- KV command set (vendor-specific) --------------------------------
    KV_KEY_NOT_EXIST = 0x310
    KV_CAPACITY_EXCEEDED = 0x311
    KV_INVALID_KEY_SIZE = 0x312
    KV_INVALID_VALUE_SIZE = 0x313

    @property
    def is_error(self) -> bool:
        return self is not NvmeStatus.SUCCESS


#: Exception class -> completion status, most specific first (the lookup
#: walks this in order with isinstance, so subclasses must precede their
#: bases).
_STATUS_MAP = (
    (UncorrectableReadError, NvmeStatus.UNRECOVERED_READ_ERROR),
    (ProgramFailError, NvmeStatus.WRITE_FAULT),
    (EraseFailError, NvmeStatus.WRITE_FAULT),
    (DeviceReadOnlyError, NvmeStatus.NAMESPACE_WRITE_PROTECTED),
    (DeviceFullError, NvmeStatus.CAPACITY_EXCEEDED),
    (CapacityLimitError, NvmeStatus.KV_CAPACITY_EXCEEDED),
    (KeyNotFoundError, NvmeStatus.KV_KEY_NOT_EXIST),
    (InvalidKeyError, NvmeStatus.KV_INVALID_KEY_SIZE),
    (InvalidValueError, NvmeStatus.KV_INVALID_VALUE_SIZE),
    (AddressError, NvmeStatus.LBA_OUT_OF_RANGE),
)


def status_for_error(exc: BaseException) -> NvmeStatus:
    """Completion status a device would report for ``exc``.

    Unrecognized device errors map to ``INVALID_FIELD``; non-device
    exceptions (programming errors) are not NVMe-visible and raise.
    """
    for exc_type, status in _STATUS_MAP:
        if isinstance(exc, exc_type):
            return status
    if isinstance(exc, DeviceError):
        return NvmeStatus.INVALID_FIELD
    raise TypeError(f"{type(exc).__name__} is not a device-level error")


def commands_for_key(key_bytes: int) -> int:
    """NVMe commands needed to convey a key of ``key_bytes``.

    One command when the key fits inline; two otherwise (the second
    carries the key through a PRP transfer).
    """
    if key_bytes < 1:
        raise ConfigurationError(f"key length must be >= 1, got {key_bytes}")
    return 1 if key_bytes <= INLINE_KEY_BYTES else 2


@dataclass(frozen=True)
class KVCommandSet:
    """The command footprint of one KV operation."""

    opcode: KVOpcode
    key_bytes: int
    value_bytes: int

    @property
    def command_count(self) -> int:
        """Submission entries consumed by the operation."""
        return commands_for_key(self.key_bytes)

    @property
    def command_overhead_bytes(self) -> int:
        """Bytes of command traffic (the small-KVP waste the paper notes:
        Facebook's 57-154 B average pairs spend a 64+ B command each)."""
        return self.command_count * NVME_COMMAND_BYTES

    def overhead_ratio(self) -> float:
        """Command bytes relative to payload bytes (inf for empty pairs)."""
        payload = self.key_bytes + self.value_bytes
        if payload == 0:
            return float("inf")
        return self.command_overhead_bytes / payload


def compound_command_count(operations: int, per_compound: int) -> int:
    """Commands used if ``operations`` small ops are consolidated.

    Models the compound-command proposal the paper cites ([10], Kim et
    al., HotStorage'19) as a host-side remedy; exercised by the ablation
    bench.
    """
    if operations < 0 or per_compound < 1:
        raise ConfigurationError("invalid compound command parameters")
    return -(-operations // per_compound)
