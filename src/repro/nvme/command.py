"""NVMe KV command-set model.

Samsung's vendor-specific KV commands ride the standard 64-byte NVMe
submission entry.  16 of those bytes are reserved for the key; a key
longer than 16 bytes does not fit and requires a *second* command to carry
it (Sec. IV, "Impact of new host-side software stack").  Fig. 8 measures
the bandwidth cliff this creates — reproduced here by counting commands
per operation and charging per-command processing on both host and device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Size of one NVMe submission queue entry.
NVME_COMMAND_BYTES = 64
#: Key bytes that fit inline in a KV command.
INLINE_KEY_BYTES = 16


class KVOpcode(enum.Enum):
    """Vendor-specific KV opcodes (SNIA KVS API operations)."""

    STORE = "store"
    RETRIEVE = "retrieve"
    DELETE = "delete"
    EXIST = "exist"


def commands_for_key(key_bytes: int) -> int:
    """NVMe commands needed to convey a key of ``key_bytes``.

    One command when the key fits inline; two otherwise (the second
    carries the key through a PRP transfer).
    """
    if key_bytes < 1:
        raise ConfigurationError(f"key length must be >= 1, got {key_bytes}")
    return 1 if key_bytes <= INLINE_KEY_BYTES else 2


@dataclass(frozen=True)
class KVCommandSet:
    """The command footprint of one KV operation."""

    opcode: KVOpcode
    key_bytes: int
    value_bytes: int

    @property
    def command_count(self) -> int:
        """Submission entries consumed by the operation."""
        return commands_for_key(self.key_bytes)

    @property
    def command_overhead_bytes(self) -> int:
        """Bytes of command traffic (the small-KVP waste the paper notes:
        Facebook's 57-154 B average pairs spend a 64+ B command each)."""
        return self.command_count * NVME_COMMAND_BYTES

    def overhead_ratio(self) -> float:
        """Command bytes relative to payload bytes (inf for empty pairs)."""
        payload = self.key_bytes + self.value_bytes
        if payload == 0:
            return float("inf")
        return self.command_overhead_bytes / payload


def compound_command_count(operations: int, per_compound: int) -> int:
    """Commands used if ``operations`` small ops are consolidated.

    Models the compound-command proposal the paper cites ([10], Kim et
    al., HotStorage'19) as a host-side remedy; exercised by the ablation
    bench.
    """
    if operations < 0 or per_compound < 1:
        raise ConfigurationError("invalid compound command parameters")
    return -(-operations // per_compound)
