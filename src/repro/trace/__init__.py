"""Span tracing, latency attribution, and Perfetto export."""

from repro.trace.tracer import (
    BUCKETS,
    CATEGORIES,
    NULL_SPAN,
    Span,
    SpanRecord,
    TraceCollector,
    TraceConfig,
    Tracer,
)
from repro.trace.export import (
    chrome_trace_events,
    format_breakdown,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "BUCKETS",
    "CATEGORIES",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TraceCollector",
    "TraceConfig",
    "Tracer",
    "chrome_trace_events",
    "format_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
]
