"""Span-based tracing clocked by the simulation environment.

The tracer answers the question the aggregate counters cannot: *where did
this operation's microseconds go, and what was the device doing at the
time?*  It produces two kinds of records, both cheap enough to leave
compiled into the hot paths:

* **Operation span trees** — the host API opens a root :class:`Span` per
  command (store/retrieve/write/read/...), and the device code brackets
  every suspension point in a :meth:`Span.phase` naming an attribution
  bucket (``nvme``, ``controller``, ``index``, ``buffer``, ``flash``).
  Because the engine is cooperative, the elapsed simulation time inside a
  phase is exactly the time that operation spent in that mechanism —
  including queueing — so the buckets sum to the measured operation
  latency by construction.
* **Device-timeline spans** — flash read/program/erase service intervals
  on per-die and per-channel tracks, GC collections and allowance stalls,
  flush-worker programs, and host-side LSM flush/compaction windows.
  These render as the device timeline in Perfetto.

Tracing is pay-for-what-you-enable: every record belongs to a category,
categories can be disabled individually, operation roots can be sampled
(1 in N), and a disabled or unbound tracer reduces every instrumentation
site to a guard check against :data:`NULL_SPAN`.  Finished records land
in a bounded ring buffer (:class:`TraceCollector`) shared by any number
of tracers, one per device, distinguished by ``pid`` in the export.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Every category a record may carry.  ``op`` roots and their ``phase``
#: children feed latency attribution; the rest are device-timeline tracks.
CATEGORIES = ("op", "phase", "nvme", "flash", "gc", "flush", "host", "recovery")

#: Attribution buckets an operation's phases may charge time to.
#: ``recovery`` covers media-error handling (read retries and their
#: backoff) so faulted operations still tile into the attribution sum.
BUCKETS = ("nvme", "controller", "index", "buffer", "flash", "host", "recovery")


@dataclass(frozen=True)
class TraceConfig:
    """What to record and how much of it to keep."""

    #: Master switch; a disabled tracer records nothing.
    enabled: bool = True
    #: Categories to record (see :data:`CATEGORIES`).
    categories: Tuple[str, ...] = CATEGORIES
    #: Keep one operation root span out of every ``sample_every``.
    sample_every: int = 1
    #: Ring-buffer capacity; the oldest records are dropped beyond it.
    max_spans: int = 262_144

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.max_spans < 1:
            raise ConfigurationError(
                f"max_spans must be >= 1, got {self.max_spans}"
            )
        unknown = set(self.categories) - set(CATEGORIES)
        if unknown:
            raise ConfigurationError(
                f"unknown trace categories {sorted(unknown)}; "
                f"expected a subset of {CATEGORIES}"
            )


class SpanRecord:
    """One finished span: a (ts, dur) interval on a named track."""

    __slots__ = ("pid", "track", "name", "cat", "ts", "dur", "args")

    def __init__(
        self,
        pid: int,
        track: str,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.pid = pid
        self.track = track
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord(pid={self.pid}, track={self.track!r}, "
            f"name={self.name!r}, cat={self.cat!r}, ts={self.ts}, "
            f"dur={self.dur})"
        )


class TraceCollector:
    """Bounded ring buffer of finished :class:`SpanRecord` items.

    A collector may be shared by several tracers (one per device); the
    exporters read records and per-``pid`` process names from here.
    """

    def __init__(self, max_spans: int = 262_144) -> None:
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self._spans: Deque[SpanRecord] = deque(maxlen=max_spans)
        #: Records discarded after the ring filled (oldest-first policy).
        self.dropped = 0
        #: pid -> process name, registered by each attached tracer.
        self.process_names: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def append(self, record: SpanRecord) -> None:
        """Add a finished record, dropping the oldest when full."""
        if len(self._spans) == self.max_spans:
            self.dropped += 1
        self._spans.append(record)

    def records(self) -> List[SpanRecord]:
        """Snapshot of the retained records, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Discard all retained records (the drop counter survives)."""
        self._spans.clear()


class _NullPhase:
    """No-op context manager handed out by :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _NullSpan:
    """Inert span: the zero-overhead stand-in when tracing is off."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def phase(self, bucket: str) -> _NullPhase:
        return _NULL_PHASE

    def finish(self, **args: Any) -> None:
        return None


#: Shared inert span; instrumentation accepts it anywhere a span goes.
NULL_SPAN = _NullSpan()


class _Phase:
    """Charges elapsed simulation time inside a ``with`` to one bucket."""

    __slots__ = ("_span", "_bucket", "_start")

    def __init__(self, span: "Span", bucket: str) -> None:
        self._span = span
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = self._span._tracer.now()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        span = self._span
        tracer = span._tracer
        duration = tracer.now() - self._start
        components = span.components
        components[self._bucket] = components.get(self._bucket, 0.0) + duration
        if tracer._on_phase:
            tracer.collector.append(
                SpanRecord(
                    tracer.pid, span.track, self._bucket, "phase",
                    self._start, duration,
                )
            )
        return False


class Span:
    """An open operation root; finished via :meth:`finish`.

    Time is attributed through :meth:`phase`; the component totals ride
    in the finished record's ``args`` so aggregators need no tree
    reconstruction.
    """

    __slots__ = ("_tracer", "op", "track", "start_us", "components")

    def __init__(self, tracer: "Tracer", op: str, track: str) -> None:
        self._tracer = tracer
        self.op = op
        self.track = track
        self.start_us = tracer.now()
        self.components: Dict[str, float] = {}

    def __bool__(self) -> bool:
        return True

    def phase(self, bucket: str) -> _Phase:
        """Context manager charging its elapsed sim time to ``bucket``."""
        return _Phase(self, bucket)

    def finish(self, **args: Any) -> None:
        """Close the span and emit its record (idempotence not required)."""
        tracer = self._tracer
        end = tracer.now()
        payload: Dict[str, Any] = {"components": dict(self.components)}
        if args:
            payload.update(args)
        tracer.collector.append(
            SpanRecord(
                tracer.pid, self.track, self.op, "op",
                self.start_us, end - self.start_us, payload,
            )
        )
        tracer._release_lane(self.track)


class Tracer:
    """Per-device recording front end, clocked by ``env.now``.

    A tracer may be constructed before its environment exists (rig
    builders create environments internally); it stays inert until
    :meth:`bind` attaches a clock.  Construct with
    ``TraceConfig(enabled=False)`` — or just never bind — for a
    permanently silent tracer.
    """

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        collector: Optional[TraceCollector] = None,
        env: object = None,
        pid: int = 1,
        process_name: str = "device",
    ) -> None:
        self.config = config if config is not None else TraceConfig()
        self.collector = (
            collector
            if collector is not None
            else TraceCollector(self.config.max_spans)
        )
        self.pid = pid
        self.process_name = process_name
        self._env: object = None
        self._op_seq = 0
        self._free_lanes: List[str] = []
        self._lane_count = 0
        self._on_op = False
        self._on_phase = False
        self._cats = frozenset(self.config.categories)
        # Categories that will actually record, i.e. empty until a clock
        # is bound and whenever the tracer is disabled.  wants() then
        # collapses to one frozenset probe on every hot-path guard.
        self._active: frozenset = frozenset()
        if env is not None:
            self.bind(env)

    # -- lifecycle -------------------------------------------------------

    def bind(self, env: object) -> "Tracer":
        """Attach the simulation clock; idempotent for the same env."""
        if self._env is not None and self._env is not env:
            raise ConfigurationError(
                "tracer is already bound to a different environment"
            )
        self._env = env
        self._active = self._cats if self.config.enabled else frozenset()
        self._on_op = self.wants("op")
        self._on_phase = self.wants("phase")
        self.collector.process_names.setdefault(self.pid, self.process_name)
        return self

    @property
    def enabled(self) -> bool:
        """Whether this tracer can record anything at all."""
        return self.config.enabled and self._env is not None

    def wants(self, cat: str) -> bool:
        """Whether records of category ``cat`` are being kept."""
        return cat in self._active

    def now(self) -> float:
        """Current simulation time (microseconds)."""
        return self._env.now  # type: ignore[attr-defined]

    @classmethod
    def disabled(cls) -> "Tracer":
        """A tracer that never records, for default wiring."""
        return cls(config=TraceConfig(enabled=False))

    # -- operation span trees -------------------------------------------

    def op(self, name: str) -> Span:
        """Open an operation root span (or :data:`NULL_SPAN` when off).

        Roots are sampled per :attr:`TraceConfig.sample_every` and laid
        out on rotating ``op.N`` lanes so concurrent operations render as
        parallel tracks instead of bogus nesting.
        """
        if not self._on_op:
            return NULL_SPAN  # type: ignore[return-value]
        self._op_seq += 1
        if self._op_seq % self.config.sample_every:
            return NULL_SPAN  # type: ignore[return-value]
        if self._free_lanes:
            track = self._free_lanes.pop()
        else:
            track = f"op.{self._lane_count}"
            self._lane_count += 1
        return Span(self, name, track)

    def _release_lane(self, track: str) -> None:
        self._free_lanes.append(track)

    # -- device-timeline records ----------------------------------------

    def complete(
        self,
        track: str,
        name: str,
        cat: str,
        duration_us: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span of known duration ending *now* on ``track``."""
        self.collector.append(
            SpanRecord(
                self.pid, track, name, cat,
                self.now() - duration_us, duration_us, args,
            )
        )

    def instant(
        self,
        track: str,
        name: str,
        cat: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker at the current time."""
        self.collector.append(
            SpanRecord(self.pid, track, name, cat, self.now(), 0.0, args)
        )
