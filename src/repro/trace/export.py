"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and text tables.

The JSON exporter emits the Trace Event Format that ``chrome://tracing``
and https://ui.perfetto.dev load directly: one complete event (``"ph":
"X"``) per duration span, instant events (``"ph": "i"``) for markers, and
metadata events naming each process (one per device/tracer ``pid``) and
thread (one per track — ``die3``, ``ch1``, ``gc``, ``op.0``, ...).
Simulation time is already microseconds, which is exactly the unit the
format's ``ts``/``dur`` expect, so timestamps pass through untouched.

The text exporter renders a :class:`~repro.metrics.attribution.LatencyBreakdown`
as a per-op-type attribution table whose component columns sum to the
measured mean latency (the acceptance check of the trace subsystem).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.metrics.attribution import LatencyBreakdown
from repro.trace.tracer import TraceCollector


def chrome_trace_events(collector: TraceCollector) -> List[dict]:
    """Flatten a collector into Trace Event Format event dicts."""
    events: List[dict] = []
    tids: Dict[Tuple[int, str], int] = {}
    for pid, name in sorted(collector.process_names.items()):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for record in collector.records():
        key = (record.pid, record.track)
        tid = tids.get(key)
        if tid is None:
            # First appearance fixes the thread id, deterministically.
            tid = tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": record.pid,
                "tid": tid, "args": {"name": record.track},
            })
        event = {
            "name": record.name,
            "cat": record.cat,
            "pid": record.pid,
            "tid": tid,
            "ts": record.ts,
        }
        if record.dur > 0.0:
            event["ph"] = "X"
            event["dur"] = record.dur
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant marker
        if record.args:
            event["args"] = record.args
        events.append(event)
    return events


def to_chrome_trace(collector: TraceCollector) -> dict:
    """The full Trace Event Format document (JSON-object flavor)."""
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulation microseconds",
            "dropped_spans": collector.dropped,
        },
    }


def write_chrome_trace(
    collector: TraceCollector, path: Union[str, "os.PathLike[str]"]
) -> int:
    """Write the Perfetto-loadable JSON to ``path``; returns event count.

    Accepts any path-like value and creates missing parent directories,
    so ``repro trace --out results/run1/trace.json`` just works.
    """
    document = to_chrome_trace(collector)
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="ascii") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return len(document["traceEvents"])


def format_breakdown(breakdown: LatencyBreakdown) -> str:
    """Per-op-type latency-attribution table.

    One row per op type: count, mean and tail latency, then the mean time
    in each attribution bucket plus their sum — which matches the mean
    column up to rounding, because the phases tile the operation.
    """
    # Imported here: kvbench pulls in the device APIs, which import the
    # tracer — a module-level import would close that cycle.
    from repro.kvbench.report import format_table

    buckets = breakdown.buckets()
    headers = ["op", "count", "mean us", "p99 us", "p999 us"]
    headers += [f"{bucket} us" for bucket in buckets] + ["sum us"]
    rows: List[List[object]] = []
    for op in breakdown.op_types():
        components = breakdown.mean_components(op)
        rows.append(
            [
                op,
                breakdown.count(op),
                round(breakdown.mean_total_us(op), 2),
                round(breakdown.p99_total_us(op), 2),
                round(breakdown.p999_total_us(op), 2),
            ]
            + [round(components.get(bucket, 0.0), 2) for bucket in buckets]
            + [round(sum(components.values()), 2)]
        )
    return format_table(headers, rows)
