"""Traced experiment runs: one workload, both personalities, one trace.

:func:`run_traced` replays a figure-shaped workload against a KV-SSD rig
(tracer pid 1) and a block-SSD rig (tracer pid 2) that share a single
:class:`~repro.trace.tracer.TraceCollector`, so the exported Perfetto
document shows the two firmware personalities as two processes on one
timeline and the attribution tables can be compared side by side.

Scenarios mirror the stress each paper figure isolates — occupancy for
Fig. 3, split values for Fig. 4, foreground GC for Fig. 6, long keys for
Fig. 8 — scaled down to tracing-friendly op counts.  They are *not* the
figure experiments themselves (:mod:`repro.core.figures` owns those);
they exist to produce representative span trees quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
from repro.errors import ConfigurationError
from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.kvbench.runner import RunResult, execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.population import KeyScheme
from repro.metrics.attribution import LatencyBreakdown
from repro.trace.tracer import TraceCollector, TraceConfig, Tracer


@dataclass(frozen=True)
class TraceScenario:
    """A figure-shaped workload to run under tracing."""

    fig: str
    #: What the scenario stresses, shown by the CLI.
    focus: str
    value_bytes: int = 4096
    #: Fraction of device capacity primed before the measured phase.
    fill_fraction: float = 0.3
    op: str = "mixed"
    pattern: Pattern = Pattern.UNIFORM
    read_fraction: float = 0.5
    queue_depth: int = 8
    blocks_per_plane: int = 24
    n_ops: int = 1500
    key_digits: int = 12


SCENARIOS: Dict[str, TraceScenario] = {
    s.fig: s
    for s in (
        TraceScenario("fig2", "end-to-end latency, 4KiB mixed ops",
                      queue_depth=1),
        TraceScenario("fig3", "high-occupancy index pressure",
                      fill_fraction=0.85, queue_depth=1,
                      blocks_per_plane=32),
        TraceScenario("fig4", "split values (64KiB) at depth",
                      value_bytes=64 * 1024, fill_fraction=0.15,
                      queue_depth=16),
        TraceScenario("fig5", "small-value packing bandwidth",
                      value_bytes=1024, fill_fraction=0.0, op="insert",
                      queue_depth=16),
        TraceScenario("fig6", "foreground GC under sustained updates",
                      fill_fraction=0.8, op="update", queue_depth=16,
                      blocks_per_plane=8),
        TraceScenario("fig7", "tiny values (512B), space overheads",
                      value_bytes=512, fill_fraction=0.0, op="insert",
                      queue_depth=4),
        TraceScenario("fig8", "long keys (multi-command submissions)",
                      fill_fraction=0.0, op="insert", queue_depth=16,
                      key_digits=60),
    )
}


@dataclass
class TraceReport:
    """Everything one traced run produced."""

    fig: str
    scenario: TraceScenario
    collector: TraceCollector
    #: runs["kv-ssd"] / runs["block-ssd"] — the measured-phase results.
    runs: Dict[str, RunResult] = field(default_factory=dict)
    #: Per-personality latency attribution over the measured phase.
    breakdowns: Dict[str, LatencyBreakdown] = field(default_factory=dict)


def _fill_kvps(device, value_bytes: int, scheme: KeyScheme,
               fraction: float) -> int:
    """Pair count filling ``fraction`` of the KV device's page capacity."""
    from repro.kvftl.blob import blobs_per_page

    geometry = device.array.geometry
    per_page = blobs_per_page(
        scheme.key_bytes, value_bytes, geometry.page_bytes, device.config,
    )
    margin_blocks = device.config.stream_width + 16
    fill_blocks = device.free_block_count() - margin_blocks
    return int(
        fill_blocks * geometry.pages_per_block * per_page * fraction
    )


def _trace_personality_cell(
    personality: str,
    fig: str,
    n_ops: int,
    max_spans: int,
    sample_every: int,
) -> Dict[str, object]:
    """Run ``fig``'s scenario on one personality under its own collector.

    Returns plain picklable parts — the run result, the attribution
    breakdown, and the finished span records — which :func:`run_traced`
    merges into one shared-collector report in fixed personality order.
    """
    scenario = SCENARIOS[fig]
    config = TraceConfig(sample_every=sample_every, max_spans=max_spans)
    collector = TraceCollector(max_spans)
    geometry = lab_geometry(scenario.blocks_per_plane)
    scheme = KeyScheme(prefix=b"key-", digits=scenario.key_digits)
    pid = 1 if personality == "kv-ssd" else 2
    tracer = Tracer(config, collector, pid=pid, process_name=personality)

    # Both personalities replay the identical spec: the KV population
    # sizing below is a pure function of the scenario, so the block cell
    # computes the same numbers without running the KV cell first.
    probe = build_kv_rig(geometry)
    population = n_ops
    if scenario.fill_fraction > 0.0:
        population = max(
            n_ops,
            _fill_kvps(probe.device, scenario.value_bytes, scheme,
                       scenario.fill_fraction),
        )
    spec = WorkloadSpec(
        n_ops=n_ops,
        op=scenario.op,
        pattern=scenario.pattern,
        population=population,
        key_scheme=scheme,
        value_bytes=scenario.value_bytes,
        read_fraction=scenario.read_fraction,
        seed=47,
    )

    if personality == "kv-ssd":
        rig = build_kv_rig(geometry, tracer=tracer)
        if scenario.fill_fraction > 0.0:
            rig.device.fast_fill(population, scenario.value_bytes, scheme)
        run = execute_workload(
            rig.env, rig.adapter, generate_operations(spec),
            queue_depth=scenario.queue_depth, name=f"trace.{fig}.kv",
            stop_after_us=60e6,
        )
    else:
        block_rig = build_block_rig(geometry, tracer=tracer)
        adapter = block_rig.adapter(scenario.value_bytes)
        if scenario.fill_fraction > 0.0:
            block_rig.device.prime_sequential_fill(
                int(block_rig.device.n_units * scenario.fill_fraction)
            )
        run = execute_workload(
            block_rig.env, adapter, generate_operations(spec),
            queue_depth=scenario.queue_depth, name=f"trace.{fig}.block",
            stop_after_us=60e6,
        )
    breakdown = LatencyBreakdown.from_records(
        collector.records(), pid=pid,
        since_us=run.started_us, name=personality,
    )
    return {
        "run": run,
        "breakdown": breakdown,
        "records": collector.records(),
        "dropped": collector.dropped,
        "process_names": dict(collector.process_names),
    }


def run_traced(
    fig: str = "fig6",
    n_ops: Optional[int] = None,
    max_spans: int = 1 << 20,
    sample_every: int = 1,
    runner: Optional[SweepRunner] = None,
) -> TraceReport:
    """Run ``fig``'s scenario on both personalities into one collector.

    The personalities are independent cells (each simulates on its own
    environment); ``runner`` may compute them in parallel or reuse
    cached cells.  Records are merged kv-first then block — the same
    append order the serial shared collector produced — so the exported
    trace and the drop accounting are byte-identical either way.
    """
    scenario = SCENARIOS.get(fig)
    if scenario is None:
        raise ConfigurationError(
            f"no trace scenario for {fig!r}; choose from "
            f"{sorted(SCENARIOS)}"
        )
    n_ops = scenario.n_ops if n_ops is None else n_ops
    points = tuple(
        SweepPoint(
            label=personality,
            fn=_trace_personality_cell,
            kwargs=dict(
                personality=personality,
                fig=fig,
                n_ops=n_ops,
                max_spans=max_spans,
                sample_every=sample_every,
            ),
        )
        for personality in ("kv-ssd", "block-ssd")
    )
    cells = execute_spec(SweepSpec(f"trace.{fig}", points), runner)

    collector = TraceCollector(max_spans)
    report = TraceReport(fig, scenario, collector)
    for personality, cell in zip(("kv-ssd", "block-ssd"), cells):
        # Worker-side drops happened against an emptier buffer than the
        # shared one; re-appending here reproduces the shared-collector
        # retention exactly, and the counters sum to the serial total.
        collector.dropped += cell["dropped"]
        for record in cell["records"]:
            collector.append(record)
        collector.process_names.update(cell["process_names"])
        report.runs[personality] = cell["run"]
        report.breakdowns[personality] = cell["breakdown"]
    return report
