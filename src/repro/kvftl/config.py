"""Configuration for the KV-SSD firmware personality.

The KV personality runs on the *same* flash array and controller hardware
as the block personality (the paper's PM983 firmware-swap methodology);
everything here is firmware policy and firmware cost.

Calibration anchors (paper, Sec. I/IV):

* random 4 KiB retrieve ~1.7x and insert ~2.5x the block device's
  direct-I/O latency at QD1 (key handling + index work);
* retrieve latency up to 2x and insert latency up to 16.4x worse at high
  index occupancy (global index overflows device DRAM, Fig. 3);
* byte-aligned log packing: blobs below ``min_alloc_bytes`` are padded to
  it (ECC-sector hypothesis -> up to ~20x space amplification, Fig. 7);
  values beyond the usable page area split into fragments with offset
  management overhead (Fig. 4 "bane", Fig. 5 bandwidth zig-zag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import KIB, MIB


@dataclass(frozen=True)
class KVSSDConfig:
    """Policy and cost knobs for :class:`~repro.kvftl.device.KVSSD`."""

    # -- SNIA KVS API limits (Sec. II) -------------------------------------
    min_key_bytes: int = 4
    max_key_bytes: int = 255
    max_value_bytes: int = 2 * MIB

    # -- blob layout ----------------------------------------------------------
    #: Per-KVP on-flash metadata (key size, value size, namespace, CRC).
    metadata_bytes: int = 32
    #: Minimum allocation unit; small blobs are padded up to this (the
    #: paper's ECC-sector hypothesis for the 1 KiB padding).
    min_alloc_bytes: int = 1 * KIB
    #: Page bytes reserved for recovery/erasure-coding metadata; the rest
    #: is usable blob area (32 KiB page - 7.5 KiB -> fits a 24 KiB value
    #: plus key and metadata, matching the paper's Fig. 5 hypothesis).
    page_reserved_bytes: int = 7680

    # -- capacity ----------------------------------------------------------
    overprovision: float = 0.07
    #: Hash-table load factor the global index sustains before collision
    #: resolution degrades.  Together with the index region size this sets
    #: the device's KVP limit: 5% of 3.84 TB at ~62 B per slot
    #: (24 B entry x 1.3 structure overhead / 0.5 load) ~= 3.1 billion
    #: pairs — the paper's observed maximum.
    index_load_factor: float = 0.5

    # -- controller ----------------------------------------------------------
    controller_cores: int = 8
    #: Parallel index-manager units (Sec. II footnote: multiple managers
    #: reduce contention on the global index).
    index_managers: int = 8
    #: Write-frontier width; the hash-ordered log stripes across all dies.
    stream_width: int = 16
    write_buffer_bytes: int = 1 * MIB
    gc_threshold_fraction: float = 0.08
    gc_reserve_blocks: int = 4
    #: GC victim scoring: ``greedy`` or ``cost_benefit`` (ablation knob).
    gc_victim_policy: str = "greedy"
    #: Grown-defect budget before the device degrades to read-only;
    #: ``None`` scales with the geometry (see FtlCore).
    spare_block_limit: Optional[int] = None
    #: Runtime invariant checking after every GC cycle and drain (see
    #: :meth:`repro.ftl.core.FtlCore.check_invariants`).  O(live data)
    #: per check — a debug/test mode, off by default.
    invariants: bool = False

    # -- controller service times (microseconds) -----------------------------
    host_interface_us: float = 2.0
    #: Controller work per store (command parse, packing bookkeeping).
    store_controller_us: float = 30.0
    #: Index-manager work per store (hash, local-index insert, merge share).
    store_index_us: float = 20.0
    #: Controller work per retrieve (command parse, blob locate/unpack).
    retrieve_controller_us: float = 50.0
    #: Index-manager work per retrieve (hash, membership, index walk).
    retrieve_index_us: float = 30.0
    #: Delete / exist index work.
    delete_index_us: float = 18.0
    exist_index_us: float = 10.0
    #: DRAM copy per buffered KiB.
    buffer_copy_us_per_kib: float = 1.2
    #: Serving a retrieve from the not-yet-packed DRAM buffer.
    buffer_read_us: float = 3.0
    #: Extra controller work per additional data fragment of a split KVP
    #: (splitting + offset-pointer management; the Fig. 4/5 penalty).
    split_fragment_us: float = 250.0

    # -- global hash index ----------------------------------------------------
    #: DRAM available to cache the global index.  ``None`` scales the real
    #: drive's proportion (4 GiB DRAM on 3.84 TB) to this device.
    index_dram_bytes: Optional[int] = None
    #: Bytes per index entry (fixed-length key hash + location + flags).
    index_entry_bytes: int = 24
    #: Multi-level structure overhead over raw entries.
    index_structure_overhead: float = 1.3
    #: Inserts accumulated in a local index before merging to the global
    #: index (one merge batch).
    merge_batch: int = 64
    #: Fraction of blocks reserved as the on-flash index region.
    index_region_fraction: float = 0.05
    #: Bloom filter false-positive rate for negative lookups.
    bloom_fp_rate: float = 0.01

    # -- iterator management ---------------------------------------------------
    #: Keys accumulated per iterator bucket before a bucket page flush.
    iterator_flush_keys: int = 256

    # -- flush policy -----------------------------------------------------------
    flush_linger_us: float = 500.0

    def __post_init__(self) -> None:
        if not 4 <= self.min_key_bytes <= self.max_key_bytes <= 255:
            raise ConfigurationError("key limits must satisfy 4 <= min <= max <= 255")
        if self.metadata_bytes < 0 or self.min_alloc_bytes < 1:
            raise ConfigurationError("blob layout sizes must be positive")
        if not 0.0 <= self.overprovision < 0.5:
            raise ConfigurationError("overprovision outside [0, 0.5)")
        if self.controller_cores < 1 or self.index_managers < 1:
            raise ConfigurationError("cores and index managers must be >= 1")
        if self.stream_width < 1:
            raise ConfigurationError("stream width must be >= 1")
        if self.merge_batch < 1:
            raise ConfigurationError("merge batch must be >= 1")
        if not 0.0 < self.index_region_fraction < 0.5:
            raise ConfigurationError("index region fraction must be in (0, 0.5)")
        if not 0.0 < self.index_load_factor <= 1.0:
            raise ConfigurationError("index load factor must be in (0, 1]")
        if not 0.0 <= self.bloom_fp_rate <= 1.0:
            raise ConfigurationError("bloom FP rate must be within [0, 1]")
        if self.gc_reserve_blocks < 1:
            raise ConfigurationError("gc_reserve_blocks must be >= 1")
        if self.spare_block_limit is not None and self.spare_block_limit < 1:
            raise ConfigurationError("spare_block_limit must be >= 1")
        if self.gc_victim_policy not in ("greedy", "cost_benefit"):
            raise ConfigurationError(
                "gc_victim_policy must be 'greedy' or 'cost_benefit', "
                f"got {self.gc_victim_policy!r}"
            )
