"""Iterator bucket management.

Beside the global index, the device files every stored key into an
iterator bucket chosen by the key's first 4 bytes (Sec. II).  Buckets make
prefix iteration possible but add their own write traffic: bucket pages
are appended to flash as keys accumulate.

The model tracks per-bucket key counts and converts accumulation into
periodic bucket-page flush work, which the device charges to the shared
index region.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.kvftl.keyhash import iterator_bucket


class IteratorBuckets:
    """Per-prefix key accounting with amortized flush work."""

    def __init__(self, flush_keys: int) -> None:
        if flush_keys < 1:
            raise ConfigurationError(f"flush_keys must be >= 1, got {flush_keys}")
        self.flush_keys = flush_keys
        self._counts: Dict[bytes, int] = {}
        self._pending_since_flush = 0
        self.bucket_page_writes = 0

    def note_store(self, key: bytes) -> int:
        """Record a stored key; returns bucket pages to flush now (0 or 1)."""
        bucket = iterator_bucket(key)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._pending_since_flush += 1
        if self._pending_since_flush >= self.flush_keys:
            self._pending_since_flush = 0
            self.bucket_page_writes += 1
            return 1
        return 0

    def note_bulk(self, representative_key: bytes, count: int) -> None:
        """Register ``count`` keys sharing the representative's bucket.

        Used by bulk fills, whose schemes put every key under one 4-byte
        prefix.  Flush debt is settled immediately (bulk fills are primed,
        not timed), so only the page-write statistic advances.
        """
        if count < 1:
            raise ConfigurationError(f"bulk count must be >= 1, got {count}")
        bucket = iterator_bucket(representative_key)
        self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.bucket_page_writes += count // self.flush_keys

    def note_delete(self, key: bytes) -> None:
        """Record a key removal (bucket counts shrink; tombstones elided)."""
        bucket = iterator_bucket(key)
        count = self._counts.get(bucket, 0)
        if count <= 0:
            raise ConfigurationError(
                f"delete from empty iterator bucket {bucket!r}"
            )
        if count == 1:
            del self._counts[bucket]
        else:
            self._counts[bucket] = count - 1

    def bucket_count(self, prefix4: bytes) -> int:
        """Keys currently filed under ``prefix4``."""
        return self._counts.get(prefix4, 0)

    def buckets(self) -> List[bytes]:
        """All non-empty bucket ids, sorted for determinism."""
        return sorted(self._counts)

    @property
    def total_keys(self) -> int:
        """Keys across all buckets."""
        return sum(self._counts.values())
