"""Index managers and Bloom-filter membership checking.

The device uses multiple index managers to reduce contention on the
global index (Sec. II): each store hashes its key on a manager, stages the
entry in a local index, and merges batches into the global structure.
Managers also hold Bloom filters so reads and exist queries for absent
keys resolve without touching the index (Sec. II, "membership checking").

In the simulator the managers are a counted controller resource (their
parallelism is the Fig. 4 high-concurrency lever) and the Bloom filter is
a deterministic false-positive model keyed on the query key.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kvftl.keyhash import hash_fraction
from repro.sim.engine import Environment
from repro.sim.resources import Resource

#: Salt mixed into the key before deriving the false-positive draw, so the
#: residency draw (plain hash) and the Bloom draw are independent.
_BLOOM_SALT = b"\x9e\x37\x79\xb9"


class BloomModel:
    """Deterministic Bloom-filter behaviour model.

    Real filters answer "definitely absent" or "maybe present".  For
    present keys the model always answers maybe-present (no false
    negatives); for absent keys it answers maybe-present with the
    configured false-positive rate, decided per key.
    """

    def __init__(self, fp_rate: float) -> None:
        if not 0.0 <= fp_rate <= 1.0:
            raise ConfigurationError(f"bloom FP rate {fp_rate} outside [0, 1]")
        self.fp_rate = fp_rate
        self.negative_hits = 0
        self.false_positives = 0

    def maybe_present(self, key: bytes, actually_present: bool) -> bool:
        """Filter verdict for ``key`` given ground truth."""
        if actually_present:
            return True
        if hash_fraction(_BLOOM_SALT + key) < self.fp_rate:
            self.false_positives += 1
            return True
        self.negative_hits += 1
        return False


class IndexManagerPool:
    """The controller's index-manager units as a counted resource."""

    def __init__(self, env: Environment, managers: int, name: str = "") -> None:
        if managers < 1:
            raise ConfigurationError(f"need >= 1 index manager, got {managers}")
        self.resource = Resource(env, managers, name=f"{name}.idxmgr")
        self.managers = managers

    def serve(self, duration_us: float):
        """``yield from`` helper: occupy one manager for ``duration_us``."""
        return self.resource.serve(duration_us)
