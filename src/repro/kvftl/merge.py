"""The serialized local-to-global index merge engine.

Per-manager local indexes absorb store/delete traffic cheaply; a single
merge engine folds them into the global hash index in batches, paying
index-region flash reads and writes (Sec. II).  Serialization is the
point: at high index occupancy the merge engine falls behind, local
indexes fill, and stores block on :meth:`MergeEngine.backpressure` —
the emergent mechanism behind the paper's Fig. 3 insert-latency collapse.

The engine also owns all index-region flash traffic (page reads for
lookups, overwrite-in-place page writes for merges and iterator-bucket
flushes), so the device personality never touches the region directly.
"""

from __future__ import annotations

from typing import Generator

from repro.flash.nand import FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.core import DeviceStats
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.hashindex import GlobalHashIndex
from repro.sim.engine import Environment, Event
from repro.sim.signal import Signal


class MergeEngine:
    """Background merger of local-index entries into the global index."""

    def __init__(
        self,
        env: Environment,
        array: FlashArray,
        timing: FlashTiming,
        index: GlobalHashIndex,
        config: KVSSDConfig,
        stats: DeviceStats,
        name: str = "kv-ssd",
    ) -> None:
        self.env = env
        self.array = array
        self.timing = timing
        self.index = index
        self.config = config
        self.stats = stats
        #: Iterator bucket pages awaiting a flush (piggybacked on merges).
        self.iterator_flush_backlog = 0
        self._local_index_capacity = 4 * config.merge_batch
        self._wakeup = Signal(env, f"{name}.mergewake")
        self._done = Signal(env, f"{name}.mergedone")
        env.process(self._worker(), name=f"{name}.merge")

    # -- index flash traffic ---------------------------------------------

    def index_page_read(self) -> Generator[Event, None, None]:
        """Timed read of the next index-region page.

        Index-region reads bypass fault injection: the region is fenced
        from GC and modeled as overwrite-in-place metadata, so the fault
        model scopes to the data path (see DESIGN.md).
        """
        block, page = self.index.next_region_page()
        yield from self.array.read(
            block, page, self.array.geometry.page_bytes, fault_check=False
        )
        self.stats.index_flash_reads += 1

    def index_page_write(self) -> Generator[Event, None, None]:
        """Timed index-region page write (overwrite-in-place fidelity).

        Timing uses the same die/channel contention as any program.
        """
        block, _page = self.index.next_region_page()
        yield from self.array.channel_resource(block).serve(
            self.timing.transfer_us(self.array.geometry.page_bytes)
        )
        yield from self.array.die_resource(block).serve(self.timing.program_us)
        self.stats.index_flash_writes += 1

    # -- scheduling -------------------------------------------------------

    def kick_if_dirty(self) -> None:
        """Wake the engine once a full merge batch has accumulated."""
        if self.index.dirty_entries >= self.config.merge_batch:
            self._wakeup.notify_all()

    def backpressure(self) -> Generator[Event, None, None]:
        """Block stores while local indexes are full (merge engine behind)."""
        while self.index.dirty_entries >= self._local_index_capacity:
            self._wakeup.notify_all()
            yield self._done.wait()

    def _worker(self) -> Generator[Event, None, None]:
        while True:
            if (
                self.index.dirty_entries >= self.config.merge_batch
                or self.iterator_flush_backlog
            ):
                if self.iterator_flush_backlog:
                    self.iterator_flush_backlog -= 1
                    yield from self.index_page_write()
                work = self.index.take_merge_batch()
                for _ in range(work.page_reads):
                    yield from self.index_page_read()
                for _ in range(work.page_writes):
                    yield from self.index_page_write()
                self._done.notify_all()
            else:
                # Below a full batch: sleep until the dirty counter crosses
                # the threshold (stores and GC notify).  Sub-batch entries
                # stay in the local indexes — harmless, and a pure signal
                # wait keeps idle periods event-free.
                yield self._wakeup.wait()
