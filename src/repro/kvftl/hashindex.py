"""Model of the KV-SSD's multi-level global hash index.

The device keeps one index entry per stored pair (Sec. IV, "Impact of
index occupancy"): the index grows linearly with the number of KVPs, and
once it no longer fits in device DRAM, lookups and merges spill to flash.
This module models that behaviour at the fidelity the paper measures:

* **Residency** — the fraction of the index cacheable in DRAM.  A lookup
  of a non-resident entry costs one or two flash page reads (multi-level
  walk); which keys are resident is decided deterministically per key so
  runs are reproducible.
* **Merging** — inserts land in per-manager local indexes and merge into
  the global index in batches.  A merge touches a set of distinct index
  pages; non-resident pages must be read before being rewritten.  With a
  small index the batch touches few pages (cheap); with billions of
  entries nearly every entry dirties its own page — the mechanism behind
  the paper's 16.4x write-latency blowup at high occupancy (Fig. 3).

The index's flash traffic is directed at a reserved *index region* of
blocks so it contends for the same dies and channels as user data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.keyhash import hash_fraction
from repro.units import ceil_div


@dataclass(frozen=True)
class MergeWork:
    """Flash work one merge batch must perform."""

    page_reads: int
    page_writes: int


class GlobalHashIndex:
    """Analytic state of the global index plus its flash-region cursor."""

    def __init__(
        self,
        config: KVSSDConfig,
        page_bytes: int,
        dram_bytes: int,
        region_blocks: List[int],
        pages_per_block: int,
    ) -> None:
        if dram_bytes < 1:
            raise ConfigurationError(f"index DRAM must be >= 1 byte, got {dram_bytes}")
        if not region_blocks:
            raise ConfigurationError("index region needs at least one block")
        self.config = config
        self.page_bytes = page_bytes
        self.dram_bytes = dram_bytes
        self.region_blocks = list(region_blocks)
        self.pages_per_block = pages_per_block
        self.entries = 0
        self._dirty_entries = 0
        self._cursor = 0

    # -- size model ---------------------------------------------------------

    @property
    def index_bytes(self) -> int:
        """Current index size including multi-level structure overhead."""
        return int(
            self.entries
            * self.config.index_entry_bytes
            * self.config.index_structure_overhead
        )

    @property
    def index_pages(self) -> int:
        """Flash pages the persisted index occupies (>= 1)."""
        return max(1, ceil_div(max(self.index_bytes, 1), self.page_bytes))

    def resident_fraction(self) -> float:
        """Fraction of the index cacheable in device DRAM."""
        size = self.index_bytes
        if size <= self.dram_bytes:
            return 1.0
        return self.dram_bytes / size

    def levels_on_flash(self) -> int:
        """Index levels a non-resident lookup walks on flash (1 or 2)."""
        return 1 if self.index_pages <= 512 else 2

    # -- lookup model ---------------------------------------------------------

    def lookup_flash_reads(self, key: bytes) -> int:
        """Flash page reads a lookup of ``key`` needs right now.

        Deterministic per key: a key is resident iff its hash fraction
        falls inside the resident window.
        """
        if hash_fraction(key) < self.resident_fraction():
            return 0
        return self.levels_on_flash()

    # -- mutation model --------------------------------------------------------

    def prime_entries(self, count: int) -> None:
        """Register ``count`` entries without merge debt (bulk fills).

        A fast-filled device starts with its index fully merged, exactly
        as a real device looks after the fill traffic has quiesced.
        """
        if count < 0:
            raise ConfigurationError(f"cannot prime {count} entries")
        self.entries += count

    def note_insert(self) -> None:
        """Record a new entry landing in a local index (pre-merge)."""
        self.entries += 1
        self._dirty_entries += 1

    def note_update(self) -> None:
        """Record an entry's location changing (update/GC relocation)."""
        self._dirty_entries += 1

    def note_delete(self) -> None:
        """Record an entry removal."""
        if self.entries <= 0:
            raise ConfigurationError("index delete with no entries")
        self.entries -= 1
        self._dirty_entries += 1

    @property
    def dirty_entries(self) -> int:
        """Entries accumulated in local indexes, awaiting merge."""
        return self._dirty_entries

    def take_merge_batch(self) -> MergeWork:
        """Consume up to one merge batch of dirty entries; return its cost.

        Expected distinct pages touched by ``B`` uniformly hashed entries
        over ``P`` pages: ``P * (1 - (1 - 1/P)**B)``.  Non-resident pages
        are read before rewrite; every touched page is written back.
        """
        batch = min(self._dirty_entries, self.config.merge_batch)
        if batch == 0:
            return MergeWork(0, 0)
        self._dirty_entries -= batch
        pages = self.index_pages
        touched = pages * (1.0 - (1.0 - 1.0 / pages) ** batch)
        resident = self.resident_fraction()
        # DRAM-resident pages are updated in place and persisted lazily
        # (checkpointing is below measurement fidelity); only the
        # non-resident portion forces flash read-modify-writes through
        # the serialized merge engine.  This is why a lightly occupied
        # device merges for free and a full one pays per entry (Fig. 3).
        non_resident = round(touched * (1.0 - resident))
        return MergeWork(page_reads=non_resident, page_writes=non_resident)

    # -- flash-region addressing ------------------------------------------------

    def next_region_page(self) -> Tuple[int, int]:
        """Round-robin (block, page) inside the index region.

        The region is modeled as overwrite-in-place flash (its internal
        log-structuring is below the fidelity the paper's experiments can
        distinguish); what matters is that index I/O occupies the same
        dies and channels as data I/O.
        """
        total = len(self.region_blocks) * self.pages_per_block
        slot = self._cursor % total
        self._cursor += 1
        block_pos, page = divmod(slot, self.pages_per_block)
        return self.region_blocks[block_pos], page
