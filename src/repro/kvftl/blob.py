"""Blob layout: how a KV pair becomes bytes on flash.

A stored pair is a *blob* of ``metadata + key + value`` packed into flash
pages in a byte-aligned, log-like manner (Sec. II).  Two policies shape
everything the paper measures about packing:

* **Minimum allocation** — blobs smaller than ``min_alloc_bytes`` (1 KiB,
  the ECC-sector hypothesis) are padded up to it.  Larger blobs are packed
  tightly ("close to 1" space amplification for 1-4 KiB values, Fig. 7).
* **Splitting** — a blob larger than a page's usable area is split into
  fragments, each programmed separately with offset-pointer management
  (the Fig. 4 large-value penalty and Fig. 5 bandwidth zig-zag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, InvalidKeyError, InvalidValueError
from repro.kvftl.config import KVSSDConfig
from repro.units import ceil_div


def validate_key(key: bytes, config: KVSSDConfig) -> None:
    """Enforce the SNIA KVS key constraints (4..255 bytes)."""
    if not isinstance(key, (bytes, bytearray)):
        raise InvalidKeyError(f"key must be bytes, got {type(key).__name__}")
    if not config.min_key_bytes <= len(key) <= config.max_key_bytes:
        raise InvalidKeyError(
            f"key length {len(key)} outside "
            f"[{config.min_key_bytes}, {config.max_key_bytes}]"
        )


def validate_value_size(value_bytes: int, config: KVSSDConfig) -> None:
    """Enforce the SNIA KVS value constraints (0..2 MiB)."""
    if value_bytes < 0 or value_bytes > config.max_value_bytes:
        raise InvalidValueError(
            f"value length {value_bytes} outside [0, {config.max_value_bytes}]"
        )


def usable_page_bytes(page_bytes: int, config: KVSSDConfig) -> int:
    """Blob-packable bytes per flash page (page minus recovery reserve)."""
    usable = page_bytes - config.page_reserved_bytes
    if usable < config.min_alloc_bytes:
        raise ConfigurationError(
            f"page of {page_bytes}B leaves {usable}B usable, below the "
            f"minimum allocation of {config.min_alloc_bytes}B"
        )
    return usable


@dataclass(frozen=True)
class BlobLayout:
    """Computed on-flash layout of one KV pair."""

    key_bytes: int
    value_bytes: int
    #: Raw blob size: metadata + key + value.
    raw_bytes: int
    #: Device footprint after padding/splitting policy.
    footprint_bytes: int
    #: Per-fragment device sizes (sums to footprint_bytes).
    fragments: List[int]
    #: Fragments carrying blob data (the rest are offset-record pages).
    data_fragments: int = 1

    @property
    def is_split(self) -> bool:
        """Whether the blob spans more than one flash page."""
        return len(self.fragments) > 1

    @property
    def offset_pages(self) -> int:
        """Offset-record pages a split blob maintains."""
        return len(self.fragments) - self.data_fragments

    @property
    def padding_bytes(self) -> int:
        """Bytes added by the minimum-allocation/splitting policy."""
        return self.footprint_bytes - self.raw_bytes


def layout_blob(
    key_bytes: int, value_bytes: int, page_bytes: int, config: KVSSDConfig
) -> BlobLayout:
    """Compute the layout for a (key size, value size) pair.

    Unsplit blobs co-pack byte-aligned (padded to the minimum allocation).
    A blob larger than the usable page area splits into page-granular
    data fragments, and additionally maintains one offset-record page per
    extra fragment (the "splitting, packing, and offset pointer
    management" the paper blames for the large-value penalty, Sec. IV and
    its reference [11]).  Split blobs therefore consume whole pages —
    byte-aligned co-packing applies only below the split threshold, which
    is what makes Fig. 5's bandwidth dip hard just past 24 KiB.
    """
    raw = config.metadata_bytes + key_bytes + value_bytes
    usable = usable_page_bytes(page_bytes, config)
    if raw <= usable:
        footprint = max(raw, config.min_alloc_bytes)
        return BlobLayout(key_bytes, value_bytes, raw, footprint, [footprint], 1)
    data_fragments = ceil_div(raw, usable)
    offset_pages = data_fragments - 1
    fragments = [usable] * (data_fragments + offset_pages)
    footprint = sum(fragments)
    return BlobLayout(
        key_bytes, value_bytes, raw, footprint, fragments, data_fragments
    )


def blobs_per_page(
    key_bytes: int, value_bytes: int, page_bytes: int, config: KVSSDConfig
) -> int:
    """How many identical unsplit blobs co-pack into one page.

    Raises :class:`ConfigurationError` for blobs that must split (they do
    not co-pack at page granularity).
    """
    layout = layout_blob(key_bytes, value_bytes, page_bytes, config)
    if layout.is_split:
        raise ConfigurationError(
            f"blob of {layout.raw_bytes}B splits across pages; "
            "blobs_per_page is undefined"
        )
    return usable_page_bytes(page_bytes, config) // layout.footprint_bytes


def space_amplification(
    key_bytes: int, value_bytes: int, page_bytes: int, config: KVSSDConfig
) -> float:
    """Analytic device-bytes / application-bytes ratio for one pair size.

    This is the closed-form counterpart of the measured Fig. 7 curve; the
    benches cross-check the device's measured accounting against it.
    """
    app = key_bytes + value_bytes
    if app == 0:
        raise InvalidValueError("cannot compute amplification of an empty pair")
    layout = layout_blob(key_bytes, value_bytes, page_bytes, config)
    return layout.footprint_bytes / app
