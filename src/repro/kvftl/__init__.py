"""KV-SSD firmware personality (hash-indexed, log-packing FTL)."""

from repro.kvftl.blob import (
    BlobLayout,
    blobs_per_page,
    layout_blob,
    space_amplification,
    usable_page_bytes,
    validate_key,
    validate_value_size,
)
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.kvftl.hashindex import GlobalHashIndex, MergeWork
from repro.kvftl.indexmanager import BloomModel, IndexManagerPool
from repro.kvftl.iterator import IteratorBuckets
from repro.kvftl.keyhash import hash_fraction, iterator_bucket, key_hash64
from repro.kvftl.population import KeyScheme, PrimedPopulation

__all__ = [
    "BlobLayout",
    "BloomModel",
    "GlobalHashIndex",
    "IndexManagerPool",
    "IteratorBuckets",
    "KVSSD",
    "KVSSDConfig",
    "KeyScheme",
    "MergeWork",
    "PrimedPopulation",
    "blobs_per_page",
    "hash_fraction",
    "iterator_bucket",
    "key_hash64",
    "layout_blob",
    "space_amplification",
    "usable_page_bytes",
    "validate_key",
    "validate_value_size",
]
