"""The KV-SSD firmware personality.

:class:`KVSSD` implements the device the paper characterizes: a Samsung
KV-SSD style NVMe drive that stores variable-length key-value pairs
directly (Sec. II).  It composes, over the *same* flash array model as the
block personality:

* **key handling** — hashing, Bloom-filter membership checks, and
  index-manager scheduling;
* **a multi-level global hash index** — DRAM-cached with flash overflow,
  fed by per-manager local indexes through a serialized merge engine
  (:mod:`repro.kvftl.hashindex`);
* **log-like byte-aligned data packing** — blobs of metadata+key+value,
  padded to a 1 KiB minimum allocation, packed first-fit in arrival order
  into 32 KiB pages (no rearrangement), split with offset management when
  larger than a page's usable area;
* **iterator buckets** keyed by the first 4 bytes of each key;
* **garbage collection** with greedy victim selection and foreground
  stalls when free space runs out.

Every idiosyncrasy the paper reports is emergent here rather than scripted:
sequential key order buys nothing (hashing), latency degrades with index
occupancy (DRAM overflow + merge engine), small KVPs amplify space (min
allocation), large KVPs pay splitting penalties, and random updates at
high fill collapse into foreground GC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    CapacityLimitError,
    ConfigurationError,
    DeviceFullError,
    KeyNotFoundError,
)
from repro.flash.geometry import Geometry
from repro.flash.nand import BlockState, FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.writebuffer import WriteBuffer
from repro.kvftl.blob import (
    BlobLayout,
    blobs_per_page,
    layout_blob,
    usable_page_bytes,
    validate_key,
    validate_value_size,
)
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.hashindex import GlobalHashIndex
from repro.kvftl.indexmanager import BloomModel, IndexManagerPool
from repro.kvftl.iterator import IteratorBuckets
from repro.kvftl.population import KeyScheme, PrimedPopulation
from repro.metrics.counters import DeviceCounters
from repro.metrics.space import SpaceAccountant
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.sim.signal import Signal
from repro.units import KIB, ceil_div


@dataclass
class _Record:
    """Device-side state of one individually stored pair."""

    sequence: int
    key_bytes: int
    value_bytes: int
    fragments: Tuple[int, ...]
    #: (block, page) per fragment; None while awaiting packing.
    locations: List[Optional[Tuple[int, int]]] = field(default_factory=list)

    @property
    def footprint_bytes(self) -> int:
        return sum(self.fragments)


@dataclass
class _QueuedFragment:
    """One blob fragment waiting in the device DRAM pack queue."""

    key: bytes
    frag_index: int
    nbytes: int
    sequence: int
    arrival_us: float


class KVSSD:
    """Simulated NVMe KV-SSD (hash-indexed, log-packing personality)."""

    def __init__(
        self,
        env: Environment,
        geometry: Geometry,
        timing: Optional[FlashTiming] = None,
        config: Optional[KVSSDConfig] = None,
        name: str = "kv-ssd",
    ) -> None:
        self.env = env
        self.name = name
        self.config = config or KVSSDConfig()
        self.timing = timing or FlashTiming()
        self.array = FlashArray(env, geometry, self.timing)
        self.counters = DeviceCounters()
        self.space = SpaceAccountant()
        self.usable_page = usable_page_bytes(geometry.page_bytes, self.config)

        # -- index region carved out of the array ------------------------
        region_count = max(
            1, int(geometry.total_blocks * self.config.index_region_fraction)
        )
        self.pool = FreeBlockPool(self.array)
        self._index_region = list(range(region_count))
        for block in self._index_region:
            self.pool.reserve(block)
            info = self.array.blocks[block]
            info.state = BlockState.CLOSED
            info.next_page = geometry.pages_per_block
        self._region_set = set(self._index_region)

        data_blocks = geometry.total_blocks - region_count
        raw_data = data_blocks * geometry.block_bytes
        self.user_capacity_bytes = int(raw_data * (1.0 - self.config.overprovision))
        # The KVP limit binds on the index region: each pair needs a hash
        # slot, and the table cannot exceed its load factor.
        region_bytes = region_count * geometry.block_bytes
        slot_bytes = (
            self.config.index_entry_bytes
            * self.config.index_structure_overhead
            / self.config.index_load_factor
        )
        self.max_kvps = int(region_bytes / slot_bytes)

        dram = self.config.index_dram_bytes
        if dram is None:
            # Scale the real drive's DRAM:capacity proportion (4 GiB DRAM
            # serving a 3.84 TB device ~= 0.00104 bytes of DRAM per byte).
            dram = max(256 * KIB, int(geometry.capacity_bytes * 0.00104))
        self.index = GlobalHashIndex(
            self.config,
            geometry.page_bytes,
            dram,
            self._index_region,
            geometry.pages_per_block,
        )
        self.index_managers = IndexManagerPool(
            env, self.config.index_managers, name=name
        )
        self.bloom = BloomModel(self.config.bloom_fp_rate)
        self.iterators = IteratorBuckets(self.config.iterator_flush_keys)
        self.controller = Resource(
            env, self.config.controller_cores, name=f"{name}.ctl"
        )
        self.buffer = WriteBuffer(
            env, self.config.write_buffer_bytes, name=f"{name}.buffer"
        )
        self.data_stream = AllocationStream(
            self.array, self.pool, self.config.stream_width, name=f"{name}.data"
        )
        # The GC stream stays narrow: each open block it rotates across is
        # a block taken from the reserve GC itself depends on, and a wide
        # frontier can swallow the whole reserve and deadlock reclamation.
        self.gc_stream = AllocationStream(
            self.array, self.pool, 2, name=f"{name}.gc"
        )

        self._records: Dict[bytes, _Record] = {}
        self._populations: List[PrimedPopulation] = []
        self._manifests: Dict[int, List[tuple]] = {}
        self._pack_queue: Deque[_QueuedFragment] = deque()
        self._pack_pending_bytes = 0
        self._sequence = 0
        self.live_kvps = 0
        self._iterator_flush_backlog = 0
        self._local_index_capacity = 4 * self.config.merge_batch

        self._dirty = Signal(env, f"{name}.dirty")
        self._space_signal = Signal(env, f"{name}.space")
        self._gc_wakeup = Signal(env, f"{name}.gcwake")
        self._merge_wakeup = Signal(env, f"{name}.mergewake")
        self._merge_done = Signal(env, f"{name}.mergedone")
        self._gc_threshold_blocks = max(
            self.config.gc_reserve_blocks + 2,
            int(geometry.total_blocks * self.config.gc_threshold_fraction),
        )
        for worker in range(self.config.stream_width):
            env.process(self._pack_worker(), name=f"{name}.pack{worker}")
        env.process(self._gc_worker(), name=f"{name}.gc")
        env.process(self._merge_worker(), name=f"{name}.merge")

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------

    def _find_live(
        self, key: bytes
    ) -> Optional[Tuple[str, object]]:
        """Locate a live pair: ('record', rec) or ('primed', (pop, idx))."""
        record = self._records.get(key)
        if record is not None:
            return ("record", record)
        for population in self._populations:
            index = population.lookup(key)
            if index is not None:
                return ("primed", (population, index))
        return None

    def contains(self, key: bytes) -> bool:
        """Untimed ground-truth membership (testing/verification hook)."""
        return self._find_live(key) is not None

    # ------------------------------------------------------------------
    # SNIA KVS operations (timed)
    # ------------------------------------------------------------------

    def store(
        self, key: bytes, value_bytes: int, ncommands: int = 1
    ) -> Generator[Event, None, None]:
        """Store (insert or update) a pair; completes at buffer admission.

        ``ncommands`` is the number of NVMe commands the host needed to
        convey the request (2 for keys above the inline limit, Fig. 8);
        each costs one round of interface processing.
        """
        validate_key(key, self.config)
        validate_value_size(value_bytes, self.config)
        layout = layout_blob(
            len(key), value_bytes, self.array.geometry.page_bytes, self.config
        )
        yield from self.controller.serve(
            self.config.host_interface_us * ncommands
            + self.config.store_controller_us
        )
        if layout.is_split:
            # Splitting and offset-pointer management per extra fragment.
            yield from self.controller.serve(
                self.config.split_fragment_us * (layout.data_fragments - 1)
            )
        yield from self.index_managers.serve(self.config.store_index_us)
        yield from self._local_index_backpressure()

        if self._find_live(key) is None:
            if self.live_kvps >= self.max_kvps:
                raise CapacityLimitError(
                    f"device at its {self.max_kvps}-KVP limit"
                )
            if (
                self.space.device_bytes + layout.footprint_bytes
                > self.user_capacity_bytes
            ):
                raise DeviceFullError("no space left for new pairs")
        if (
            len(self.pool) <= self.config.gc_reserve_blocks + 1
            and not self._has_reclaimable_victim()
        ):
            raise DeviceFullError(
                "free pool exhausted and garbage collection cannot reclaim "
                "net pages"
            )

        # Admission happens per fragment below so a value larger than the
        # device buffer cannot deadlock against its own packing; the
        # record is created first so queued fragments resolve against it.
        # Re-resolve after the suspension points above: a concurrent store
        # of the same key may have landed while we waited at the index.
        existing = self._find_live(key)
        if existing is not None:
            self._invalidate_live(key, existing)
            self.index.note_update()
        else:
            self.index.note_insert()
            self.live_kvps += 1
            if self.iterators.note_store(key):
                self._iterator_flush_backlog += 1
        if self.index.dirty_entries >= self.config.merge_batch:
            self._merge_wakeup.notify_all()

        self._sequence += 1
        record = _Record(
            sequence=self._sequence,
            key_bytes=len(key),
            value_bytes=value_bytes,
            fragments=tuple(layout.fragments),
            locations=[None] * len(layout.fragments),
        )
        self._records[key] = record
        self.space.record_store(len(key), value_bytes, layout.footprint_bytes)
        for frag_index, nbytes in enumerate(layout.fragments):
            yield from self.buffer.admit(nbytes)
            yield from self.controller.serve(
                self.config.buffer_copy_us_per_kib * nbytes / KIB
            )
            self._pack_queue.append(
                _QueuedFragment(key, frag_index, nbytes, record.sequence, self.env.now)
            )
            self._pack_pending_bytes += nbytes
            if (
                len(self._pack_queue) == 1
                or self._pack_pending_bytes >= self.usable_page
                or self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
            ):
                # Wake packers on the empty->non-empty transition and when
                # a full page (or buffer pressure) exists; anything between
                # rides the linger timer of an already-awake packer.
                self._dirty.notify_all()
        self.counters.host_writes += 1
        self.counters.host_write_bytes += len(key) + value_bytes

    def retrieve(
        self, key: bytes, ncommands: int = 1
    ) -> Generator[Event, None, int]:
        """Retrieve a pair; returns the value size.  Timed process."""
        validate_key(key, self.config)
        yield from self.controller.serve(
            self.config.host_interface_us * ncommands
            + self.config.retrieve_controller_us
        )
        yield from self.index_managers.serve(self.config.retrieve_index_us)
        found = self._find_live(key)
        if not self.bloom.maybe_present(key, found is not None):
            raise KeyNotFoundError(f"key {key!r} not stored (bloom negative)")
        for _ in range(self.index.lookup_flash_reads(key)):
            yield from self._index_page_read()
        if found is None:
            raise KeyNotFoundError(f"key {key!r} not stored")

        kind, payload = found
        if kind == "record":
            record = payload
            procs = []
            for frag_index, location in enumerate(record.locations):
                if location is None:
                    yield from self.controller.serve(self.config.buffer_read_us)
                    continue
                block, page = location
                procs.append(
                    self.env.process(
                        self.array.read(block, page, record.fragments[frag_index])
                    )
                )
            if procs:
                yield self.env.all_of(procs)
            value_bytes = record.value_bytes
        else:
            population, index = payload
            block, page = population.location_of(index)
            yield from self.array.read(block, page, population.footprint_bytes)
            value_bytes = population.value_bytes
        self.counters.host_reads += 1
        self.counters.host_read_bytes += value_bytes
        return value_bytes

    def exist(
        self, key: bytes, ncommands: int = 1
    ) -> Generator[Event, None, bool]:
        """Membership query (timed); no data page access."""
        validate_key(key, self.config)
        yield from self.controller.serve(self.config.host_interface_us * ncommands)
        yield from self.index_managers.serve(self.config.exist_index_us)
        found = self._find_live(key) is not None
        if not self.bloom.maybe_present(key, found):
            return False
        for _ in range(self.index.lookup_flash_reads(key)):
            yield from self._index_page_read()
        return found

    def delete(
        self, key: bytes, ncommands: int = 1
    ) -> Generator[Event, None, None]:
        """Delete a pair (timed)."""
        validate_key(key, self.config)
        yield from self.controller.serve(self.config.host_interface_us * ncommands)
        yield from self.index_managers.serve(self.config.delete_index_us)
        found = self._find_live(key)
        if not self.bloom.maybe_present(key, found is not None):
            raise KeyNotFoundError(f"key {key!r} not stored (bloom negative)")
        for _ in range(self.index.lookup_flash_reads(key)):
            yield from self._index_page_read()
        if found is None:
            raise KeyNotFoundError(f"key {key!r} not stored")
        yield from self._local_index_backpressure()
        self._invalidate_live(key, found)
        self.index.note_delete()
        self.iterators.note_delete(key)
        self.live_kvps -= 1
        if self.index.dirty_entries >= self.config.merge_batch:
            self._merge_wakeup.notify_all()

    def iterate(
        self, prefix4: bytes, limit: int = 1024, ncommands: int = 1
    ) -> Generator[Event, None, List[bytes]]:
        """Open an iterator over keys sharing a 4-byte prefix (timed).

        Returns up to ``limit`` matching keys in sorted order.  The
        device walks the prefix's iterator bucket pages (Sec. II), so the
        cost scales with the bucket's population, not the whole store.
        """
        if len(prefix4) != 4:
            raise ConfigurationError(
                f"iterator prefix must be exactly 4 bytes, got {len(prefix4)}"
            )
        if limit < 1:
            raise ConfigurationError(f"iterator limit must be >= 1, got {limit}")
        yield from self.controller.serve(
            self.config.host_interface_us * ncommands
        )
        yield from self.index_managers.serve(self.config.exist_index_us)
        count = self.iterators.bucket_count(prefix4)
        # Bucket pages hold ~page/64B key entries each.
        keys_per_page = max(1, self.array.geometry.page_bytes // 64)
        for _ in range(ceil_div(max(count, 1), keys_per_page)):
            yield from self._index_page_read()
        matches: List[bytes] = [
            key for key in self._records if key[:4] == prefix4
        ]
        for population in self._populations:
            if population.scheme.key_for(0)[:4] != prefix4:
                continue
            for pair in range(population.count):
                if len(matches) >= limit and count > limit:
                    break
                if pair in population.overridden:
                    continue
                matches.append(population.scheme.key_for(pair))
        matches.sort()
        return matches[:limit]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def _invalidate_live(self, key: bytes, found: Tuple[str, object]) -> None:
        """Retire the current copy of ``key`` (space + valid-byte books)."""
        kind, payload = found
        if kind == "record":
            record = payload
            for frag_index, location in enumerate(record.locations):
                if location is not None:
                    self.array.invalidate(location[0], record.fragments[frag_index])
            self.space.record_remove(
                record.key_bytes, record.value_bytes, record.footprint_bytes
            )
            del self._records[key]
        else:
            population, index = payload
            block, _page = population.location_of(index)
            self.array.invalidate(block, population.footprint_bytes)
            population.override(index)
            self.space.record_remove(
                population.scheme.key_bytes,
                population.value_bytes,
                population.footprint_bytes,
            )

    # ------------------------------------------------------------------
    # packing machinery
    # ------------------------------------------------------------------

    def _take_pack_batch(self) -> Optional[List[_QueuedFragment]]:
        if not self._pack_queue:
            return None
        oldest = self._pack_queue[0]
        buffer_pressure = (
            self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        )
        aged = self.env.now - oldest.arrival_us >= self.config.flush_linger_us
        if self._pack_pending_bytes < self.usable_page and not (aged or buffer_pressure):
            return None
        batch: List[_QueuedFragment] = []
        room = self.usable_page
        # First-fit in strict arrival order: the log-like, no-rearrangement
        # packing the paper describes.
        while self._pack_queue and self._pack_queue[0].nbytes <= room:
            fragment = self._pack_queue.popleft()
            self._pack_pending_bytes -= fragment.nbytes
            batch.append(fragment)
            room -= fragment.nbytes
        return batch or None

    def _pack_worker(self) -> Generator[Event, None, None]:
        while True:
            batch = self._take_pack_batch()
            if batch is None:
                if self._pack_queue:
                    # Partial batch aging: poll on the linger timer.
                    yield self.env.any_of(
                        [
                            self._dirty.wait(),
                            self.env.timeout(self.config.flush_linger_us),
                        ]
                    )
                else:
                    # Nothing queued: sleep until a store enqueues work.
                    # (Pure signal wait — idle pollers would otherwise
                    # dominate the event stream whenever the device crawls
                    # through a GC stall.)
                    yield self._dirty.wait()
                continue
            yield from self._block_allowance(for_gc=False)
            block = self.data_stream.next_slot()
            if len(self.pool) < self._gc_threshold_blocks:
                self._gc_wakeup.notify_all()
            nbytes = sum(fragment.nbytes for fragment in batch)
            page = yield from self.array.program(
                block, self.array.geometry.page_bytes, nbytes
            )
            manifest = self._manifests.setdefault(block, [])
            for fragment in batch:
                record = self._records.get(fragment.key)
                if record is None or record.sequence != fragment.sequence:
                    # Superseded or deleted while queued: dead on arrival.
                    self.array.invalidate(block, fragment.nbytes)
                    continue
                record.locations[fragment.frag_index] = (block, page)
                manifest.append(
                    ("r", fragment.key, fragment.frag_index, page, fragment.nbytes)
                )
            self.buffer.drain(nbytes)

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all accepted stores reach flash."""
        while self._pack_queue or self.buffer.occupied_bytes:
            yield self.env.timeout(self.config.flush_linger_us)

    # ------------------------------------------------------------------
    # index flash traffic
    # ------------------------------------------------------------------

    def _index_page_read(self) -> Generator[Event, None, None]:
        block, page = self.index.next_region_page()
        yield from self.array.read(block, page, self.array.geometry.page_bytes)
        self.counters.index_flash_reads += 1

    def _index_page_write(self) -> Generator[Event, None, None]:
        # The region is overwrite-in-place at model fidelity; timing uses
        # the same die/channel contention as any program.
        block, _page = self.index.next_region_page()
        yield from self.array.channel_resource(block).serve(
            self.timing.transfer_us(self.array.geometry.page_bytes)
        )
        yield from self.array.die_resource(block).serve(self.timing.program_us)
        self.counters.index_flash_writes += 1

    def _local_index_backpressure(self) -> Generator[Event, None, None]:
        """Block stores while local indexes are full (merge engine behind)."""
        while self.index.dirty_entries >= self._local_index_capacity:
            self._merge_wakeup.notify_all()
            yield self._merge_done.wait()

    def _merge_worker(self) -> Generator[Event, None, None]:
        """The serialized local-to-global index merge engine."""
        while True:
            if (
                self.index.dirty_entries >= self.config.merge_batch
                or self._iterator_flush_backlog
            ):
                if self._iterator_flush_backlog:
                    self._iterator_flush_backlog -= 1
                    yield from self._index_page_write()
                work = self.index.take_merge_batch()
                for _ in range(work.page_reads):
                    yield from self._index_page_read()
                for _ in range(work.page_writes):
                    yield from self._index_page_write()
                self._merge_done.notify_all()
            else:
                # Below a full batch: sleep until the dirty counter crosses
                # the threshold (stores and GC notify).  Sub-batch entries
                # stay in the local indexes — harmless, and a pure signal
                # wait keeps idle periods event-free.
                yield self._merge_wakeup.wait()

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _block_allowance(self, for_gc: bool) -> Generator[Event, None, None]:
        floor = 0 if for_gc else self.config.gc_reserve_blocks
        while len(self.pool) <= floor:
            self._gc_wakeup.notify_all()
            yield self._space_signal.wait()

    def _gc_page_benefit(self, block: int) -> int:
        """Pages freed net of pages consumed by relocating ``block``."""
        valid = self.array.blocks[block].valid_bytes
        pages_needed = ceil_div(valid, self.usable_page) if valid else 0
        return self.array.geometry.pages_per_block - pages_needed

    def _has_reclaimable_victim(self) -> bool:
        """Whether any closed data block would yield net pages to GC."""
        for block_index, info in enumerate(self.array.blocks):
            if block_index in self._region_set:
                continue
            if info.state is not BlockState.CLOSED:
                continue
            if self._gc_page_benefit(block_index) >= 1:
                return True
        return False

    def _select_victim(self) -> Optional[int]:
        best_index: Optional[int] = None
        best_valid: Optional[int] = None
        for block_index, info in enumerate(self.array.blocks):
            if block_index in self._region_set:
                continue
            if info.state is not BlockState.CLOSED:
                continue
            if best_valid is None or info.valid_bytes < best_valid:
                best_valid = info.valid_bytes
                best_index = block_index
                if best_valid == 0:
                    break
        return best_index

    def _gc_worker(self) -> Generator[Event, None, None]:
        while True:
            if len(self.pool) < self._gc_threshold_blocks:
                yield from self._collect_once()
            else:
                yield self.env.any_of(
                    [self._gc_wakeup.wait(), self.env.timeout(2000.0)]
                )

    def _live_manifest_blobs(self, block: int) -> List[tuple]:
        """Live blobs in ``block``: (kind, ident, page, nbytes) tuples."""
        live: List[tuple] = []
        for entry in self._manifests.get(block, []):
            if entry[0] == "r":
                _tag, key, frag_index, page, nbytes = entry
                record = self._records.get(key)
                if (
                    record is not None
                    and frag_index < len(record.locations)
                    and record.locations[frag_index] == (block, page)
                ):
                    live.append(("r", (key, frag_index), page, nbytes))
            elif entry[0] == "pr":
                _tag, pop_index, page_seq, page = entry
                population = self._populations[pop_index]
                for pair in population.indices_in_fill_page(page_seq):
                    if pair in population.overridden or pair in population.relocated:
                        continue
                    live.append(
                        ("p", (pop_index, pair), page, population.footprint_bytes)
                    )
            elif entry[0] == "p":
                _tag, pop_index, pair, page, nbytes = entry
                population = self._populations[pop_index]
                if (
                    pair not in population.overridden
                    and population.relocated.get(pair) == (block, page)
                ):
                    live.append(("p", (pop_index, pair), page, nbytes))
            else:  # pragma: no cover - manifest corruption guard
                raise ConfigurationError(f"unknown manifest entry {entry!r}")
        return live

    def _collect_once(self) -> Generator[Event, None, None]:
        victim = self._select_victim()
        if victim is None:
            yield self.env.timeout(200.0)
            return
        critical = len(self.pool) <= self.config.gc_reserve_blocks
        if self._gc_page_benefit(victim) < (1 if critical else 2):
            # Relocating this victim would consume as many pages as it
            # frees; wait for invalidations instead of churning.
            yield self.env.timeout(2000.0)
            return
        foreground = self._space_signal.waiting > 0 or critical
        self.counters.gc_runs += 1
        if foreground:
            self.counters.foreground_gc_runs += 1
        self.counters.gc_events.append((self.env.now, foreground))

        live = self._live_manifest_blobs(victim)
        pages = sorted({page for _kind, _ident, page, _nbytes in live})
        if pages:
            read_procs = [
                self.env.process(
                    self.array.read(victim, page, self.array.geometry.page_bytes)
                )
                for page in pages
            ]
            yield self.env.all_of(read_procs)

        relocated_bytes = 0
        position = 0
        while position < len(live):
            group: List[tuple] = []
            room = self.usable_page
            while position < len(live) and live[position][3] <= room:
                group.append(live[position])
                room -= live[position][3]
                position += 1
            if not group:  # pragma: no cover - fragments never exceed usable
                raise ConfigurationError("unpackable GC fragment")
            yield from self._block_allowance(for_gc=True)
            target = self.gc_stream.next_slot()
            nbytes = sum(item[3] for item in group)
            new_page = yield from self.array.program(
                target, self.array.geometry.page_bytes, nbytes
            )
            manifest = self._manifests.setdefault(target, [])
            for kind, ident, old_page, blob_bytes in group:
                if kind == "r":
                    key, frag_index = ident
                    record = self._records.get(key)
                    if (
                        record is None
                        or record.locations[frag_index] != (victim, old_page)
                    ):
                        # Invalidated between census and program.
                        self.array.invalidate(target, blob_bytes)
                        continue
                    self.array.invalidate(victim, blob_bytes)
                    record.locations[frag_index] = (target, new_page)
                    manifest.append(("r", key, frag_index, new_page, blob_bytes))
                else:
                    pop_index, pair = ident
                    population = self._populations[pop_index]
                    if pair in population.overridden:
                        self.array.invalidate(target, blob_bytes)
                        continue
                    self.array.invalidate(victim, blob_bytes)
                    population.relocate(pair, target, new_page)
                    manifest.append(("p", pop_index, pair, new_page, blob_bytes))
                relocated_bytes += blob_bytes
                self.index.note_update()
        if self.index.dirty_entries >= self.config.merge_batch:
            self._merge_wakeup.notify_all()
        if self.array.blocks[victim].valid_bytes != 0:
            raise ConfigurationError(
                f"victim {victim} kept {self.array.blocks[victim].valid_bytes}B "
                "valid after relocation"
            )
        yield from self.array.erase(victim)
        self._manifests[victim] = []
        self.pool.push(victim)
        self.counters.gc_relocated_bytes += relocated_bytes
        self.counters.gc_erased_blocks += 1
        self._space_signal.notify_all()

    # ------------------------------------------------------------------
    # experiment priming
    # ------------------------------------------------------------------

    def fast_fill(
        self, count: int, value_bytes: int, scheme: Optional[KeyScheme] = None
    ) -> PrimedPopulation:
        """Untimed bulk fill of ``count`` pairs under a key scheme.

        State-identical to storing the pairs and draining, minus simulated
        time.  Blobs must not split (fills use small values, as in the
        paper's setups).
        """
        scheme = scheme or KeyScheme()
        if count < 1:
            raise ConfigurationError(f"fill count must be >= 1, got {count}")
        for population in self._populations:
            if population.scheme.prefix == scheme.prefix:
                raise ConfigurationError(
                    f"a population with prefix {scheme.prefix!r} already exists"
                )
        validate_value_size(value_bytes, self.config)
        layout = layout_blob(
            scheme.key_bytes, value_bytes, self.array.geometry.page_bytes, self.config
        )
        if layout.is_split:
            raise ConfigurationError("fast_fill does not support split blobs")
        if self.live_kvps + count > self.max_kvps:
            raise CapacityLimitError(
                f"fill of {count} exceeds the {self.max_kvps}-KVP limit"
            )
        if (
            self.space.device_bytes + count * layout.footprint_bytes
            > self.user_capacity_bytes
        ):
            raise DeviceFullError("fill exceeds device capacity")

        per_page = blobs_per_page(
            scheme.key_bytes, value_bytes, self.array.geometry.page_bytes, self.config
        )
        pages_needed = ceil_div(count, per_page)
        pages_free = len(self.pool) * self.array.geometry.pages_per_block
        if pages_needed > pages_free:
            raise DeviceFullError(
                f"fill needs {pages_needed} pages, {pages_free} free"
            )
        population = PrimedPopulation(
            scheme=scheme,
            count=count,
            value_bytes=value_bytes,
            footprint_bytes=layout.footprint_bytes,
            blobs_per_page=per_page,
        )
        pop_index = len(self._populations)
        self._populations.append(population)

        pages_needed = ceil_div(count, per_page)
        remaining = count
        for page_seq in range(pages_needed):
            blobs_here = min(per_page, remaining)
            remaining -= blobs_here
            block = self.data_stream.next_slot()
            page = self.array.prime_program(
                block, blobs_here * layout.footprint_bytes
            )
            population.page_blocks.append(block)
            population.page_indices.append(page)
            self._manifests.setdefault(block, []).append(
                ("pr", pop_index, page_seq, page)
            )
        self.index.prime_entries(count)
        self.iterators.note_bulk(scheme.key_for(0), count)
        self.space.app_key_bytes += count * scheme.key_bytes
        self.space.app_value_bytes += count * value_bytes
        self.space.device_bytes += count * layout.footprint_bytes
        self.live_kvps += count
        return population

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes holding live blob data."""
        return self.space.device_bytes

    def occupancy_fraction(self) -> float:
        """Live blob bytes over user capacity."""
        return self.occupied_bytes / self.user_capacity_bytes

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return len(self.pool)

    def layout_for(self, key_bytes: int, value_bytes: int) -> BlobLayout:
        """Blob layout this device would use for a (key, value) size pair."""
        return layout_blob(
            key_bytes, value_bytes, self.array.geometry.page_bytes, self.config
        )
