"""The KV-SSD firmware personality.

:class:`KVSSD` implements the device the paper characterizes: a Samsung
KV-SSD style NVMe drive that stores variable-length key-value pairs
directly (Sec. II).  It composes, over the *same*
:class:`~repro.ftl.core.FtlCore` substrate as the block personality:

* **key handling** — hashing, Bloom-filter membership checks, and
  index-manager scheduling;
* **a multi-level global hash index** — DRAM-cached with flash overflow,
  fed by per-manager local indexes through a serialized merge engine
  (:mod:`repro.kvftl.hashindex`);
* **log-like byte-aligned data packing** — blobs of metadata+key+value,
  padded to a 1 KiB minimum allocation, packed first-fit in arrival order
  into 32 KiB pages (no rearrangement), split with offset management when
  larger than a page's usable area;
* **iterator buckets** keyed by the first 4 bytes of each key.

The write pipeline, garbage collection, foreground-stall arbitration and
telemetry all live in the shared core; this file implements only the
personality hooks (what a blob is, where it lives, when it is dead).

Every idiosyncrasy the paper reports is emergent here rather than scripted:
sequential key order buys nothing (hashing), latency degrades with index
occupancy (DRAM overflow + merge engine), small KVPs amplify space (min
allocation), large KVPs pay splitting penalties, and random updates at
high fill collapse into foreground GC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Iterator, List, Optional, Tuple

from repro.errors import (
    CapacityLimitError,
    ConfigurationError,
    DeviceFullError,
    KeyNotFoundError,
)
from repro.faults.model import FaultInjector
from repro.flash.geometry import Geometry
from repro.flash.nand import BlockState, FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.core import DeviceStats, FlushBatch, FtlCore, GcItem
from repro.kvftl import priming
from repro.kvftl.blob import (
    BlobLayout,
    layout_blob,
    usable_page_bytes,
    validate_key,
    validate_value_size,
)
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.hashindex import GlobalHashIndex
from repro.kvftl.indexmanager import BloomModel, IndexManagerPool
from repro.kvftl.iterator import IteratorBuckets
from repro.kvftl.merge import MergeEngine
from repro.kvftl.population import KeyScheme, PrimedPopulation
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.trace.tracer import NULL_SPAN, Tracer
from repro.units import KIB, ceil_div


@dataclass
class _Record:
    """Device-side state of one individually stored pair."""

    sequence: int
    key_bytes: int
    value_bytes: int
    fragments: Tuple[int, ...]
    #: (block, page) per fragment; None while awaiting packing.
    locations: List[Optional[Tuple[int, int]]] = field(default_factory=list)

    @property
    def footprint_bytes(self) -> int:
        return sum(self.fragments)


@dataclass
class _QueuedFragment:
    """One blob fragment waiting in the device DRAM pack queue."""

    key: bytes
    frag_index: int
    nbytes: int
    sequence: int
    arrival_us: float


class KVSSD:
    """Simulated NVMe KV-SSD (hash-indexed, log-packing personality)."""

    def __init__(
        self,
        env: Environment,
        geometry: Geometry,
        timing: Optional[FlashTiming] = None,
        config: Optional[KVSSDConfig] = None,
        name: str = "kv-ssd",
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.config = config or KVSSDConfig()
        self.timing = timing or FlashTiming()
        self.stats = DeviceStats()
        #: Span tracer shared by the whole stack below this device; a
        #: disabled singleton when tracing is off, so API layers can
        #: always call ``device.tracer.op(...)``.
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.tracer.bind(env)
        #: Legacy views kept for tooling: counters and space books both
        #: live on the unified ``stats`` struct now.
        self.counters = self.stats
        self.space = self.stats
        self.array = FlashArray(
            env, geometry, self.timing, stats=self.stats, tracer=self.tracer,
            faults=faults,
        )
        self.usable_page = usable_page_bytes(geometry.page_bytes, self.config)

        # -- index region carved out of the array ------------------------
        # Marked CLOSED and fully programmed *before* the core builds its
        # free pool, so neither allocation nor GC ever touches it.
        region_count = max(
            1, int(geometry.total_blocks * self.config.index_region_fraction)
        )
        self._index_region = list(range(region_count))
        for block in self._index_region:
            info = self.array.blocks[block]
            info.state = BlockState.CLOSED
            info.next_page = geometry.pages_per_block
        self._region_set = set(self._index_region)

        data_blocks = geometry.total_blocks - region_count
        raw_data = data_blocks * geometry.block_bytes
        self.user_capacity_bytes = int(raw_data * (1.0 - self.config.overprovision))
        # The KVP limit binds on the index region: each pair needs a hash
        # slot, and the table cannot exceed its load factor.
        region_bytes = region_count * geometry.block_bytes
        slot_bytes = (
            self.config.index_entry_bytes
            * self.config.index_structure_overhead
            / self.config.index_load_factor
        )
        self.max_kvps = int(region_bytes / slot_bytes)

        dram = self.config.index_dram_bytes
        if dram is None:
            # Scale the real drive's DRAM:capacity proportion (4 GiB DRAM
            # serving a 3.84 TB device ~= 0.00104 bytes of DRAM per byte).
            dram = max(256 * KIB, int(geometry.capacity_bytes * 0.00104))
        self.index = GlobalHashIndex(
            self.config,
            geometry.page_bytes,
            dram,
            self._index_region,
            geometry.pages_per_block,
        )
        self.index_managers = IndexManagerPool(
            env, self.config.index_managers, name=name
        )
        self.bloom = BloomModel(self.config.bloom_fp_rate)
        self.iterators = IteratorBuckets(self.config.iterator_flush_keys)
        self.controller = Resource(
            env, self.config.controller_cores, name=f"{name}.ctl"
        )
        self.core = FtlCore(
            env,
            self.array,
            self,
            stream_width=self.config.stream_width,
            write_buffer_bytes=self.config.write_buffer_bytes,
            flush_linger_us=self.config.flush_linger_us,
            gc_threshold_fraction=self.config.gc_threshold_fraction,
            gc_reserve_blocks=self.config.gc_reserve_blocks,
            page_payload_bytes=self.usable_page,
            user_capacity_bytes=self.user_capacity_bytes,
            gc_victim_policy=self.config.gc_victim_policy,
            spare_block_limit=self.config.spare_block_limit,
            stats=self.stats,
            tracer=self.tracer,
            invariants=self.config.invariants,
            name=name,
        )
        self.pool = self.core.pool
        self.buffer = self.core.buffer

        self._records: Dict[bytes, _Record] = {}
        self._populations: List[PrimedPopulation] = []
        self._manifests: Dict[int, List[tuple]] = {}
        self._pack_queue: Deque[_QueuedFragment] = deque()
        self._pack_pending_bytes = 0
        self._sequence = 0
        self.live_kvps = 0

        self.merge = MergeEngine(
            env, self.array, self.timing, self.index, self.config, self.stats, name
        )

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------

    def _find_live(
        self, key: bytes
    ) -> Optional[Tuple[str, object]]:
        """Locate a live pair: ('record', rec) or ('primed', (pop, idx))."""
        record = self._records.get(key)
        if record is not None:
            return ("record", record)
        for population in self._populations:
            index = population.lookup(key)
            if index is not None:
                return ("primed", (population, index))
        return None

    def contains(self, key: bytes) -> bool:
        """Untimed ground-truth membership (testing/verification hook)."""
        return self._find_live(key) is not None

    # ------------------------------------------------------------------
    # SNIA KVS operations (timed)
    # ------------------------------------------------------------------

    def store(
        self, key: bytes, value_bytes: int, ncommands: int = 1, span=NULL_SPAN
    ) -> Generator[Event, None, None]:
        """Store (insert or update) a pair; completes at buffer admission.

        ``ncommands`` is the number of NVMe commands the host needed to
        convey the request (2 for keys above the inline limit, Fig. 8);
        each costs one round of interface processing.  ``span`` is the
        operation's root trace span; every suspension point below sits in
        one of its phases, so the attribution buckets tile the latency.
        """
        validate_key(key, self.config)
        validate_value_size(value_bytes, self.config)
        self.core.ensure_writable()
        layout = layout_blob(
            len(key), value_bytes, self.array.geometry.page_bytes, self.config
        )
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us * ncommands
                + self.config.store_controller_us
            )
            if layout.is_split:
                # Splitting and offset-pointer management per extra fragment.
                yield from self.controller.serve(
                    self.config.split_fragment_us * (layout.data_fragments - 1)
                )
        with span.phase("index"):
            yield from self.index_managers.serve(self.config.store_index_us)
            yield from self.merge.backpressure()

        if self._find_live(key) is None:
            if self.live_kvps >= self.max_kvps:
                raise CapacityLimitError(
                    f"device at its {self.max_kvps}-KVP limit"
                )
            if (
                self.stats.device_bytes + layout.footprint_bytes
                > self.user_capacity_bytes
            ):
                raise DeviceFullError("no space left for new pairs")
        if (
            len(self.pool) <= self.config.gc_reserve_blocks + 1
            and not self.core.has_reclaimable_victim()
        ):
            raise DeviceFullError(
                "free pool exhausted and garbage collection cannot reclaim "
                "net pages"
            )

        # Admission happens per fragment below so a value larger than the
        # device buffer cannot deadlock against its own packing; the
        # record is created first so queued fragments resolve against it.
        # Re-resolve after the suspension points above: a concurrent store
        # of the same key may have landed while we waited at the index.
        existing = self._find_live(key)
        if existing is not None:
            self._invalidate_live(key, existing)
            self.index.note_update()
        else:
            self.index.note_insert()
            self.live_kvps += 1
            if self.iterators.note_store(key):
                self.merge.iterator_flush_backlog += 1
        self.merge.kick_if_dirty()

        self._sequence += 1
        record = _Record(
            sequence=self._sequence,
            key_bytes=len(key),
            value_bytes=value_bytes,
            fragments=tuple(layout.fragments),
            locations=[None] * len(layout.fragments),
        )
        self._records[key] = record
        self.stats.record_store(len(key), value_bytes, layout.footprint_bytes)
        for frag_index, nbytes in enumerate(layout.fragments):
            with span.phase("buffer"):
                yield from self.buffer.admit(nbytes)
            with span.phase("controller"):
                yield from self.controller.serve(
                    self.config.buffer_copy_us_per_kib * nbytes / KIB
                )
            self._pack_queue.append(
                _QueuedFragment(key, frag_index, nbytes, record.sequence, self.env.now)
            )
            self._pack_pending_bytes += nbytes
            self.core.kick_flush(
                self._pack_pending_bytes, went_nonempty=len(self._pack_queue) == 1
            )
        self.stats.host_writes += 1
        self.stats.host_write_bytes += len(key) + value_bytes

    def retrieve(
        self, key: bytes, ncommands: int = 1, span=NULL_SPAN
    ) -> Generator[Event, None, int]:
        """Retrieve a pair; returns the value size.  Timed process."""
        validate_key(key, self.config)
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us * ncommands
                + self.config.retrieve_controller_us
            )
        with span.phase("index"):
            yield from self.index_managers.serve(self.config.retrieve_index_us)
            found = self._find_live(key)
            if not self.bloom.maybe_present(key, found is not None):
                raise KeyNotFoundError(f"key {key!r} not stored (bloom negative)")
            for _ in range(self.index.lookup_flash_reads(key)):
                yield from self.merge.index_page_read()
        if found is None:
            raise KeyNotFoundError(f"key {key!r} not stored")

        kind, payload = found
        if kind == "record":
            record = payload
            procs = []
            for frag_index, location in enumerate(record.locations):
                if location is None:
                    with span.phase("controller"):
                        yield from self.controller.serve(self.config.buffer_read_us)
                    continue
                block, page = location
                procs.append(
                    self.env.process(
                        self.core.read_page(
                            block, page, record.fragments[frag_index]
                        )
                    )
                )
            if procs:
                # Parallel fragment reads share the op's flash phase, so
                # any retry time lands there too (per-fragment recovery
                # attribution would require splitting the all_of wait).
                with span.phase("flash"):
                    yield self.env.all_of(procs)
            value_bytes = record.value_bytes
        else:
            population, index = payload
            block, page = population.location_of(index)
            yield from self.core.read_page(
                block, page, population.footprint_bytes, span=span
            )
            value_bytes = population.value_bytes
        self.stats.host_reads += 1
        self.stats.host_read_bytes += value_bytes
        return value_bytes

    def exist(
        self, key: bytes, ncommands: int = 1, span=NULL_SPAN
    ) -> Generator[Event, None, bool]:
        """Membership query (timed); no data page access."""
        validate_key(key, self.config)
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us * ncommands
            )
        with span.phase("index"):
            yield from self.index_managers.serve(self.config.exist_index_us)
            found = self._find_live(key) is not None
            if not self.bloom.maybe_present(key, found):
                return False
            for _ in range(self.index.lookup_flash_reads(key)):
                yield from self.merge.index_page_read()
        return found

    def delete(
        self, key: bytes, ncommands: int = 1, span=NULL_SPAN
    ) -> Generator[Event, None, None]:
        """Delete a pair (timed)."""
        validate_key(key, self.config)
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us * ncommands
            )
        with span.phase("index"):
            yield from self.index_managers.serve(self.config.delete_index_us)
            found = self._find_live(key)
            if not self.bloom.maybe_present(key, found is not None):
                raise KeyNotFoundError(f"key {key!r} not stored (bloom negative)")
            for _ in range(self.index.lookup_flash_reads(key)):
                yield from self.merge.index_page_read()
            if found is None:
                raise KeyNotFoundError(f"key {key!r} not stored")
            yield from self.merge.backpressure()
        self._invalidate_live(key, found)
        self.index.note_delete()
        self.iterators.note_delete(key)
        self.live_kvps -= 1
        self.merge.kick_if_dirty()

    def iterate(
        self, prefix4: bytes, limit: int = 1024, ncommands: int = 1,
        span=NULL_SPAN,
    ) -> Generator[Event, None, List[bytes]]:
        """Open an iterator over keys sharing a 4-byte prefix (timed).

        Returns up to ``limit`` matching keys in sorted order.  The
        device walks the prefix's iterator bucket pages (Sec. II), so the
        cost scales with the bucket's population, not the whole store.
        """
        if len(prefix4) != 4:
            raise ConfigurationError(
                f"iterator prefix must be exactly 4 bytes, got {len(prefix4)}"
            )
        if limit < 1:
            raise ConfigurationError(f"iterator limit must be >= 1, got {limit}")
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us * ncommands
            )
        with span.phase("index"):
            yield from self.index_managers.serve(self.config.exist_index_us)
            count = self.iterators.bucket_count(prefix4)
            # Bucket pages hold ~page/64B key entries each.
            keys_per_page = max(1, self.array.geometry.page_bytes // 64)
            for _ in range(ceil_div(max(count, 1), keys_per_page)):
                yield from self.merge.index_page_read()
        matches: List[bytes] = [
            key for key in self._records if key[:4] == prefix4
        ]
        for population in self._populations:
            if population.scheme.key_for(0)[:4] != prefix4:
                continue
            for pair in range(population.count):
                if len(matches) >= limit and count > limit:
                    break
                if pair in population.overridden:
                    continue
                matches.append(population.scheme.key_for(pair))
        matches.sort()
        return matches[:limit]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def _invalidate_live(self, key: bytes, found: Tuple[str, object]) -> None:
        """Retire the current copy of ``key`` (space + valid-byte books)."""
        kind, payload = found
        if kind == "record":
            record = payload
            for frag_index, location in enumerate(record.locations):
                if location is not None:
                    self.array.invalidate(location[0], record.fragments[frag_index])
            self.stats.record_remove(
                record.key_bytes, record.value_bytes, record.footprint_bytes
            )
            del self._records[key]
        else:
            population, index = payload
            block, _page = population.location_of(index)
            self.array.invalidate(block, population.footprint_bytes)
            population.override(index)
            self.stats.record_remove(
                population.scheme.key_bytes,
                population.value_bytes,
                population.footprint_bytes,
            )

    # ------------------------------------------------------------------
    # FtlCore personality hooks: write pipeline
    # ------------------------------------------------------------------

    def live_bytes(self) -> int:
        return self.stats.device_bytes

    def peek_flush(self) -> Optional[Tuple[int, float]]:
        if not self._pack_queue:
            return None
        return self._pack_pending_bytes, self._pack_queue[0].arrival_us

    def pop_flush_batch(self) -> Optional[FlushBatch]:
        # First-fit in strict arrival order: the log-like, no-rearrangement
        # packing the paper describes.
        batch: List[_QueuedFragment] = []
        room = self.usable_page
        while self._pack_queue and self._pack_queue[0].nbytes <= room:
            fragment = self._pack_queue.popleft()
            self._pack_pending_bytes -= fragment.nbytes
            batch.append(fragment)
            room -= fragment.nbytes
        if not batch:
            return None
        nbytes = sum(fragment.nbytes for fragment in batch)
        return FlushBatch(
            items=batch,
            payload_bytes=nbytes,
            transfer_bytes=self.array.geometry.page_bytes,
        )

    def commit_flush(self, batch: FlushBatch, block: int, page: int) -> None:
        manifest = self._manifests.setdefault(block, [])
        for fragment in batch.items:
            record = self._records.get(fragment.key)
            if record is None or record.sequence != fragment.sequence:
                # Superseded or deleted while queued: dead on arrival.
                self.array.invalidate(block, fragment.nbytes)
                continue
            record.locations[fragment.frag_index] = (block, page)
            manifest.append(
                ("r", fragment.key, fragment.frag_index, page, fragment.nbytes)
            )

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all accepted stores reach flash."""
        yield from self.core.drain()

    # ------------------------------------------------------------------
    # FtlCore personality hooks: garbage collection
    # ------------------------------------------------------------------

    def gc_eligible(self, block_index: int) -> bool:
        return block_index not in self._region_set

    def gc_census(self, victim: int) -> List[GcItem]:
        """Live blobs in ``victim``, from its manifest."""
        live: List[GcItem] = []
        for entry in self._manifests.get(victim, []):
            if entry[0] == "r":
                _tag, key, frag_index, page, nbytes = entry
                record = self._records.get(key)
                if (
                    record is not None
                    and frag_index < len(record.locations)
                    and record.locations[frag_index] == (victim, page)
                ):
                    live.append(GcItem(("r", key, frag_index), page, nbytes))
            elif entry[0] == "pr":
                _tag, pop_index, page_seq, page = entry
                population = self._populations[pop_index]
                for pair in population.indices_in_fill_page(page_seq):
                    if pair in population.overridden or pair in population.relocated:
                        continue
                    live.append(
                        GcItem(
                            ("p", pop_index, pair), page, population.footprint_bytes
                        )
                    )
            elif entry[0] == "p":
                _tag, pop_index, pair, page, nbytes = entry
                population = self._populations[pop_index]
                if (
                    pair not in population.overridden
                    and population.relocated.get(pair) == (victim, page)
                ):
                    live.append(GcItem(("p", pop_index, pair), page, nbytes))
            else:  # pragma: no cover - manifest corruption guard
                raise ConfigurationError(f"unknown manifest entry {entry!r}")
        return live

    def gc_relocate(
        self, item: GcItem, victim: int, target: int, new_page: int, slot: int
    ) -> bool:
        kind = item.ident[0]
        if kind == "r":
            _tag, key, frag_index = item.ident
            record = self._records.get(key)
            if (
                record is None
                or frag_index >= len(record.locations)
                or record.locations[frag_index] != (victim, item.page)
            ):
                return False
            record.locations[frag_index] = (target, new_page)
            self._manifests.setdefault(target, []).append(
                ("r", key, frag_index, new_page, item.nbytes)
            )
        else:
            _tag, pop_index, pair = item.ident
            population = self._populations[pop_index]
            if pair in population.overridden:
                return False
            population.relocate(pair, target, new_page)
            self._manifests.setdefault(target, []).append(
                ("p", pop_index, pair, new_page, item.nbytes)
            )
        self.index.note_update()
        return True

    def gc_cleanup(self, victim: int) -> None:
        self._manifests[victim] = []
        self.merge.kick_if_dirty()

    def mapping_view(self) -> Iterator[Tuple[object, int, int, int]]:
        # Invariant-checker ground truth.  Idents: ("r", key, frag_index)
        # for individually stored fragments (in-flight fragments have no
        # location yet and no valid bytes, so they are rightly absent),
        # ("p", pop_index, pair) for live primed pairs.  O(live pairs)
        # per call — debug/test mode only.
        for key, record in self._records.items():
            for frag_index, location in enumerate(record.locations):
                if location is not None:
                    yield (
                        ("r", key, frag_index),
                        location[0], location[1],
                        record.fragments[frag_index],
                    )
        for pop_index, population in enumerate(self._populations):
            for pair in range(population.count):
                if pair in population.overridden:
                    continue
                block, page = population.location_of(pair)
                yield (
                    ("p", pop_index, pair),
                    block, page, population.footprint_bytes,
                )

    # ------------------------------------------------------------------
    # experiment priming
    # ------------------------------------------------------------------

    def fast_fill(
        self, count: int, value_bytes: int, scheme: Optional[KeyScheme] = None
    ) -> PrimedPopulation:
        """Untimed bulk fill of ``count`` pairs under a key scheme.

        State-identical to storing the pairs and draining, minus simulated
        time (see :func:`repro.kvftl.priming.fast_fill`).
        """
        return priming.fast_fill(self, count, value_bytes, scheme)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes holding live blob data."""
        return self.core.occupied_bytes

    def occupancy_fraction(self) -> float:
        """Live blob bytes over user capacity."""
        return self.core.occupancy_fraction()

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return self.core.free_block_count()

    def layout_for(self, key_bytes: int, value_bytes: int) -> BlobLayout:
        """Blob layout this device would use for a (key, value) size pair."""
        return layout_blob(
            key_bytes, value_bytes, self.array.geometry.page_bytes, self.config
        )
