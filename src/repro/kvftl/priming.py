"""Experiment priming for the KV personality (untimed bulk fills).

The paper's setups fill large fractions of a 3.84 TB drive before each
measured phase; simulating every store would dwarf the measurement.
:func:`fast_fill` mutates the device into the state those stores would
have produced — populations, manifests, index entries, space books —
without advancing simulated time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CapacityLimitError, ConfigurationError, DeviceFullError
from repro.kvftl.blob import blobs_per_page, layout_blob, validate_value_size
from repro.kvftl.population import KeyScheme, PrimedPopulation
from repro.units import ceil_div


def fast_fill(
    device, count: int, value_bytes: int, scheme: Optional[KeyScheme] = None
) -> PrimedPopulation:
    """Untimed bulk fill of ``count`` pairs under a key scheme.

    State-identical to storing the pairs and draining, minus simulated
    time.  Blobs must not split (fills use small values, as in the
    paper's setups).
    """
    scheme = scheme or KeyScheme()
    if count < 1:
        raise ConfigurationError(f"fill count must be >= 1, got {count}")
    for population in device._populations:
        if population.scheme.prefix == scheme.prefix:
            raise ConfigurationError(
                f"a population with prefix {scheme.prefix!r} already exists"
            )
    validate_value_size(value_bytes, device.config)
    page_bytes = device.array.geometry.page_bytes
    layout = layout_blob(scheme.key_bytes, value_bytes, page_bytes, device.config)
    if layout.is_split:
        raise ConfigurationError("fast_fill does not support split blobs")
    if device.live_kvps + count > device.max_kvps:
        raise CapacityLimitError(
            f"fill of {count} exceeds the {device.max_kvps}-KVP limit"
        )
    if (
        device.stats.device_bytes + count * layout.footprint_bytes
        > device.user_capacity_bytes
    ):
        raise DeviceFullError("fill exceeds device capacity")

    per_page = blobs_per_page(
        scheme.key_bytes, value_bytes, page_bytes, device.config
    )
    pages_needed = ceil_div(count, per_page)
    pages_free = len(device.pool) * device.array.geometry.pages_per_block
    if pages_needed > pages_free:
        raise DeviceFullError(
            f"fill needs {pages_needed} pages, {pages_free} free"
        )
    population = PrimedPopulation(
        scheme=scheme,
        count=count,
        value_bytes=value_bytes,
        footprint_bytes=layout.footprint_bytes,
        blobs_per_page=per_page,
    )
    pop_index = len(device._populations)
    device._populations.append(population)

    remaining = count
    for page_seq in range(pages_needed):
        blobs_here = min(per_page, remaining)
        remaining -= blobs_here
        block = device.core.write_stream.next_slot()
        page = device.array.prime_program(block, blobs_here * layout.footprint_bytes)
        population.page_blocks.append(block)
        population.page_indices.append(page)
        device._manifests.setdefault(block, []).append(
            ("pr", pop_index, page_seq, page)
        )
    device.index.prime_entries(count)
    device.iterators.note_bulk(scheme.key_for(0), count)
    device.stats.app_key_bytes += count * scheme.key_bytes
    device.stats.app_value_bytes += count * value_bytes
    device.stats.device_bytes += count * layout.footprint_bytes
    device.live_kvps += count
    return population
