"""Experiment priming for the KV personality (untimed bulk fills).

The paper's setups fill large fractions of a 3.84 TB drive before each
measured phase; simulating every store would dwarf the measurement.
:func:`fast_fill` mutates the device into the state those stores would
have produced — populations, manifests, index entries, space books —
without advancing simulated time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CapacityLimitError, ConfigurationError, DeviceFullError
from repro.kvftl.blob import blobs_per_page, layout_blob, validate_value_size
from repro.kvftl.population import KeyScheme, PrimedPopulation
from repro.units import ceil_div


def fast_fill(
    device, count: int, value_bytes: int, scheme: Optional[KeyScheme] = None
) -> PrimedPopulation:
    """Untimed bulk fill of ``count`` pairs under a key scheme.

    State-identical to storing the pairs and draining, minus simulated
    time.  Blobs must not split (fills use small values, as in the
    paper's setups).
    """
    scheme = scheme or KeyScheme()
    if count < 1:
        raise ConfigurationError(f"fill count must be >= 1, got {count}")
    for population in device._populations:
        if population.scheme.prefix == scheme.prefix:
            raise ConfigurationError(
                f"a population with prefix {scheme.prefix!r} already exists"
            )
    validate_value_size(value_bytes, device.config)
    page_bytes = device.array.geometry.page_bytes
    layout = layout_blob(scheme.key_bytes, value_bytes, page_bytes, device.config)
    if layout.is_split:
        raise ConfigurationError("fast_fill does not support split blobs")
    if device.live_kvps + count > device.max_kvps:
        raise CapacityLimitError(
            f"fill of {count} exceeds the {device.max_kvps}-KVP limit"
        )
    if (
        device.stats.device_bytes + count * layout.footprint_bytes
        > device.user_capacity_bytes
    ):
        raise DeviceFullError("fill exceeds device capacity")

    per_page = blobs_per_page(
        scheme.key_bytes, value_bytes, page_bytes, device.config
    )
    pages_needed = ceil_div(count, per_page)
    pages_free = len(device.pool) * device.array.geometry.pages_per_block
    if pages_needed > pages_free:
        raise DeviceFullError(
            f"fill needs {pages_needed} pages, {pages_free} free"
        )
    population = PrimedPopulation(
        scheme=scheme,
        count=count,
        value_bytes=value_bytes,
        footprint_bytes=layout.footprint_bytes,
        blobs_per_page=per_page,
    )
    pop_index = len(device._populations)
    device._populations.append(population)

    remaining = count
    stream = device.core.write_stream
    next_slot = stream.next_slot
    prime_program = device.array.prime_program
    prime_program_run = device.array.prime_program_run
    page_blocks = population.page_blocks
    page_indices = population.page_indices
    manifests = device._manifests
    footprint = layout.footprint_bytes
    full_bytes = per_page * footprint
    width = stream.width
    page_seq = 0
    while remaining > 0:
        # Batch whole rotation cycles of full pages: reserve one page on
        # every open block per cycle and commit each block's run at once.
        # State-identical to the per-page path — same blocks, pages,
        # manifest order, and counters — minus the per-page call overhead.
        cycles = min(stream.cycle_headroom(), (remaining // per_page) // width)
        if cycles >= 1:
            blocks_cycle = stream.reserve_cycles(cycles)
            starts = [
                prime_program_run(block, cycles, full_bytes)
                for block in blocks_cycle
            ]
            page_blocks.extend(blocks_cycle * cycles)
            page_indices.extend(
                start + cycle for cycle in range(cycles) for start in starts
            )
            for offset, (block, start) in enumerate(zip(blocks_cycle, starts)):
                manifest = manifests.get(block)
                if manifest is None:
                    manifest = manifests[block] = []
                manifest.extend(
                    ("pr", pop_index, page_seq + offset + cycle * width, start + cycle)
                    for cycle in range(cycles)
                )
            page_seq += cycles * width
            remaining -= cycles * width * per_page
            continue
        # Per-page path: rotation boundaries (a block about to close) and
        # the final partial page.
        blobs_here = min(per_page, remaining)
        remaining -= blobs_here
        block = next_slot()
        page = prime_program(block, blobs_here * footprint)
        page_blocks.append(block)
        page_indices.append(page)
        manifest = manifests.get(block)
        if manifest is None:
            manifest = manifests[block] = []
        manifest.append(("pr", pop_index, page_seq, page))
        page_seq += 1
    device.index.prime_entries(count)
    device.iterators.note_bulk(scheme.key_for(0), count)
    device.stats.app_key_bytes += count * scheme.key_bytes
    device.stats.app_value_bytes += count * value_bytes
    device.stats.device_bytes += count * layout.footprint_bytes
    device.live_kvps += count
    return population
