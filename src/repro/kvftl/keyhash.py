"""Key hashing: variable-length keys to fixed-length hashes.

The KV-SSD transforms variable-length keys into fixed-length key hashes
for index management (Sec. II).  We use a 64-bit FNV-1a — deterministic
across runs and platforms (unlike Python's salted ``hash``), cheap, and
with the uniform dispersion the multi-level hash index model assumes.

The *consequence* of hashing — that sequential key order does not imply
sequential device order — is the paper's first finding, and it falls out
of every consumer of :func:`key_hash64` for free.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fmix64(value: int) -> int:
    """MurmurHash3 finalizer: avalanches low-byte changes into all bits.

    Raw FNV-1a mixes trailing-byte differences poorly into the high bits,
    which would skew every model that maps hashes to [0, 1) fractions for
    benchmark key families like ``key-000000000042``.
    """
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def key_hash64(key: bytes) -> int:
    """64-bit hash of ``key`` (FNV-1a core with an avalanche finalizer)."""
    value = _FNV_OFFSET
    for byte in key:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return _fmix64(value)


def hash_fraction(key: bytes) -> float:
    """Map a key to a deterministic uniform float in [0, 1).

    Used to model probabilistic firmware behaviour (index-cache residency,
    Bloom-filter false positives) deterministically per key.
    """
    return key_hash64(key) / float(1 << 64)


def iterator_bucket(key: bytes) -> bytes:
    """Iterator-management bucket id: the first 4 bytes of the key.

    Matches the device behaviour described in Sec. II (keys grouped into
    iterator buckets by their first 4 bytes).  Short keys are zero-padded,
    mirroring a firmware that right-pads before bucketing.
    """
    return (key + b"\x00\x00\x00\x00")[:4]
