"""Primed key populations: bulk device fills with arithmetic state.

The paper's occupancy experiments store up to 3 billion KVPs before the
measured phase (Fig. 3, Fig. 6).  Holding a Python object per primed pair
would dwarf host memory, so a fill is represented *functionally*:

* keys follow a :class:`KeyScheme` (prefix + zero-padded decimal index),
  so membership and key<->index conversion are O(1) arithmetic;
* placement is recorded per *page* (two parallel lists: which block and
  which page each page-worth of blobs went to), so a pair's flash location
  is computed from its index;
* subsequent updates/deletes/relocations are tracked in small overlay
  structures (an overridden set and a relocation map) that grow only with
  the number of *simulated* operations, not with the fill size.

The workload generators use the same schemes, so primed pairs are
indistinguishable from individually stored ones at the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class KeyScheme:
    """Deterministic key naming: ``prefix`` + zero-padded decimal index."""

    prefix: bytes = b"key-"
    digits: int = 12

    def __post_init__(self) -> None:
        if self.digits < 1:
            raise ValueError(f"digits must be >= 1, got {self.digits}")

    @property
    def key_bytes(self) -> int:
        """Length of every key this scheme produces."""
        return len(self.prefix) + self.digits

    def key_for(self, index: int) -> bytes:
        """The key naming pair number ``index``."""
        if index < 0:
            raise ValueError(f"key index must be >= 0, got {index}")
        return self.prefix + str(index).zfill(self.digits).encode("ascii")

    def index_of(self, key: bytes) -> Optional[int]:
        """Inverse of :meth:`key_for`; None for keys outside the scheme."""
        if len(key) != self.key_bytes or not key.startswith(self.prefix):
            return None
        suffix = key[len(self.prefix):]
        if not suffix.isdigit():
            return None
        return int(suffix)


@dataclass
class PrimedPopulation:
    """State of one bulk fill."""

    scheme: KeyScheme
    count: int
    value_bytes: int
    footprint_bytes: int
    blobs_per_page: int
    #: Block index of each consecutive page of the fill.
    page_blocks: List[int] = field(default_factory=list)
    #: Page-within-block of each consecutive page of the fill.
    page_indices: List[int] = field(default_factory=list)
    #: Pair indices whose primed copy is dead (updated or deleted).
    overridden: Set[int] = field(default_factory=set)
    #: Pair indices whose primed copy was moved by GC -> (block, page).
    relocated: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def live_count(self) -> int:
        """Primed pairs whose primed identity is still current."""
        return self.count - len(self.overridden)

    def page_of(self, index: int) -> int:
        """Which consecutive fill page pair ``index`` was packed into."""
        self._check(index)
        return index // self.blobs_per_page

    def location_of(self, index: int) -> Tuple[int, int]:
        """Current (block, page) of the pair's blob."""
        self._check(index)
        if index in self.relocated:
            return self.relocated[index]
        page_seq = self.page_of(index)
        return self.page_blocks[page_seq], self.page_indices[page_seq]

    def lookup(self, key: bytes) -> Optional[int]:
        """Index of a *live* primed pair named ``key``, else None."""
        index = self.scheme.index_of(key)
        if index is None or index >= self.count or index in self.overridden:
            return None
        return index

    def override(self, index: int) -> None:
        """Mark the primed copy of pair ``index`` dead."""
        self._check(index)
        if index in self.overridden:
            raise ValueError(f"pair {index} already overridden")
        self.overridden.add(index)
        self.relocated.pop(index, None)

    def relocate(self, index: int, block: int, page: int) -> None:
        """Record a GC move of the primed blob for pair ``index``."""
        self._check(index)
        if index in self.overridden:
            raise ValueError(f"cannot relocate overridden pair {index}")
        self.relocated[index] = (block, page)

    def indices_in_fill_page(self, page_seq: int) -> range:
        """Pair indices originally packed into fill page ``page_seq``."""
        if not 0 <= page_seq < len(self.page_blocks):
            raise ValueError(f"fill page {page_seq} out of range")
        start = page_seq * self.blobs_per_page
        return range(start, min(start + self.blobs_per_page, self.count))

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise ValueError(f"pair index {index} outside [0, {self.count})")
