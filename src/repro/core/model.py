"""Analytical model of KV-SSD performance.

The paper's conclusion lists "an analytical model of KV-SSD performance
that can help researchers generate more representative workloads" as
future work; this module delivers it, built from the same mechanisms the
simulator implements.  Closed forms are provided for:

* store / retrieve latency at QD1 as a function of pair size and the
  number of pairs already stored (index occupancy);
* saturated throughput as the minimum over the pipeline's resources
  (controller cores, index managers, flash program bandwidth, and the
  serialized index-merge engine);
* space amplification and the device's maximum KVP count.

The test suite validates each prediction against the discrete-event
simulation; the ablation bench uses the model to extrapolate to the
paper's full 3.84 TB scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.flash.geometry import Geometry
from repro.flash.timing import FlashTiming
from repro.ftl.core import DeviceStats
from repro.kvftl.blob import layout_blob, usable_page_bytes
from repro.kvftl.config import KVSSDConfig
from repro.nvme.command import commands_for_key
from repro.nvme.driver import DriverCosts
from repro.units import KIB, MIB, ceil_div


def device_stats_summary(stats: DeviceStats) -> Dict[str, float]:
    """Reduce a :class:`~repro.ftl.core.DeviceStats` delta to headline numbers.

    Works for any personality, since both report through the same struct:

    * ``waf`` — flash writes over host writes (1.0 when no host writes);
    * ``gc_moved_mib`` — valid data relocated by GC;
    * ``foreground_gc_fraction`` — GC runs triggered with a host writer
      stalled (0.0 when GC never ran);
    * ``stall_ms`` — host time lost to write-buffer admission plus
      free-block allowance waits;
    * ``flash_busy_ms`` — summed die/channel service time across all
      flash ops (matches the trace subsystem's flash-span total).
    """
    gc_runs = stats.gc_runs
    return {
        "waf": stats.write_amplification(),
        "gc_moved_mib": stats.gc_relocated_bytes / MIB,
        "foreground_gc_fraction": (
            stats.foreground_gc_runs / gc_runs if gc_runs else 0.0
        ),
        "stall_ms": stats.stall_time_us() / 1000.0,
        "flash_busy_ms": stats.flash_busy_us / 1000.0,
    }


@dataclass(frozen=True)
class LatencyBreakdown:
    """One operation's latency decomposed by mechanism (microseconds)."""

    host_us: float
    controller_us: float
    index_us: float
    index_flash_us: float
    data_flash_us: float
    buffer_us: float

    @property
    def total_us(self) -> float:
        return (
            self.host_us
            + self.controller_us
            + self.index_us
            + self.index_flash_us
            + self.data_flash_us
            + self.buffer_us
        )


class KVSSDModel:
    """Closed-form performance model mirroring the KV-FTL mechanisms."""

    def __init__(
        self,
        geometry: Geometry,
        config: Optional[KVSSDConfig] = None,
        timing: Optional[FlashTiming] = None,
        driver: Optional[DriverCosts] = None,
    ) -> None:
        self.geometry = geometry
        self.config = config or KVSSDConfig()
        self.timing = timing or FlashTiming()
        self.driver = driver if driver is not None else DriverCosts()
        self.usable_page = usable_page_bytes(geometry.page_bytes, self.config)
        region = max(
            1, int(geometry.total_blocks * self.config.index_region_fraction)
        )
        data_blocks = geometry.total_blocks - region
        self.user_capacity_bytes = int(
            data_blocks * geometry.block_bytes * (1.0 - self.config.overprovision)
        )
        dram = self.config.index_dram_bytes
        if dram is None:
            dram = max(256 * KIB, int(geometry.capacity_bytes * 0.00104))
        self.index_dram_bytes = dram

    # ------------------------------------------------------------------
    # index occupancy
    # ------------------------------------------------------------------

    def index_bytes(self, kvps: int) -> int:
        """Persisted index size for ``kvps`` stored pairs."""
        return int(
            kvps
            * self.config.index_entry_bytes
            * self.config.index_structure_overhead
        )

    def index_pages(self, kvps: int) -> int:
        """Flash pages the index occupies."""
        return max(
            1, ceil_div(max(1, self.index_bytes(kvps)), self.geometry.page_bytes)
        )

    def resident_fraction(self, kvps: int) -> float:
        """Fraction of the index cacheable in device DRAM."""
        size = self.index_bytes(kvps)
        if size <= self.index_dram_bytes:
            return 1.0
        return self.index_dram_bytes / size

    def lookup_flash_reads(self, kvps: int) -> float:
        """Expected index page reads per lookup."""
        miss = 1.0 - self.resident_fraction(kvps)
        levels = 1 if self.index_pages(kvps) <= 512 else 2
        return miss * levels

    def merge_flash_ops_per_insert(self, kvps: int) -> float:
        """Expected (read + write) index page ops per insert.

        A merge batch of B entries over P pages touches
        ``P * (1 - (1 - 1/P)**B)`` distinct pages; the non-resident
        fraction is read and rewritten through the serialized merge
        engine.
        """
        batch = self.config.merge_batch
        pages = self.index_pages(kvps)
        touched = pages * (1.0 - (1.0 - 1.0 / pages) ** batch)
        non_resident = touched * (1.0 - self.resident_fraction(kvps))
        return 2.0 * non_resident / batch

    # ------------------------------------------------------------------
    # flash primitives
    # ------------------------------------------------------------------

    def _page_read_us(self, nbytes: int) -> float:
        return self.timing.read_us + self.timing.transfer_us(
            min(nbytes, self.geometry.page_bytes)
        )

    def _page_write_us(self) -> float:
        return self.timing.program_us + self.timing.transfer_us(
            self.geometry.page_bytes
        )

    # ------------------------------------------------------------------
    # latency (QD1)
    # ------------------------------------------------------------------

    def store_breakdown(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> LatencyBreakdown:
        """QD1 store latency decomposition at ``kvps`` prior occupancy."""
        layout = layout_blob(
            key_bytes, value_bytes, self.geometry.page_bytes, self.config
        )
        ncommands = commands_for_key(key_bytes)
        host = ncommands * (self.driver.cpu_async_us + self.driver.submit_us)
        controller = (
            self.config.host_interface_us * ncommands
            + self.config.store_controller_us
            + self.config.split_fragment_us * (layout.data_fragments - 1)
        )
        index = self.config.store_index_us
        # The serialized merge engine throttles sustained inserts; at QD1
        # its amortized per-insert cost lands in the latency directly.
        merge_ops = self.merge_flash_ops_per_insert(kvps)
        index_flash = merge_ops / 2.0 * (
            self._page_read_us(self.geometry.page_bytes) + self._page_write_us()
        )
        buffer_copy = (
            self.config.buffer_copy_us_per_kib * layout.footprint_bytes / KIB
        )
        return LatencyBreakdown(
            host_us=host,
            controller_us=controller,
            index_us=index,
            index_flash_us=index_flash,
            data_flash_us=0.0,  # admission completes before programming
            buffer_us=buffer_copy,
        )

    def retrieve_breakdown(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> LatencyBreakdown:
        """QD1 retrieve latency decomposition."""
        layout = layout_blob(
            key_bytes, value_bytes, self.geometry.page_bytes, self.config
        )
        ncommands = commands_for_key(key_bytes)
        host = ncommands * (self.driver.cpu_async_us + self.driver.submit_us)
        controller = (
            self.config.host_interface_us * ncommands
            + self.config.retrieve_controller_us
        )
        index_flash = self.lookup_flash_reads(kvps) * self._page_read_us(
            self.geometry.page_bytes
        )
        # Fragments are read in parallel across dies: the slowest fragment
        # (the largest transfer) bounds the data phase.
        data = max(self._page_read_us(frag) for frag in layout.fragments)
        return LatencyBreakdown(
            host_us=host,
            controller_us=controller,
            index_us=self.config.retrieve_index_us,
            index_flash_us=index_flash,
            data_flash_us=data,
            buffer_us=0.0,
        )

    def store_latency_us(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> float:
        """QD1 store latency."""
        return self.store_breakdown(key_bytes, value_bytes, kvps).total_us

    def retrieve_latency_us(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> float:
        """QD1 retrieve latency."""
        return self.retrieve_breakdown(key_bytes, value_bytes, kvps).total_us

    # ------------------------------------------------------------------
    # throughput (saturated)
    # ------------------------------------------------------------------

    def store_throughput_kops(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> float:
        """Saturated store throughput (thousand ops/s): min over stages."""
        layout = layout_blob(
            key_bytes, value_bytes, self.geometry.page_bytes, self.config
        )
        ncommands = commands_for_key(key_bytes)
        controller_us = (
            self.config.host_interface_us * ncommands
            + self.config.store_controller_us
            + self.config.split_fragment_us * (layout.data_fragments - 1)
            + self.config.buffer_copy_us_per_kib * layout.footprint_bytes / KIB
        )
        stages = [
            self.config.controller_cores / controller_us,
            self.config.index_managers / self.config.store_index_us,
            1.0 / (ncommands * self.driver.submit_us),
        ]
        # Flash: pages per second across all dies, times blobs per page.
        pages_per_us = self.geometry.total_dies / self._page_write_us()
        if layout.is_split:
            stages.append(pages_per_us / len(layout.fragments))
        else:
            per_page = self.usable_page // layout.footprint_bytes
            stages.append(pages_per_us * per_page)
        merge_per_insert_us = self.merge_flash_ops_per_insert(kvps) / 2.0 * (
            self._page_read_us(self.geometry.page_bytes) + self._page_write_us()
        )
        if merge_per_insert_us > 0:
            stages.append(1.0 / merge_per_insert_us)
        return min(stages) * 1000.0

    def retrieve_throughput_kops(
        self, key_bytes: int, value_bytes: int, kvps: int = 0
    ) -> float:
        """Saturated retrieve throughput (thousand ops/s)."""
        layout = layout_blob(
            key_bytes, value_bytes, self.geometry.page_bytes, self.config
        )
        ncommands = commands_for_key(key_bytes)
        controller_us = (
            self.config.host_interface_us * ncommands
            + self.config.retrieve_controller_us
        )
        die_us = sum(
            self._page_read_us(frag) for frag in layout.fragments
        ) + self.lookup_flash_reads(kvps) * self._page_read_us(
            self.geometry.page_bytes
        )
        stages = [
            self.config.controller_cores / controller_us,
            self.config.index_managers / self.config.retrieve_index_us,
            1.0 / (ncommands * self.driver.submit_us),
            self.geometry.total_dies / die_us,
        ]
        return min(stages) * 1000.0

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def space_amplification(self, key_bytes: int, value_bytes: int) -> float:
        """Device bytes over application bytes for one pair size."""
        layout = layout_blob(
            key_bytes, value_bytes, self.geometry.page_bytes, self.config
        )
        return layout.footprint_bytes / (key_bytes + value_bytes)

    def _index_slot_bytes(self) -> float:
        return (
            self.config.index_entry_bytes
            * self.config.index_structure_overhead
            / self.config.index_load_factor
        )

    def max_kvps(self) -> int:
        """Maximum storable pairs on this geometry (index-slot bound)."""
        region = max(
            1,
            int(self.geometry.total_blocks * self.config.index_region_fraction),
        )
        region_bytes = region * self.geometry.block_bytes
        return int(region_bytes / self._index_slot_bytes())

    def max_kvps_at_capacity(self, capacity_bytes: float) -> float:
        """Extrapolate the KVP limit to an arbitrary device size.

        With the paper's 3.84 TB this reproduces its ~3.1 billion pair
        observation: 5% of raw capacity at ~62 B per index slot.
        """
        region_bytes = capacity_bytes * self.config.index_region_fraction
        return region_bytes / self._index_slot_bytes()
