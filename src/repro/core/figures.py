"""Per-figure experiment implementations.

One function per figure of the paper's evaluation (Figs. 2-8).  Each
builds fresh rigs, primes state exactly as the paper describes (scaled),
runs the measured phase through the KVbench-style runner, and returns a
structured result the benchmarks print and EXPERIMENTS.md records.

Run sizes are scaled from the paper's (10 M+ operations on a 3.84 TB
drive) to laptop-feasible counts at *matched relative state* — see
DESIGN.md section 6 for the scaling discipline.

Every figure is internally a *sweep of independent cells* (one fresh
rig per cell), expressed as module-level ``_figN_*_cell`` functions and
a :class:`~repro.exec.spec.SweepSpec`.  Pass ``runner=`` (a
:class:`~repro.exec.runner.SweepRunner`) to fan cells out over a
process pool and/or reuse cached cell results; without a runner the
cells execute inline, serially, exactly as the original loops did.
Results are always assembled in spec order, so the figure output is
byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import (
    build_block_rig,
    build_hash_rig,
    build_kv_rig,
    build_lsm_rig,
    lab_geometry,
)
from repro.core.model import device_stats_summary
from repro.errors import ConfigurationError
from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.kvbench.generators import (
    ChurnSpec,
    ExpirySpec,
    ScanMixSpec,
    generate_churn,
    generate_expiry,
    generate_scan_mix,
)
from repro.kvbench.runner import execute_workload
from repro.kvbench.traces import TraceWorkload, merge_traces
from repro.kvbench.workload import (
    Pattern,
    WorkloadSpec,
    generate_operations,
)
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec
from repro.kvftl.blob import space_amplification
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.units import KIB, MIB

#: Key size used throughout the paper's macro experiments.
PAPER_KEY_BYTES = 16
#: The scheme producing 16-byte keys ("key-" + 12 digits).
PAPER_SCHEME = KeyScheme(prefix=b"key-", digits=12)


def _drain(rig) -> None:
    """Settle a rig's background work (flushes, packing) between phases."""
    target = rig.device if not hasattr(rig, "store") else rig.store
    process = rig.env.process(target.drain())
    rig.env.run_until_complete(process, limit=rig.env.now + 600e6)


# ---------------------------------------------------------------------------
# Figure 2 — end-to-end latency: KV-SSD vs RocksDB vs Aerospike
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    """Mean latency (us) per system, pattern, and phase, plus CPU."""

    n_ops: int
    value_bytes: int
    queue_depth: int
    #: latency_us[system][pattern][phase] with phases insert/update/read.
    latency_us: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: host CPU microseconds per operation, per system.
    cpu_us_per_op: Dict[str, float] = field(default_factory=dict)

    def ratio(self, system_a: str, system_b: str, pattern: str, phase: str) -> float:
        """latency(system_a) / latency(system_b)."""
        return (
            self.latency_us[system_a][pattern][phase]
            / self.latency_us[system_b][pattern][phase]
        )


_FIG2_BUILDERS = {
    "kvssd": lambda geometry: build_kv_rig(geometry),
    "rocksdb": lambda geometry: build_lsm_rig(geometry),
    "aerospike": lambda geometry: build_hash_rig(geometry),
}

_FIG2_PATTERNS = {
    "seq": Pattern.SEQUENTIAL,
    "rand": Pattern.UNIFORM,
    "zipf": Pattern.ZIPFIAN,
}


def _fig2_cell(
    system: str,
    pattern_name: str,
    n_ops: int,
    value_bytes: int,
    queue_depth: int,
    blocks_per_plane: int,
) -> Dict[str, object]:
    """One (system, pattern) cell: insert, update, read on a fresh rig."""
    pattern = _FIG2_PATTERNS[pattern_name]
    rig = _FIG2_BUILDERS[system](lab_geometry(blocks_per_plane))
    phases: Dict[str, float] = {}
    cpu_before = rig.cpu.total_busy_us
    ops_counted = 0
    for phase, op_kind in (
        ("insert", "insert"),
        ("update", "update"),
        ("read", "read"),
    ):
        spec = WorkloadSpec(
            n_ops=n_ops,
            op=op_kind,
            pattern=pattern,
            population=n_ops,
            key_scheme=PAPER_SCHEME,
            value_bytes=value_bytes,
            seed=11,
        )
        run = execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(spec),
            queue_depth=queue_depth,
            name=f"fig2.{system}.{pattern_name}.{phase}",
        )
        phases[phase] = run.latency.mean()
        ops_counted += run.completed_ops
        _drain(rig)
    cpu_us_per_op = (rig.cpu.total_busy_us - cpu_before) / max(1, ops_counted)
    return {"phases": phases, "cpu_us_per_op": cpu_us_per_op}


def fig2_end_to_end(
    n_ops: int = 4000,
    value_bytes: int = 4 * KIB,
    queue_depth: int = 8,
    systems: Sequence[str] = ("kvssd", "rocksdb", "aerospike"),
    patterns: Sequence[str] = ("seq", "rand", "zipf"),
    blocks_per_plane: int = 24,
    runner: Optional[SweepRunner] = None,
) -> Fig2Result:
    """Fig. 2: insert/update/read latency across systems and patterns.

    Per (system, pattern): a fresh rig inserts ``n_ops`` pairs of 16 B
    keys and ``value_bytes`` values in pattern order, then updates, then
    reads — all asynchronously at ``queue_depth``, as in the paper.
    """
    for system in systems:
        if system not in _FIG2_BUILDERS:
            raise ConfigurationError(f"unknown fig2 system {system!r}")
    points = tuple(
        SweepPoint(
            label=f"{system}/{pattern_name}",
            fn=_fig2_cell,
            kwargs=dict(
                system=system,
                pattern_name=pattern_name,
                n_ops=n_ops,
                value_bytes=value_bytes,
                queue_depth=queue_depth,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for system in systems
        for pattern_name in patterns
    )
    cells = execute_spec(SweepSpec("fig2", points), runner)
    result = Fig2Result(n_ops, value_bytes, queue_depth)
    index = 0
    for system in systems:
        result.latency_us[system] = {}
        cpu_samples: List[float] = []
        for pattern_name in patterns:
            cell = cells[index]
            index += 1
            result.latency_us[system][pattern_name] = cell["phases"]
            cpu_samples.append(cell["cpu_us_per_op"])
        result.cpu_us_per_op[system] = sum(cpu_samples) / len(cpu_samples)
    return result


# ---------------------------------------------------------------------------
# Figure 3 — index occupancy
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Mean latencies (us) at low and high occupancy, per device."""

    low_kvps: int
    high_kvps: int
    value_bytes: int
    #: latency_us[device][occupancy][op] for device kv/block,
    #: occupancy low/high, op read/write.
    latency_us: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def degradation(self, device: str, op: str) -> float:
        """high-occupancy latency over low-occupancy latency."""
        return (
            self.latency_us[device]["high"][op]
            / self.latency_us[device]["low"][op]
        )


def _fig3_measure_kv(
    kvps: int, value_bytes: int, measured_ops: int, blocks_per_plane: int
) -> Dict[str, float]:
    rig = build_kv_rig(lab_geometry(blocks_per_plane))
    scheme = KeyScheme(prefix=b"fill", digits=12)
    rig.device.fast_fill(kvps, value_bytes, scheme)
    out: Dict[str, float] = {}
    for op_name, op_kind in (("read", "read"), ("write", "update")):
        spec = WorkloadSpec(
            n_ops=measured_ops,
            op=op_kind,
            pattern=Pattern.UNIFORM,
            population=kvps,
            key_scheme=scheme,
            value_bytes=value_bytes,
            seed=23,
        )
        run = execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(spec),
            queue_depth=1,
            name=f"fig3.kv.{op_name}",
        )
        out[op_name] = run.latency.mean()
        _drain(rig)
    return out


def _fig3_measure_block(
    kvps: int, value_bytes: int, measured_ops: int, blocks_per_plane: int
) -> Dict[str, float]:
    rig = build_block_rig(lab_geometry(blocks_per_plane))
    fill_bytes = kvps * value_bytes
    units = max(1, fill_bytes // rig.device.map_unit)
    rig.device.prime_sequential_fill(units)
    adapter = rig.adapter(value_bytes)
    population = max(1, fill_bytes // adapter.io_bytes)
    out: Dict[str, float] = {}
    for op_name, op_kind in (("read", "read"), ("write", "update")):
        spec = WorkloadSpec(
            n_ops=measured_ops,
            op=op_kind,
            pattern=Pattern.UNIFORM,
            population=population,
            value_bytes=value_bytes,
            seed=23,
        )
        run = execute_workload(
            rig.env,
            adapter,
            generate_operations(spec),
            queue_depth=1,
            name=f"fig3.block.{op_name}",
        )
        out[op_name] = run.latency.mean()
        _drain(rig)
    return out


def _fig3_occupancies(
    value_bytes: int,
    low_fraction: float,
    high_fraction: float,
    blocks_per_plane: int,
) -> Dict[str, int]:
    """Low/high pair counts as fractions of the device's KVP limit."""
    from repro.kvftl.blob import blobs_per_page

    probe = build_kv_rig(lab_geometry(blocks_per_plane))
    device = probe.device
    per_page = blobs_per_page(
        KeyScheme(prefix=b"fill", digits=12).key_bytes,
        value_bytes,
        device.array.geometry.page_bytes,
        device.config,
    )
    physical_max = (
        device.free_block_count() * device.array.geometry.pages_per_block
    ) * per_page
    max_kvps = min(device.max_kvps, int(physical_max * 0.9))
    return {
        "low": max(1000, int(max_kvps * low_fraction)),
        "high": int(max_kvps * high_fraction),
    }


def fig3_index_occupancy(
    value_bytes: int = 512,
    low_fraction: float = 0.0005,
    high_fraction: float = 0.95,
    measured_ops: int = 1200,
    blocks_per_plane: int = 32,
    runner: Optional[SweepRunner] = None,
) -> Fig3Result:
    """Fig. 3: latency at low vs high index occupancy, KV vs block.

    The paper fills 1.53 M (low) and 3 B (high) 512 B pairs on a 3.84 TB
    drive; the defaults match those *fractions of the device's KVP limit*
    on the scaled geometry.
    """
    kvps = _fig3_occupancies(
        value_bytes, low_fraction, high_fraction, blocks_per_plane
    )
    cell_fns = {"kv": _fig3_measure_kv, "block": _fig3_measure_block}
    points = tuple(
        SweepPoint(
            label=f"{device}/{occupancy}",
            fn=cell_fns[device],
            kwargs=dict(
                kvps=kvps[occupancy],
                value_bytes=value_bytes,
                measured_ops=measured_ops,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for device in ("kv", "block")
        for occupancy in ("low", "high")
    )
    cells = execute_spec(SweepSpec("fig3", points), runner)
    result = Fig3Result(
        low_kvps=kvps["low"], high_kvps=kvps["high"], value_bytes=value_bytes
    )
    result.latency_us["kv"] = {"low": cells[0], "high": cells[1]}
    result.latency_us["block"] = {"low": cells[2], "high": cells[3]}
    return result


# ---------------------------------------------------------------------------
# Figure 4 — value size x concurrency latency ratios
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """KV/block mean-latency ratios per value size and queue depth."""

    value_sizes: List[int]
    queue_depths: List[int]
    #: ratio[op][qd][value_size] with op read/write; <1 favors KV-SSD.
    ratio: Dict[str, Dict[int, Dict[int, float]]] = field(default_factory=dict)
    #: raw latencies for the record: latency_us[device][op][qd][size].
    latency_us: Dict[str, Dict[str, Dict[int, Dict[int, float]]]] = field(
        default_factory=dict
    )


def fig4_value_size_concurrency(
    value_sizes: Sequence[int] = (512, 2 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB),
    queue_depths: Sequence[int] = (1, 64),
    n_ops: int = 1200,
    blocks_per_plane: int = 24,
    runner: Optional[SweepRunner] = None,
) -> Fig4Result:
    """Fig. 4: direct-access latency ratio vs value size and queue depth.

    Same operation count per cell (the paper uses 1.53 M per value size);
    writes go to fresh keys, reads hit the just-written population.
    """
    cell_fns = {"kv": _fig4_kv_cell, "block": _fig4_block_cell}
    points = tuple(
        SweepPoint(
            label=f"{device}/qd{queue_depth}/{size}",
            fn=cell_fns[device],
            kwargs=dict(
                size=size,
                queue_depth=queue_depth,
                n_ops=n_ops,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for queue_depth in queue_depths
        for size in value_sizes
        for device in ("kv", "block")
    )
    cells = execute_spec(SweepSpec("fig4", points), runner)
    result = Fig4Result(list(value_sizes), list(queue_depths))
    for op in ("read", "write"):
        result.ratio[op] = {qd: {} for qd in queue_depths}
    for device in ("kv", "block"):
        result.latency_us[device] = {
            op: {qd: {} for qd in queue_depths} for op in ("read", "write")
        }
    index = 0
    for queue_depth in queue_depths:
        for size in value_sizes:
            kv, block = cells[index], cells[index + 1]
            index += 2
            for op in ("read", "write"):
                result.latency_us["kv"][op][queue_depth][size] = kv[op]
                result.latency_us["block"][op][queue_depth][size] = block[op]
                result.ratio[op][queue_depth][size] = kv[op] / block[op]
    return result


def _fig4_kv_cell(
    size: int, queue_depth: int, n_ops: int, blocks_per_plane: int
) -> Dict[str, float]:
    """One KV cell: prefill a population, then random updates and reads.

    Small blobs prefill untimed (fast_fill); split blobs cannot, so they
    prefill through timed stores before the measured phase — matching the
    paper's fill-then-measure methodology either way.
    """
    # Fig. 4 is a *low-occupancy* size sweep: give the index ample DRAM so
    # occupancy effects (Fig. 3's subject) stay out of this experiment.
    rig = build_kv_rig(
        lab_geometry(blocks_per_plane),
        config=KVSSDConfig(index_dram_bytes=64 * MIB),
    )
    scheme = KeyScheme(prefix=b"fill", digits=12)
    layout = rig.device.layout_for(scheme.key_bytes, size)
    if layout.is_split:
        # Split blobs cannot fast_fill; prefill through timed stores.
        population = n_ops
        prefill = WorkloadSpec(
            n_ops=population,
            op="insert",
            pattern=Pattern.SEQUENTIAL,
            key_scheme=scheme,
            value_bytes=size,
            seed=29,
        )
        execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(prefill),
            queue_depth=16,
            name=f"fig4.kv.fill.{size}",
        )
        _drain(rig)
    else:
        # Size the fill by *page* consumption (large unsplit blobs can
        # waste a page fraction each), keeping plenty of free blocks.
        per_page = rig.device.usable_page // layout.footprint_bytes
        geometry = rig.device.array.geometry
        data_blocks = geometry.total_blocks - len(rig.device._index_region)
        pages_available = data_blocks * geometry.pages_per_block
        population = max(
            n_ops,
            min(100_000, int(pages_available * 0.55) * per_page),
        )
        rig.device.fast_fill(population, size, scheme)
    out: Dict[str, float] = {}
    for op_name, op_kind, seed in (("write", "update", 31), ("read", "read", 37)):
        spec = WorkloadSpec(
            n_ops=n_ops,
            op=op_kind,
            pattern=Pattern.UNIFORM,
            population=population,
            key_scheme=scheme,
            value_bytes=size,
            seed=seed,
        )
        run = execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(spec),
            queue_depth=queue_depth,
            name=f"fig4.kv.{op_name}.{size}.qd{queue_depth}",
        )
        out[op_name] = run.latency.mean()
        _drain(rig)
    return out


def _fig4_block_cell(
    size: int, queue_depth: int, n_ops: int, blocks_per_plane: int
) -> Dict[str, float]:
    """One block cell: prime the address range, then random I/O over it."""
    rig = build_block_rig(lab_geometry(blocks_per_plane))
    adapter = rig.adapter(size)
    # Span well past the mapping segment cache so random really is random.
    population = max(
        n_ops,
        min(
            300_000,
            int(rig.device.user_capacity_bytes * 0.7 // adapter.io_bytes),
        ),
    )
    fill_units = max(1, population * adapter.io_bytes // rig.device.map_unit)
    rig.device.prime_sequential_fill(min(fill_units, rig.device.n_units))
    out: Dict[str, float] = {}
    for op_name, op_kind, seed in (("write", "update", 31), ("read", "read", 37)):
        spec = WorkloadSpec(
            n_ops=n_ops,
            op=op_kind,
            pattern=Pattern.UNIFORM,
            population=population,
            value_bytes=size,
            seed=seed,
        )
        run = execute_workload(
            rig.env,
            adapter,
            generate_operations(spec),
            queue_depth=queue_depth,
            name=f"fig4.blk.{op_name}.{size}.qd{queue_depth}",
        )
        out[op_name] = run.latency.mean()
        _drain(rig)
    return out


# ---------------------------------------------------------------------------
# Figure 5 — write bandwidth vs value size (packing zig-zag)
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    """Write bandwidth (MiB/s) per value size, per device."""

    value_sizes: List[int]
    kv_mib_s: Dict[int, float] = field(default_factory=dict)
    block_mib_s: Dict[int, float] = field(default_factory=dict)
    #: Fragments per blob on the KV side (the model's dip explanation).
    kv_fragments: Dict[int, int] = field(default_factory=dict)


def fig5_packing_bandwidth(
    value_sizes: Sequence[int] = (
        4 * KIB,
        8 * KIB,
        16 * KIB,
        20 * KIB,
        24 * KIB,
        25 * KIB,
        28 * KIB,
        32 * KIB,
        40 * KIB,
        48 * KIB,
        49 * KIB,
        56 * KIB,
        64 * KIB,
    ),
    n_ops: int = 800,
    queue_depth: int = 32,
    blocks_per_plane: int = 24,
    runner: Optional[SweepRunner] = None,
) -> Fig5Result:
    """Fig. 5: write bandwidth sweep across the page-boundary sizes.

    KV-SSD dips just past each multiple of the usable page area (~24.5
    KiB: values of 25 KiB, 49 KiB, ...) where blobs start splitting; the
    block device stays smooth.
    """
    result = Fig5Result(list(value_sizes))
    cell_fns = {"kv": _fig5_kv_cell, "block": _fig5_block_cell}
    points = tuple(
        SweepPoint(
            label=f"{device}/{size}",
            fn=cell_fns[device],
            kwargs=dict(
                size=size,
                n_ops=n_ops,
                queue_depth=queue_depth,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for size in value_sizes
        for device in ("kv", "block")
    )
    cells = execute_spec(SweepSpec("fig5", points), runner)
    index = 0
    for size in value_sizes:
        kv, block = cells[index], cells[index + 1]
        index += 2
        result.kv_fragments[size] = kv["fragments"]
        result.kv_mib_s[size] = kv["mib_s"]
        result.block_mib_s[size] = block
    return result


def _fig5_workload(size: int, n_ops: int) -> WorkloadSpec:
    return WorkloadSpec(
        n_ops=n_ops,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=PAPER_SCHEME,
        value_bytes=size,
        seed=41,
    )


def _fig5_kv_cell(
    size: int, n_ops: int, queue_depth: int, blocks_per_plane: int
) -> Dict[str, object]:
    """One KV bandwidth cell plus the blob fragment count at ``size``."""
    kv_rig = build_kv_rig(lab_geometry(blocks_per_plane))
    fragments = len(kv_rig.device.layout_for(PAPER_KEY_BYTES, size).fragments)
    run = execute_workload(
        kv_rig.env,
        kv_rig.adapter,
        generate_operations(_fig5_workload(size, n_ops)),
        queue_depth=queue_depth,
        name=f"fig5.kv.{size}",
    )
    return {"mib_s": run.bandwidth.overall_mib_per_sec(), "fragments": fragments}


def _fig5_block_cell(
    size: int, n_ops: int, queue_depth: int, blocks_per_plane: int
) -> float:
    """One block-device bandwidth cell at ``size``."""
    block_rig = build_block_rig(lab_geometry(blocks_per_plane))
    run = execute_workload(
        block_rig.env,
        block_rig.adapter(size),
        generate_operations(_fig5_workload(size, n_ops)),
        queue_depth=queue_depth,
        name=f"fig5.blk.{size}",
    )
    return run.bandwidth.overall_mib_per_sec()


# ---------------------------------------------------------------------------
# Figure 6 — foreground GC under random updates at 80% fill
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    """Bandwidth time series during the update phase, per scenario."""

    fill_fraction: float
    value_bytes: int
    n_updates: int
    #: series[scenario] -> MiB/s per window; scenarios kv-uniform,
    #: kv-window, rocksdb-uniform.
    series: Dict[str, List[float]] = field(default_factory=dict)
    foreground_gc_runs: Dict[str, int] = field(default_factory=dict)
    #: stats_summary[scenario] -> device_stats_summary() of the measured
    #: phase (waf, gc_moved_mib, foreground_gc_fraction, stall_ms, ...).
    stats_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: latency_summary[scenario] -> LatencySummary.as_dict() of the update
    #: stream (mean/p50/p99/p999), for the tail-collapse view of Fig. 6.
    latency_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def trough_ratio(self, scenario: str) -> float:
        """Worst window over the first window (1.0 = no collapse)."""
        windows = [w for w in self.series[scenario] if w > 0.0] or [0.0]
        head = windows[0] or 1.0
        return min(windows) / head


def _fig6_fill_kvps(
    fill_fraction: float, value_bytes: int, blocks_per_plane: int
) -> int:
    """Pair count that fills ``fill_fraction`` of the page capacity.

    "80% full" is meant physically: 80% of the device's page capacity
    (blob packing wastes a page fraction, so byte-based sizing would
    overshoot), with allocation-stream/GC margin excluded.
    """
    from repro.kvftl.blob import blobs_per_page

    geometry = lab_geometry(blocks_per_plane)
    probe = build_kv_rig(geometry)
    per_page = blobs_per_page(
        PAPER_SCHEME.key_bytes,
        value_bytes,
        geometry.page_bytes,
        probe.device.config,
    )
    margin_blocks = probe.device.config.stream_width + 16
    fill_blocks = probe.device.free_block_count() - margin_blocks
    return int(
        fill_blocks * geometry.pages_per_block * per_page * fill_fraction
    )


def _fig6_scenario_cell(
    scenario: str,
    fill_kvps: int,
    fill_fraction: float,
    value_bytes: int,
    n_updates: int,
    queue_depth: int,
    window_us: float,
    blocks_per_plane: int,
) -> Dict[str, object]:
    """One Fig. 6 scenario: prime the fill, then sustained updates."""
    geometry = lab_geometry(blocks_per_plane)
    if scenario.startswith("kv-"):
        rig = build_kv_rig(geometry)
        scheme = KeyScheme(prefix=b"fill", digits=12)
        rig.device.fast_fill(fill_kvps, value_bytes, scheme)
        pattern = (
            Pattern.UNIFORM
            if scenario == "kv-uniform"
            else Pattern.SLIDING_WINDOW
        )
        spec = WorkloadSpec(
            n_ops=n_updates,
            op="update",
            pattern=pattern,
            population=fill_kvps,
            key_scheme=scheme,
            value_bytes=value_bytes,
            seed=47,
        )
        run = execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(spec),
            queue_depth=queue_depth,
            bandwidth_window_us=window_us,
            name=f"fig6.{scenario}",
            stop_after_us=45e6,
        )
    else:
        rig = build_lsm_rig(geometry)
        # The scenario's purpose is the *device-level* contrast (no
        # foreground GC under compaction+TRIM), so the LSM population
        # is sized to the update count rather than to raw capacity —
        # compacting a capacity-sized tree would dominate runtime
        # without changing the device-side observation.
        fs_budget = int(
            rig.device.user_capacity_bytes * fill_fraction * 0.45
        )
        lsm_kvps = min(
            n_updates,
            fs_budget // (PAPER_SCHEME.key_bytes + value_bytes),
        )
        entries = {
            PAPER_SCHEME.key_for(i): value_bytes for i in range(lsm_kvps)
        }
        rig.store.prime_fill(entries, level=3)
        spec = WorkloadSpec(
            n_ops=n_updates,
            op="update",
            pattern=Pattern.UNIFORM,
            population=lsm_kvps,
            key_scheme=PAPER_SCHEME,
            value_bytes=value_bytes,
            seed=47,
        )
        run = execute_workload(
            rig.env,
            rig.adapter,
            generate_operations(spec),
            queue_depth=queue_depth,
            bandwidth_window_us=window_us,
            name=f"fig6.{scenario}",
            stop_after_us=45e6,
        )
    # The runner captured the DeviceStats delta for the measured phase;
    # both personalities report through the same struct, so the two
    # scenario branches need no per-device counter reads.
    return {
        "foreground_gc_runs": run.device_stats.foreground_gc_runs,
        "stats_summary": device_stats_summary(run.device_stats),
        "latency_summary": run.latency.summary().as_dict(),
        "series": run.bandwidth.series_mib_per_sec(),
    }


def fig6_foreground_gc(
    fill_fraction: float = 0.8,
    value_bytes: int = 4 * KIB,
    n_updates: Optional[int] = None,
    queue_depth: int = 16,
    window_us: float = 200_000.0,
    blocks_per_plane: int = 8,
    scenarios: Sequence[str] = ("kv-uniform", "kv-window", "rocksdb-uniform"),
    runner: Optional[SweepRunner] = None,
) -> Fig6Result:
    """Fig. 6: fill 80% of the device, then update everything randomly.

    The KV scenarios (uniform and sliding-window pseudo-random) collapse
    into foreground GC once over-provisioning is exhausted; RocksDB on
    block (whose compaction TRIMs whole files) does not.
    """
    known = ("kv-uniform", "kv-window", "rocksdb-uniform")
    for scenario in scenarios:
        if scenario not in known:
            raise ConfigurationError(f"unknown fig6 scenario {scenario!r}")
    fill_kvps = _fig6_fill_kvps(fill_fraction, value_bytes, blocks_per_plane)
    if n_updates is None:
        # Enough updates to exhaust free space and enter the foreground-GC
        # regime; the measured phase is additionally duration-bounded
        # (stop_after_us in the cell), because inside the collapse the
        # device serves updates arbitrarily slowly — exactly the paper's
        # point.
        n_updates = int(fill_kvps * 0.55)
    points = tuple(
        SweepPoint(
            label=scenario,
            fn=_fig6_scenario_cell,
            kwargs=dict(
                scenario=scenario,
                fill_kvps=fill_kvps,
                fill_fraction=fill_fraction,
                value_bytes=value_bytes,
                n_updates=n_updates,
                queue_depth=queue_depth,
                window_us=window_us,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for scenario in scenarios
    )
    cells = execute_spec(SweepSpec("fig6", points), runner)
    result = Fig6Result(fill_fraction, value_bytes, n_updates)
    for scenario, cell in zip(scenarios, cells):
        result.foreground_gc_runs[scenario] = cell["foreground_gc_runs"]
        result.stats_summary[scenario] = cell["stats_summary"]
        result.latency_summary[scenario] = cell["latency_summary"]
        result.series[scenario] = cell["series"]
    return result


# ---------------------------------------------------------------------------
# Figure 7 — space amplification vs value size
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    """Space amplification per value size and system."""

    value_sizes: List[int]
    #: sa[system][value_size]; systems kvssd / aerospike / rocksdb.
    sa: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: KV-SSD analytic curve (blob layout closed form) for cross-check.
    kv_analytic: Dict[int, float] = field(default_factory=dict)
    max_kvps_full_scale: int = 0


def _fig7_cell(
    size: int, kvps: int, blocks_per_plane: int
) -> Dict[str, float]:
    """One value size: measured KV-SSD, analytic KV, and Aerospike SA."""
    kv_config = KVSSDConfig()
    kv_rig = build_kv_rig(lab_geometry(blocks_per_plane))
    count = min(kvps, kv_rig.device.max_kvps - 1)
    kv_rig.device.fast_fill(count, size, KeyScheme(prefix=b"fill", digits=12))
    cell = {
        "kvssd": kv_rig.device.stats.space_amplification(),
        "analytic": space_amplification(
            PAPER_SCHEME.key_bytes,
            size,
            kv_rig.device.array.geometry.page_bytes,
            kv_config,
        ),
    }
    hash_rig = build_hash_rig(lab_geometry(blocks_per_plane))
    hash_rig.store.fast_fill(kvps, size, KeyScheme(prefix=b"fill", digits=12))
    cell["aerospike"] = hash_rig.store.space_amplification()
    return cell


def fig7_space_amplification(
    value_sizes: Sequence[int] = (50, 100, 200, 500, 1024, 2048, 4096),
    kvps: int = 20000,
    blocks_per_plane: int = 24,
    runner: Optional[SweepRunner] = None,
) -> Fig7Result:
    """Fig. 7: measured space amplification across value sizes.

    KV-SSD pays its 1 KiB minimum allocation (up to ~15-20x for 50 B
    values), Aerospike its 16 B rounding plus ~55 B of record overhead
    (<2x), RocksDB its leveled obsolescence (~1.11x steady state).
    """
    points = tuple(
        SweepPoint(
            label=f"sa/{size}",
            fn=_fig7_cell,
            kwargs=dict(size=size, kvps=kvps, blocks_per_plane=blocks_per_plane),
        )
        for size in value_sizes
    )
    cells = execute_spec(SweepSpec("fig7", points), runner)
    result = Fig7Result(list(value_sizes))
    result.sa = {"kvssd": {}, "aerospike": {}, "rocksdb": {}}
    for size, cell in zip(value_sizes, cells):
        result.sa["kvssd"][size] = cell["kvssd"]
        result.kv_analytic[size] = cell["analytic"]
        result.sa["aerospike"][size] = cell["aerospike"]
        result.sa["rocksdb"][size] = _rocksdb_steady_state_sa(size)
    full_scale = build_kv_rig(lab_geometry(blocks_per_plane))
    config = full_scale.device.config
    slot_bytes = (
        config.index_entry_bytes
        * config.index_structure_overhead
        / config.index_load_factor
    )
    result.max_kvps_full_scale = int(
        3.84e12 * config.index_region_fraction / slot_bytes
    )
    return result


def _rocksdb_steady_state_sa(value_bytes: int) -> float:
    """RocksDB's worst-case leveled space amplification.

    Dong et al. (CIDR'17, the paper's [12]): with a level size ratio of
    10, obsolete versions awaiting compaction are bounded by ~1/9 of the
    live data -> 1.111..., independent of value size.
    """
    del value_bytes  # level-structure property, not a size effect
    return 1.0 + 1.0 / 9.0


# ---------------------------------------------------------------------------
# Figure 8 — key size vs bandwidth (NVMe command cliff)
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """Store bandwidth per key size, sync and async."""

    key_sizes: List[int]
    value_bytes: int
    #: mib_s[mode][key_size] with mode 'sync' / 'async'.
    mib_s: Dict[str, Dict[int, float]] = field(default_factory=dict)
    commands: Dict[int, int] = field(default_factory=dict)

    def cliff_ratio(self, mode: str) -> float:
        """Bandwidth just past the inline limit over bandwidth at it."""
        at_limit = max(k for k in self.key_sizes if k <= 16)
        past = min(k for k in self.key_sizes if k > 16)
        return self.mib_s[mode][past] / self.mib_s[mode][at_limit]


def _fig8_cell(
    key_bytes: int,
    mode: str,
    value_bytes: int,
    n_ops: int,
    queue_depth: int,
    blocks_per_plane: int,
) -> float:
    """One (key size, sync/async) bandwidth cell."""
    # Build a scheme whose keys are exactly key_bytes long.
    digits = min(12, key_bytes - 1)
    scheme = KeyScheme(prefix=b"k" * (key_bytes - digits), digits=digits)
    rig = build_kv_rig(lab_geometry(blocks_per_plane), sync=mode == "sync")
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="insert",
        pattern=Pattern.SEQUENTIAL,
        key_scheme=scheme,
        value_bytes=value_bytes,
        seed=53,
    )
    run = execute_workload(
        rig.env,
        rig.adapter,
        generate_operations(spec),
        queue_depth=queue_depth,
        name=f"fig8.{mode}.k{key_bytes}",
    )
    return run.bandwidth.overall_mib_per_sec()


def fig8_key_size_bandwidth(
    key_sizes: Sequence[int] = (4, 8, 16, 24, 64, 128, 255),
    value_bytes: int = 1024,
    n_ops: int = 1500,
    async_queue_depth: int = 32,
    blocks_per_plane: int = 24,
    runner: Optional[SweepRunner] = None,
) -> Fig8Result:
    """Fig. 8: bandwidth vs key size; keys >16 B need a second command."""
    from repro.nvme.command import commands_for_key

    points = tuple(
        SweepPoint(
            label=f"{mode}/k{key_bytes}",
            fn=_fig8_cell,
            kwargs=dict(
                key_bytes=key_bytes,
                mode=mode,
                value_bytes=value_bytes,
                n_ops=n_ops,
                queue_depth=1 if mode == "sync" else async_queue_depth,
                blocks_per_plane=blocks_per_plane,
            ),
        )
        for key_bytes in key_sizes
        for mode in ("sync", "async")
    )
    cells = execute_spec(SweepSpec("fig8", points), runner)
    result = Fig8Result(list(key_sizes), value_bytes)
    result.mib_s = {"sync": {}, "async": {}}
    index = 0
    for key_bytes in key_sizes:
        result.commands[key_bytes] = commands_for_key(key_bytes)
        for mode in ("sync", "async"):
            result.mib_s[mode][key_bytes] = cells[index]
            index += 1
    return result


# ---------------------------------------------------------------------------
# Cluster figures — beyond the paper's single device (ISSUE 7)
#
# The paper characterizes one PM983; its conclusion points at production
# KV serving, which means many devices behind a routing layer.  These
# three figures measure that layer: throughput scaling with shard count,
# tail latency through a fault-driven rebalance, and the cost of the
# replication factor.  Each cluster run fans out one simulated device
# per sweep-engine worker (``repro.cluster``), so the caching/parallel
# semantics match the paper figures exactly — at shard granularity.
# ---------------------------------------------------------------------------


def _cluster_tenants(n_ops: int, population: int):
    """The default multi-tenant YCSB mix driving the cluster figures."""
    from repro.cluster.spec import TenantSpec

    return (
        TenantSpec(name="ta", workload="A", n_ops=n_ops,
                   population=population, seed=11),
        TenantSpec(name="tb", workload="B", n_ops=n_ops,
                   population=population, seed=12),
    )


@dataclass
class ClusterScalingResult:
    """Cluster throughput vs shard count at fixed replication."""

    shard_counts: List[int]
    replication: int
    throughput_kops: Dict[int, float] = field(default_factory=dict)
    per_shard_kops: Dict[int, float] = field(default_factory=dict)
    router_share: Dict[int, float] = field(default_factory=dict)
    completed_ops: Dict[int, int] = field(default_factory=dict)
    stats_summary: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def scaling_ratio(self) -> float:
        """Throughput gain from the smallest to the largest cluster."""
        low = self.throughput_kops[min(self.shard_counts)]
        high = self.throughput_kops[max(self.shard_counts)]
        return high / low if low > 0 else 0.0


def cluster_shard_scaling(
    shard_counts: Sequence[int] = (2, 4, 8),
    replication: int = 2,
    n_ops: int = 300,
    population: int = 900,
    partitions: int = 16,
    runner: Optional[SweepRunner] = None,
) -> ClusterScalingResult:
    """Cluster throughput vs shard count (fixed tenant mix and R).

    The same multi-tenant YCSB stream is routed over progressively more
    shards; throughput is completed device operations per millisecond of
    makespan (the slowest shard bounds the cluster).
    """
    from repro.cluster.run import run_cluster
    from repro.cluster.spec import ClusterSpec

    result = ClusterScalingResult(list(shard_counts), replication)
    for shards in shard_counts:
        spec = ClusterSpec(
            shards=shards,
            replication=min(replication, shards),
            partitions=partitions,
            tenants=_cluster_tenants(n_ops, population),
            seed=21,
            verify=False,
        )
        cluster = run_cluster(spec, runner)
        result.throughput_kops[shards] = cluster.throughput_kops()
        result.per_shard_kops[shards] = cluster.throughput_kops() / shards
        result.router_share[shards] = cluster.router_share()
        result.completed_ops[shards] = cluster.completed_ops
        result.stats_summary[shards] = device_stats_summary(
            cluster.device_stats()
        )
    return result


@dataclass
class ClusterRebalanceResult:
    """Tail latency through a mid-run read-only degradation."""

    shards: int
    replication: int
    degraded_shard: int
    #: phase label -> {count, mean, p99, p999}; p99/p999 are the worst
    #: shard's (cluster tail), mean is count-weighted across shards.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    drain_ops: int = 0
    zero_lost_writes: bool = False
    verify_checked: int = 0
    router_share: float = 0.0
    trace_spans: int = 0
    fingerprint: str = ""
    stats_summary: Dict[str, float] = field(default_factory=dict)

    def tail_inflation(self, quantile: str = "p99") -> float:
        """Rebalance-window tail over pre-fault tail (>= 1 expected)."""
        pre = self.phases.get("pre", {}).get(quantile, 0.0)
        rebalance = self.phases.get("rebalance", {}).get(quantile, 0.0)
        return rebalance / pre if pre > 0 else 0.0


def cluster_rebalance_tail(
    shards: int = 4,
    replication: int = 2,
    n_ops: int = 400,
    population: int = 800,
    partitions: int = 16,
    degrade_at: Optional[int] = None,
    rebalance_window_ops: int = 200,
    degraded_shard: int = 1,
    runner: Optional[SweepRunner] = None,
) -> ClusterRebalanceResult:
    """p99/p999 before, during, and after a fault-driven rebalance.

    One shard's device is degraded to read-only mid-run through the real
    fault machinery; the router drains its ranges to replicas while
    client traffic continues.  Per-phase latency shows the rebalance
    window's tail cost.  Runs with span tracing on, so router-vs-device
    attribution rides along.
    """
    from repro.cluster.run import run_cluster
    from repro.cluster.spec import ClusterSpec, DegradeEvent

    total = 2 * n_ops  # two tenants
    at_op = degrade_at if degrade_at is not None else total // 2
    spec = ClusterSpec(
        shards=shards,
        replication=replication,
        partitions=partitions,
        tenants=_cluster_tenants(n_ops, population),
        degrade=(DegradeEvent(shard=degraded_shard, at_op=at_op),),
        rebalance_window_ops=rebalance_window_ops,
        seed=23,
        trace=True,
        verify=True,
    )
    cluster = run_cluster(spec, runner)
    result = ClusterRebalanceResult(
        shards=shards,
        replication=replication,
        degraded_shard=degraded_shard,
        drain_ops=cluster.drain_ops,
        zero_lost_writes=cluster.zero_lost_writes,
        verify_checked=cluster.verify_checked,
        router_share=cluster.router_share(),
        trace_spans=sum(s.trace_spans for s in cluster.shards),
        fingerprint=cluster.fingerprint(),
        stats_summary=device_stats_summary(cluster.device_stats()),
    )
    for label in ("pre", "rebalance", "post", "drain"):
        count = 0
        weighted_mean = 0.0
        p99 = p999 = 0.0
        for shard in cluster.shards:
            summary = shard.latency.get(label)
            if summary is None:
                continue
            count += summary.count
            weighted_mean += summary.mean * summary.count
            p99 = max(p99, summary.p99)
            p999 = max(p999, summary.p999)
        if count == 0:
            continue
        result.phases[label] = {
            "count": float(count),
            "mean": weighted_mean / count,
            "p99": p99,
            "p999": p999,
        }
    return result


@dataclass
class ClusterReplicationResult:
    """Throughput and media cost of the replication factor."""

    factors: List[int]
    shards: int
    throughput_kops: Dict[int, float] = field(default_factory=dict)
    routed_ops: Dict[int, int] = field(default_factory=dict)
    flash_programs: Dict[int, int] = field(default_factory=dict)
    read_p99: Dict[int, float] = field(default_factory=dict)
    stats_summary: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def write_cost(self, factor: int) -> float:
        """Flash programs at R=``factor`` relative to R=1."""
        base = self.flash_programs.get(1, 0)
        return self.flash_programs[factor] / base if base else 0.0


def cluster_replication_cost(
    factors: Sequence[int] = (1, 2, 3),
    shards: int = 4,
    n_ops: int = 300,
    population: int = 900,
    partitions: int = 16,
    runner: Optional[SweepRunner] = None,
) -> ClusterReplicationResult:
    """Write-all fan-out cost as the replication factor grows.

    Same stream, same shards, R swept: routed device operations and
    flash programs grow with R while read tails stay flat (read-one).
    """
    from repro.cluster.run import run_cluster
    from repro.cluster.spec import ClusterSpec

    result = ClusterReplicationResult(list(factors), shards)
    for factor in factors:
        spec = ClusterSpec(
            shards=shards,
            replication=factor,
            partitions=partitions,
            tenants=_cluster_tenants(n_ops, population),
            seed=29,
            verify=False,
        )
        cluster = run_cluster(spec, runner)
        result.throughput_kops[factor] = cluster.throughput_kops()
        result.routed_ops[factor] = cluster.routed_ops
        stats = cluster.device_stats()
        result.flash_programs[factor] = stats.flash_programs
        result.read_p99[factor] = cluster.tail("pre")[0]
        result.stats_summary[factor] = device_stats_summary(stats)
    return result


# ---------------------------------------------------------------------------
# Replay figures — trace-driven, time-varying workloads (ISSUE 10)
#
# The paper's figures all drive stationary synthetic distributions; these
# two replay *time-varying* trace streams (``repro.kvbench.traces``) and
# ask questions the paper never measured.  Rotation: does the KV-FTL's
# location-agnostic hash index still beat the block stack when the whole
# hot set is replaced mid-run?  Mix: what do TTL-driven deletes and
# prefix scans — the iterator buckets' first real exercise — do to the
# read tail?  Cells run through the sweep engine, so both figures are
# cached, parallel-safe, and fingerprint-pinned like every other.
# ---------------------------------------------------------------------------


_REPLAY_SCHEME_PREFIX = b"fill"
#: Key scheme shared by the replay prefills and churn/scan streams.
_REPLAY_TTL_PREFIX = b"ttl-"


def _replay_churn_records(
    rotate_every: int,
    n_ops: int,
    population: int,
    working_set: int,
    value_bytes: int,
    seed: int,
    scheme: KeyScheme,
):
    spec = ChurnSpec(
        n_ops=n_ops,
        population=population,
        working_set=working_set,
        rotate_every_ops=rotate_every,
        value_bytes=value_bytes,
        key_scheme=scheme,
        seed=seed,
    )
    return tuple(generate_churn(spec))


def _replay_rotation_kv_cell(
    rotate_every: int,
    n_ops: int,
    population: int,
    working_set: int,
    value_bytes: int,
    queue_depth: int,
    blocks_per_plane: int,
    seed: int,
) -> Dict[str, object]:
    """KV device under one churn schedule: prefill, then replay."""
    rig = build_kv_rig(
        lab_geometry(blocks_per_plane),
        config=KVSSDConfig(index_dram_bytes=64 * MIB),
    )
    scheme = KeyScheme(prefix=_REPLAY_SCHEME_PREFIX, digits=12)
    rig.device.fast_fill(population, value_bytes, scheme)
    records = _replay_churn_records(
        rotate_every, n_ops, population, working_set, value_bytes, seed, scheme
    )
    workload = TraceWorkload(records, key_scheme=scheme)
    run = execute_workload(
        rig.env,
        rig.adapter,
        workload.operations(),
        queue_depth=queue_depth,
        name=f"replay.rot.kv.{rotate_every}",
    )
    _drain(rig)
    summary = run.latency.summary()
    return {
        "mean": summary.mean,
        "p99": summary.p99,
        "p999": summary.p999,
        "completed": run.completed_ops,
        "failed": run.failed_ops,
        "stats": device_stats_summary(run.device_stats),
    }


def _replay_rotation_block_cell(
    rotate_every: int,
    n_ops: int,
    population: int,
    working_set: int,
    value_bytes: int,
    queue_depth: int,
    blocks_per_plane: int,
    seed: int,
) -> Dict[str, object]:
    """Block device under the *same* churn records (same keys, same order)."""
    rig = build_block_rig(lab_geometry(blocks_per_plane))
    adapter = rig.adapter(value_bytes)
    fill_units = max(1, population * adapter.io_bytes // rig.device.map_unit)
    rig.device.prime_sequential_fill(min(fill_units, rig.device.n_units))
    scheme = KeyScheme(prefix=_REPLAY_SCHEME_PREFIX, digits=12)
    records = _replay_churn_records(
        rotate_every, n_ops, population, working_set, value_bytes, seed, scheme
    )
    workload = TraceWorkload(records, key_scheme=scheme)
    run = execute_workload(
        rig.env,
        adapter,
        workload.operations(),
        queue_depth=queue_depth,
        name=f"replay.rot.blk.{rotate_every}",
    )
    _drain(rig)
    summary = run.latency.summary()
    return {
        "mean": summary.mean,
        "p99": summary.p99,
        "p999": summary.p999,
        "completed": run.completed_ops,
        "failed": run.failed_ops,
        "stats": device_stats_summary(run.device_stats),
    }


@dataclass
class ReplayRotationResult:
    """KV vs block latency/amplification under working-set rotation."""

    n_ops: int
    population: int
    working_set: int
    rotate_every: List[int]
    #: latency_us[device][rotate_every] -> {mean, p99, p999}.
    latency_us: Dict[str, Dict[int, Dict[str, float]]] = field(
        default_factory=dict
    )
    #: Device telemetry summary per (device, rotate_every) — WAF etc.
    stats_summary: Dict[str, Dict[int, Dict[str, float]]] = field(
        default_factory=dict
    )
    completed_ops: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def rotation_penalty(self, device: str, quantile: str = "p99") -> float:
        """Fastest-churn tail over the static (rotate=0) tail."""
        static = self.latency_us[device].get(0)
        if not static or static[quantile] <= 0:
            return 0.0
        churned = self.latency_us[device][min(
            r for r in self.rotate_every if r > 0
        )]
        return churned[quantile] / static[quantile]


_REPLAY_ROTATION_CELLS = {
    "kv": _replay_rotation_kv_cell,
    "block": _replay_rotation_block_cell,
}


def replay_rotation(
    rotate_every: Sequence[int] = (0, 500, 100),
    n_ops: int = 2000,
    population: int = 4096,
    working_set: int = 256,
    value_bytes: int = 4 * KIB,
    queue_depth: int = 8,
    devices: Sequence[str] = ("kv", "block"),
    blocks_per_plane: int = 16,
    seed: int = 17,
    runner: Optional[SweepRunner] = None,
) -> ReplayRotationResult:
    """Replay figure 1: churn replay, KV vs block.

    Both devices replay byte-identical churn traces: uniform read/update
    traffic over a ``working_set``-key window that jumps wholesale every
    ``rotate_every`` ops (0 = pinned window, the stationary control).
    The block stack's placement rewards stable locality; the KV-FTL's
    hash index never looked at locality in the first place — rotation is
    where that difference should surface, or be shown not to matter.
    """
    for device in devices:
        if device not in _REPLAY_ROTATION_CELLS:
            raise ConfigurationError(f"unknown replay device {device!r}")
    points = tuple(
        SweepPoint(
            label=f"{device}/rot{rotate}",
            fn=_REPLAY_ROTATION_CELLS[device],
            kwargs=dict(
                rotate_every=rotate,
                n_ops=n_ops,
                population=population,
                working_set=working_set,
                value_bytes=value_bytes,
                queue_depth=queue_depth,
                blocks_per_plane=blocks_per_plane,
                seed=seed,
            ),
        )
        for device in devices
        for rotate in rotate_every
    )
    cells = execute_spec(SweepSpec("replay_rotation", points), runner)
    result = ReplayRotationResult(
        n_ops, population, working_set, list(rotate_every)
    )
    index = 0
    for device in devices:
        result.latency_us[device] = {}
        result.stats_summary[device] = {}
        result.completed_ops[device] = {}
        for rotate in rotate_every:
            cell = cells[index]
            index += 1
            result.latency_us[device][rotate] = {
                "mean": cell["mean"],
                "p99": cell["p99"],
                "p999": cell["p999"],
            }
            result.stats_summary[device][rotate] = cell["stats"]
            result.completed_ops[device][rotate] = cell["completed"]
    return result


def _replay_mix_cell(
    variant: str,
    n_ops: int,
    population: int,
    ttl_ops: int,
    ttl_us: float,
    scan_fraction: float,
    scan_length: int,
    value_bytes: int,
    queue_depth: int,
    blocks_per_plane: int,
    seed: int,
) -> Dict[str, object]:
    """One mix variant on a fresh KV rig: plain / ttl / ttl+scan.

    The base stream is a point read/update mix over a prefilled
    population; the ``ttl`` variants merge in an expiry stream (its own
    key prefix, inserts re-arming TTLs, deletes materialized at expiry);
    ``ttl+scan`` additionally turns ``scan_fraction`` of the base ops
    into prefix scans through the YCSB driver's emulated-scan path — the
    iterator buckets' first sustained exercise.
    """
    rig = build_kv_rig(
        lab_geometry(blocks_per_plane),
        config=KVSSDConfig(index_dram_bytes=64 * MIB),
    )
    scheme = KeyScheme(prefix=_REPLAY_SCHEME_PREFIX, digits=12)
    rig.device.fast_fill(population, value_bytes, scheme)
    base = ScanMixSpec(
        n_ops=n_ops,
        population=population,
        scan_fraction=scan_fraction if variant == "ttl+scan" else 0.0,
        scan_length=scan_length,
        value_bytes=value_bytes,
        key_scheme=scheme,
        seed=seed,
    )
    streams = [generate_scan_mix(base)]
    if variant in ("ttl", "ttl+scan"):
        expiry = ExpirySpec(
            n_ops=ttl_ops,
            population=max(1, population // 4),
            ttl_us=ttl_us,
            value_bytes=value_bytes,
            interarrival_us=(n_ops * 100.0) / ttl_ops,
            key_scheme=KeyScheme(prefix=_REPLAY_TTL_PREFIX, digits=12),
            seed=seed + 1,
        )
        streams.append(generate_expiry(expiry))
    elif variant != "plain":
        raise ConfigurationError(f"unknown replay mix variant {variant!r}")
    records = merge_traces(*streams)
    workload = TraceWorkload(records, key_scheme=scheme)
    driver = YCSBDriver(
        rig.adapter,
        YCSBSpec(
            workload="E",
            n_ops=n_ops,
            population=population,
            key_scheme=scheme,
            value_bytes=value_bytes,
            scan_length=scan_length,
            seed=seed,
        ),
    )
    run = execute_workload(
        rig.env,
        driver,
        workload.operations(),
        queue_depth=queue_depth,
        name=f"replay.mix.{variant}",
    )
    _drain(rig)
    summary = run.latency.summary()
    read_summary = run.latency.summary("read")
    buckets = rig.device.iterators
    return {
        "mean": summary.mean,
        "p99": summary.p99,
        "p999": summary.p999,
        "read_p99": read_summary.p99,
        "read_p999": read_summary.p999,
        "completed": run.completed_ops,
        "failed": run.failed_ops,
        "deletes": run.latency.count("delete"),
        "scans": driver.scans_run,
        "bucket_keys": buckets.total_keys,
        "bucket_count": len(buckets.buckets()),
        "bucket_page_writes": buckets.bucket_page_writes,
        "stats": device_stats_summary(run.device_stats),
    }


@dataclass
class ReplayMixResult:
    """Tail latency across TTL/expiry and scan-heavy mix variants."""

    n_ops: int
    population: int
    variants: List[str]
    #: latency_us[variant] -> {mean, p99, p999, read_p99, read_p999}.
    latency_us: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ops[variant] -> {completed, failed, deletes, scans}.
    ops: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: buckets[variant] -> {keys, count, page_writes}.
    buckets: Dict[str, Dict[str, int]] = field(default_factory=dict)
    stats_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def tail_inflation(self, variant: str, quantile: str = "read_p99") -> float:
        """Variant read tail over the plain point-op baseline."""
        base = self.latency_us.get("plain", {}).get(quantile, 0.0)
        if base <= 0:
            return 0.0
        return self.latency_us[variant][quantile] / base


def replay_ttl_scan_mix(
    variants: Sequence[str] = ("plain", "ttl", "ttl+scan"),
    n_ops: int = 1500,
    population: int = 2048,
    ttl_ops: int = 600,
    ttl_us: float = 8000.0,
    scan_fraction: float = 0.25,
    scan_length: int = 16,
    value_bytes: int = 4 * KIB,
    queue_depth: int = 8,
    blocks_per_plane: int = 16,
    seed: int = 19,
    runner: Optional[SweepRunner] = None,
) -> ReplayMixResult:
    """Replay figure 2: read-tail cost of TTL churn and prefix scans.

    Same prefilled KV device, three trace variants: point ops only
    (``plain``), point ops merged with a TTL insert/expire/delete stream
    (``ttl``), and that plus prefix scans (``ttl+scan``).  The read tail
    across variants prices what the paper's stationary workloads never
    bill: expiry-driven delete traffic and bucket-walking scans sharing
    the device with point reads.
    """
    points = tuple(
        SweepPoint(
            label=f"mix/{variant}",
            fn=_replay_mix_cell,
            kwargs=dict(
                variant=variant,
                n_ops=n_ops,
                population=population,
                ttl_ops=ttl_ops,
                ttl_us=ttl_us,
                scan_fraction=scan_fraction,
                scan_length=scan_length,
                value_bytes=value_bytes,
                queue_depth=queue_depth,
                blocks_per_plane=blocks_per_plane,
                seed=seed,
            ),
        )
        for variant in variants
    )
    cells = execute_spec(SweepSpec("replay_mix", points), runner)
    result = ReplayMixResult(n_ops, population, list(variants))
    for variant, cell in zip(variants, cells):
        result.latency_us[variant] = {
            "mean": cell["mean"],
            "p99": cell["p99"],
            "p999": cell["p999"],
            "read_p99": cell["read_p99"],
            "read_p999": cell["read_p999"],
        }
        result.ops[variant] = {
            "completed": cell["completed"],
            "failed": cell["failed"],
            "deletes": cell["deletes"],
            "scans": cell["scans"],
        }
        result.buckets[variant] = {
            "keys": cell["bucket_keys"],
            "count": cell["bucket_count"],
            "page_writes": cell["bucket_page_writes"],
        }
        result.stats_summary[variant] = cell["stats"]
    return result
