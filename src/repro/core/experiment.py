"""Experiment rigs: ready-to-measure system stacks.

A *rig* bundles one isolated simulation environment with a full stack
(device, driver, API, store, adapter) so an experiment can build the
paper's four systems-under-test with one call each:

* :func:`build_kv_rig` — KV-SSD behind the SNIA KVS API (KDD);
* :func:`build_block_rig` — block-SSD behind direct I/O;
* :func:`build_lsm_rig` — RocksDB stand-in on ext4 on block-SSD;
* :func:`build_hash_rig` — Aerospike stand-in on raw block-SSD.

All rigs default to the same flash geometry and timing — the paper's
same-hardware methodology — and expose the CPU accountant and device
counters the analysis reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.block import BlockDeviceAPI
from repro.api.kvs import KVStoreAPI
from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.faults.model import FaultConfig, FaultInjector
from repro.flash.geometry import Geometry
from repro.flash.timing import FlashTiming
from repro.hostkv.fs.ext4 import SimFileSystem
from repro.hostkv.hashkv.store import HashKVConfig, HashKVStore
from repro.hostkv.lsm.store import LSMConfig, LSMStore
from repro.kvbench.runner import (
    BlockAdapter,
    HashKVAdapter,
    KVSSDAdapter,
    LSMAdapter,
)
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.device import KVSSD
from repro.metrics.cpu import CpuAccountant
from repro.nvme.driver import DriverCosts, KernelDeviceDriver
from repro.sim.engine import Environment
from repro.trace.tracer import Tracer
from repro.units import KIB


def lab_geometry(blocks_per_plane: int = 32) -> Geometry:
    """Default experiment geometry: PM983-shaped, laptop-sized (~1-4 GiB).

    16 dies across 8 channels with 32 KiB pages — the same parallelism
    structure as the measured drive, scaled in block count only.
    """
    return Geometry(
        channels=8,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=128,
        page_bytes=32 * KIB,
    )


@dataclass
class KVRig:
    """KV-SSD stack under test."""

    env: Environment
    cpu: CpuAccountant
    driver: KernelDeviceDriver
    device: KVSSD
    api: KVStoreAPI
    adapter: KVSSDAdapter


@dataclass
class BlockRig:
    """Direct-I/O block-SSD stack under test."""

    env: Environment
    cpu: CpuAccountant
    driver: KernelDeviceDriver
    device: BlockSSD
    api: BlockDeviceAPI

    def adapter(self, io_bytes: int) -> BlockAdapter:
        """Adapter issuing fixed-size I/Os of ``io_bytes``."""
        return BlockAdapter(self.api, io_bytes)


@dataclass
class LSMRig:
    """RocksDB-on-ext4-on-block stack under test."""

    env: Environment
    cpu: CpuAccountant
    driver: KernelDeviceDriver
    device: BlockSSD
    api: BlockDeviceAPI
    fs: SimFileSystem
    store: LSMStore
    adapter: LSMAdapter


@dataclass
class HashRig:
    """Aerospike-on-raw-block stack under test."""

    env: Environment
    cpu: CpuAccountant
    driver: KernelDeviceDriver
    device: BlockSSD
    api: BlockDeviceAPI
    store: HashKVStore
    adapter: HashKVAdapter


def build_kv_rig(
    geometry: Optional[Geometry] = None,
    config: Optional[KVSSDConfig] = None,
    timing: Optional[FlashTiming] = None,
    driver_costs: Optional[DriverCosts] = None,
    sync: bool = False,
    host_cores: int = 16,
    tracer: Optional[Tracer] = None,
    fault_config: Optional[FaultConfig] = None,
) -> KVRig:
    """Fresh environment with a KV-SSD behind the KVS API.

    An unbound ``tracer`` is bound to the rig's fresh environment and
    threaded through the device, core, flash array, and driver.  A
    ``fault_config`` builds the device its own seeded
    :class:`~repro.faults.model.FaultInjector` (``None`` = perfect flash).
    """
    env = Environment()
    cpu = CpuAccountant(env, host_cores)
    faults = FaultInjector(fault_config) if fault_config is not None else None
    device = KVSSD(env, geometry or lab_geometry(), timing, config,
                   tracer=tracer, faults=faults)
    driver = KernelDeviceDriver(env, cpu, driver_costs, tracer=device.tracer)
    api = KVStoreAPI(env, device, driver, sync=sync)
    return KVRig(env, cpu, driver, device, api, KVSSDAdapter(api))


def build_block_rig(
    geometry: Optional[Geometry] = None,
    config: Optional[BlockSSDConfig] = None,
    timing: Optional[FlashTiming] = None,
    driver_costs: Optional[DriverCosts] = None,
    sync: bool = False,
    host_cores: int = 16,
    tracer: Optional[Tracer] = None,
    fault_config: Optional[FaultConfig] = None,
) -> BlockRig:
    """Fresh environment with a block SSD behind direct I/O.

    ``fault_config`` builds the device its own seeded fault injector
    (``None`` = perfect flash).
    """
    env = Environment()
    cpu = CpuAccountant(env, host_cores)
    faults = FaultInjector(fault_config) if fault_config is not None else None
    device = BlockSSD(env, geometry or lab_geometry(), timing, config,
                      tracer=tracer, faults=faults)
    driver = KernelDeviceDriver(env, cpu, driver_costs, tracer=device.tracer)
    api = BlockDeviceAPI(env, device, driver, sync=sync)
    return BlockRig(env, cpu, driver, device, api)


def build_lsm_rig(
    geometry: Optional[Geometry] = None,
    lsm_config: Optional[LSMConfig] = None,
    block_config: Optional[BlockSSDConfig] = None,
    timing: Optional[FlashTiming] = None,
    host_cores: int = 16,
    tracer: Optional[Tracer] = None,
) -> LSMRig:
    """Fresh environment with the RocksDB stand-in on ext4 on block."""
    env = Environment()
    cpu = CpuAccountant(env, host_cores)
    device = BlockSSD(env, geometry or lab_geometry(), timing, block_config,
                      tracer=tracer)
    driver = KernelDeviceDriver(env, cpu, tracer=device.tracer)
    api = BlockDeviceAPI(env, device, driver)
    fs = SimFileSystem(env, api)
    store = LSMStore(env, fs, lsm_config)
    return LSMRig(env, cpu, driver, device, api, fs, store, LSMAdapter(store))


def build_hash_rig(
    geometry: Optional[Geometry] = None,
    hash_config: Optional[HashKVConfig] = None,
    block_config: Optional[BlockSSDConfig] = None,
    timing: Optional[FlashTiming] = None,
    host_cores: int = 16,
    tracer: Optional[Tracer] = None,
    fault_config: Optional[FaultConfig] = None,
) -> HashRig:
    """Fresh environment with the Aerospike stand-in on raw block.

    ``fault_config`` builds the device its own seeded fault injector
    (``None`` = perfect flash).
    """
    env = Environment()
    cpu = CpuAccountant(env, host_cores)
    faults = FaultInjector(fault_config) if fault_config is not None else None
    device = BlockSSD(env, geometry or lab_geometry(), timing, block_config,
                      tracer=tracer, faults=faults)
    driver = KernelDeviceDriver(env, cpu, tracer=device.tracer)
    api = BlockDeviceAPI(env, device, driver)
    store = HashKVStore(env, api, hash_config)
    return HashRig(env, cpu, driver, device, api, store, HashKVAdapter(store))
