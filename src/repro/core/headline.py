"""Reproduction of the paper's headline scalars (Sec. I / Sec. IV).

The abstract and introduction quote a handful of summary numbers; this
module measures each on the simulated stacks:

* host CPU reduction vs RocksDB ("a factor of 13, on average");
* KV vs block direct-I/O bandwidth for 4 KiB random ops ("as low as
  0.44x reads / 0.22x writes");
* KV vs block direct-I/O latency ("up to 2.63x writes / 8.1x reads" —
  the read extreme occurs at high index occupancy);
* end-to-end gains ("up to 23.08x inserts vs RocksDB, 3.64x updates vs
  Aerospike");
* the maximum storable KVP count ("~3.1 billion on 3.84 TB").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import (
    build_block_rig,
    build_kv_rig,
    lab_geometry,
)
from repro.core.figures import (
    fig2_end_to_end,
    fig3_index_occupancy,
    fig4_value_size_concurrency,
)
from repro.kvbench.runner import execute_workload
from repro.kvbench.workload import Pattern, WorkloadSpec, generate_operations
from repro.kvftl.blob import blobs_per_page
from repro.kvftl.population import KeyScheme
from repro.units import KIB


@dataclass(frozen=True)
class HeadlineResult:
    """Measured counterparts of the paper's headline scalars."""

    cpu_reduction_vs_rocksdb: float
    cpu_reduction_vs_aerospike: float
    bw_ratio_4k_rand_read: float
    bw_ratio_4k_rand_write: float
    latency_ratio_read_qd1: float
    latency_ratio_write_qd1: float
    latency_ratio_read_high_occupancy: float
    e2e_insert_gain_vs_rocksdb: float
    e2e_update_gain_vs_aerospike: float
    max_kvps_full_scale: float

    def rows(self):
        """(metric, paper, measured) rows for the bench report."""
        return [
            ("host CPU reduction vs RocksDB", "~13x avg (up to 0.92x less)",
             f"{self.cpu_reduction_vs_rocksdb:.1f}x"),
            ("host CPU reduction vs Aerospike", "much smaller than vs RocksDB",
             f"{self.cpu_reduction_vs_aerospike:.1f}x"),
            ("4K rand read BW, KV/block (QD1, 45% fill)", "as low as 0.44x",
             f"{self.bw_ratio_4k_rand_read:.2f}x"),
            ("4K rand write BW, KV/block (QD1, 45% fill)", "as low as 0.22x",
             f"{self.bw_ratio_4k_rand_write:.2f}x"),
            ("direct read latency, KV/block (QD1)", "1.7x typical, up to 8.1x",
             f"{self.latency_ratio_read_qd1:.2f}x"),
            ("direct read latency at high occupancy", "up to 8.1x",
             f"{self.latency_ratio_read_high_occupancy:.2f}x"),
            ("direct write latency, KV/block (QD1)", "2.5-2.63x",
             f"{self.latency_ratio_write_qd1:.2f}x"),
            ("e2e insert gain vs RocksDB", "up to 23.08x",
             f"{self.e2e_insert_gain_vs_rocksdb:.1f}x"),
            ("e2e update gain vs Aerospike", "up to 3.64x",
             f"{self.e2e_update_gain_vs_aerospike:.2f}x"),
            ("max KVPs on 3.84 TB", "~3.1 billion",
             f"{self.max_kvps_full_scale / 1e9:.2f} billion"),
        ]


def _direct_bw_ratios(blocks_per_plane: int, n_ops: int) -> tuple:
    """KV/block 4 KiB random direct-I/O bandwidth ratios at QD1.

    The paper's "as low as 0.44x reads / 0.22x writes" is a direct-access
    comparison on a *populated* device, where the KV index no longer fits
    DRAM — measured here at ~45% of the device's physical fill.
    """
    size = 4 * KIB
    kv_rig = build_kv_rig(lab_geometry(blocks_per_plane))
    scheme = KeyScheme(prefix=b"fill", digits=12)
    per_page = blobs_per_page(
        scheme.key_bytes, size, kv_rig.device.array.geometry.page_bytes,
        kv_rig.device.config,
    )
    pages = (
        kv_rig.device.free_block_count()
        * kv_rig.device.array.geometry.pages_per_block
    )
    population = int(pages * 0.45) * per_page
    kv_rig.device.fast_fill(population, size, scheme)

    block_rig = build_block_rig(lab_geometry(blocks_per_plane))
    adapter = block_rig.adapter(size)
    fill_units = min(
        block_rig.device.n_units,
        population * adapter.io_bytes // block_rig.device.map_unit,
    )
    block_rig.device.prime_sequential_fill(fill_units)

    ratios = {}
    for op_name, op_kind, seed in (("read", "read", 83), ("write", "update", 89)):
        spec = WorkloadSpec(
            n_ops=n_ops, op=op_kind, pattern=Pattern.UNIFORM,
            population=population, key_scheme=scheme, value_bytes=size,
            seed=seed,
        )
        kv_run = execute_workload(
            kv_rig.env, kv_rig.adapter, generate_operations(spec), 1,
            name=f"headline.kv.{op_name}",
        )
        block_spec = WorkloadSpec(
            n_ops=n_ops, op=op_kind, pattern=Pattern.UNIFORM,
            population=min(population, adapter.slots), value_bytes=size,
            seed=seed,
        )
        block_run = execute_workload(
            block_rig.env, adapter, generate_operations(block_spec), 1,
            name=f"headline.blk.{op_name}",
        )
        # Same op count and size: bandwidth ratio = inverse latency ratio.
        ratios[op_name] = block_run.latency.mean() / kv_run.latency.mean()
    return ratios["read"], ratios["write"]


def headline_scalars(
    n_ops: int = 2500,
    queue_depth_bw: int = 32,
    blocks_per_plane: int = 16,
) -> HeadlineResult:
    """Measure all headline scalars on scaled rigs."""
    fig2 = fig2_end_to_end(
        n_ops=n_ops,
        patterns=("rand",),
        blocks_per_plane=blocks_per_plane,
    )
    fig4 = fig4_value_size_concurrency(
        value_sizes=(4 * KIB,),
        queue_depths=(1, queue_depth_bw),
        n_ops=n_ops,
        blocks_per_plane=blocks_per_plane,
    )
    fig3 = fig3_index_occupancy(
        measured_ops=800,
        blocks_per_plane=blocks_per_plane,
    )
    bw_read, bw_write = _direct_bw_ratios(blocks_per_plane, n_ops=1000)

    size = 4 * KIB
    high_read_ratio = (
        fig3.latency_us["kv"]["high"]["read"]
        / fig3.latency_us["block"]["high"]["read"]
    )

    kv_cpu = fig2.cpu_us_per_op["kvssd"]
    probe = build_kv_rig(lab_geometry(blocks_per_plane))
    config = probe.device.config
    slot_bytes = (
        config.index_entry_bytes
        * config.index_structure_overhead
        / config.index_load_factor
    )
    return HeadlineResult(
        cpu_reduction_vs_rocksdb=fig2.cpu_us_per_op["rocksdb"] / kv_cpu,
        cpu_reduction_vs_aerospike=fig2.cpu_us_per_op["aerospike"] / kv_cpu,
        bw_ratio_4k_rand_read=bw_read,
        bw_ratio_4k_rand_write=bw_write,
        latency_ratio_read_qd1=fig4.ratio["read"][1][size],
        latency_ratio_write_qd1=fig4.ratio["write"][1][size],
        latency_ratio_read_high_occupancy=high_read_ratio,
        e2e_insert_gain_vs_rocksdb=fig2.ratio("rocksdb", "kvssd", "rand", "insert"),
        e2e_update_gain_vs_aerospike=fig2.ratio("aerospike", "kvssd", "rand", "update"),
        max_kvps_full_scale=3.84e12 * config.index_region_fraction / slot_bytes,
    )
