"""Deterministic NAND fault injection and the reliability model."""

from repro.faults.model import (
    FAULT_KINDS,
    FaultConfig,
    FaultInjector,
    READ_OK,
    ReadResult,
)

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultInjector",
    "READ_OK",
    "ReadResult",
]
