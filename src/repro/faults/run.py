"""Fault-injection demo runs: one workload, both personalities, one sweep.

:func:`run_fault_sweep` replays the same mixed workload against a KV-SSD
rig and a block-SSD rig at a series of statistical fault rates, so the
CLI (``repro faults``) and the tail-latency bench can show how media
errors inflate latency percentiles and which recovery counters moved.

A single ``rate`` knob scales the whole :class:`FaultConfig` through
:func:`fault_profile` — corrected read errors dominate (they are by far
the most common NAND event), with uncorrectable reads, program fails,
and erase fails orders of magnitude rarer, roughly the proportions the
reliability literature reports for enterprise TLC.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
from repro.errors import ConfigurationError
from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.faults.model import FaultConfig
from repro.ftl.core import DeviceStats
from repro.kvbench.runner import RunResult, execute_workload
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.population import KeyScheme

#: Default statistical rates the sweep visits (0 = perfect flash).
DEFAULT_RATES = (0.0, 1e-3, 1e-2, 5e-2)

#: Simulated-time bound per measured phase (a heavily faulted run must
#: terminate even if recovery stalls it).
STOP_AFTER_US = 60e6


def fault_profile(rate: float, seed: int = 1) -> Optional[FaultConfig]:
    """Scale the single ``rate`` knob into a full fault configuration.

    ``rate`` is the per-read probability of a *corrected* (retryable)
    error; rarer events derive from it.  ``0.0`` returns ``None`` —
    perfect flash, the injector never built.
    """
    if rate < 0.0 or rate > 0.2:
        raise ConfigurationError(
            f"fault rate must be in [0, 0.2], got {rate}"
        )
    if rate == 0.0:
        return None
    return FaultConfig(
        seed=seed,
        read_corrected_prob=rate,
        read_uncorrectable_prob=rate / 50.0,
        program_fail_prob=rate / 10.0,
        erase_fail_prob=rate / 100.0,
    )


@dataclass
class FaultPoint:
    """One (personality, rate) cell of the sweep."""

    personality: str
    rate: float
    run: RunResult
    #: Device telemetry delta over the measured phase.
    stats: DeviceStats
    #: Injector decision counts by fault kind (empty at rate 0).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Whether the device degraded to read-only during the run.
    read_only: bool = False

    def latency_summary(self) -> Dict[str, float]:
        return self.run.latency.summary().as_dict()


def _run_kv_point(rate: float, seed: int, n_ops: int, value_bytes: int,
                  blocks_per_plane: int, queue_depth: int,
                  workload_seed: int) -> FaultPoint:
    rig = build_kv_rig(
        lab_geometry(blocks_per_plane),
        fault_config=fault_profile(rate, seed),
    )
    scheme = KeyScheme(prefix=b"key-", digits=12)
    rig.device.fast_fill(n_ops, value_bytes, scheme)
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="mixed",
        population=n_ops,
        key_scheme=scheme,
        value_bytes=value_bytes,
        read_fraction=0.5,
        seed=workload_seed,
    )
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(spec),
        queue_depth=queue_depth, name=f"faults.kv.{rate:g}",
        stop_after_us=STOP_AFTER_US,
    )
    faults = rig.device.array.faults
    return FaultPoint(
        "kv-ssd", rate, run, run.device_stats,
        injected=dict(faults.injected) if faults is not None else {},
        read_only=rig.device.core.read_only,
    )


def _run_block_point(rate: float, seed: int, n_ops: int, value_bytes: int,
                     blocks_per_plane: int, queue_depth: int,
                     workload_seed: int) -> FaultPoint:
    rig = build_block_rig(
        lab_geometry(blocks_per_plane),
        fault_config=fault_profile(rate, seed),
    )
    adapter = rig.adapter(value_bytes)
    rig.device.prime_sequential_fill(
        min(n_ops, rig.device.n_units // 2)
    )
    spec = WorkloadSpec(
        n_ops=n_ops,
        op="mixed",
        population=n_ops,
        key_scheme=KeyScheme(prefix=b"key-", digits=12),
        value_bytes=value_bytes,
        read_fraction=0.5,
        seed=workload_seed,
    )
    run = execute_workload(
        rig.env, adapter, generate_operations(spec),
        queue_depth=queue_depth, name=f"faults.block.{rate:g}",
        stop_after_us=STOP_AFTER_US,
    )
    faults = rig.device.array.faults
    return FaultPoint(
        "block-ssd", rate, run, run.device_stats,
        injected=dict(faults.injected) if faults is not None else {},
        read_only=rig.device.core.read_only,
    )


def run_fault_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    n_ops: int = 600,
    seed: int = 7,
    value_bytes: int = 4096,
    blocks_per_plane: int = 16,
    queue_depth: int = 8,
    workload_seed: int = 47,
    runner: Optional[SweepRunner] = None,
) -> List[FaultPoint]:
    """Run the sweep; returns points ordered personality-major, rate-minor.

    Every point gets a *fresh* rig (fault injection mutates wear and the
    grown-defect list) but replays the identical operation stream, so
    rate 0 within each personality is the clean baseline for the rest.
    ``runner`` fans the (personality, rate) cells out over a process
    pool and/or the result cache; point order is fixed either way.
    """
    if not rates:
        raise ConfigurationError("fault sweep needs at least one rate")
    for rate in rates:
        fault_profile(rate, seed)  # validate every rate before fan-out
    kwargs = dict(seed=seed, n_ops=n_ops, value_bytes=value_bytes,
                  blocks_per_plane=blocks_per_plane,
                  queue_depth=queue_depth, workload_seed=workload_seed)
    cell_fns = {"kv": _run_kv_point, "block": _run_block_point}
    sweep_points = tuple(
        SweepPoint(
            label=f"{personality}/{rate:g}",
            fn=cell_fns[personality],
            kwargs=dict(rate=rate, **kwargs),
        )
        for personality in ("kv", "block")
        for rate in rates
    )
    return execute_spec(SweepSpec("faults", sweep_points), runner)


#: Column order of :func:`write_sweep_csv` (stable: tooling parses it).
SWEEP_CSV_COLUMNS = (
    "personality", "rate", "completed_ops", "failed_ops",
    "p50_us", "p99_us", "p999_us",
    "read_retries", "corrected_reads", "uncorrectable_reads",
    "program_fails", "erase_fails", "retired_blocks", "read_only",
)


def write_sweep_csv(
    points: Sequence[FaultPoint], path: Union[str, "os.PathLike[str]"]
) -> int:
    """Write sweep results as CSV to ``path``; returns rows written.

    Accepts any path-like value and creates missing parent directories,
    so ``repro faults --faults-out results/sweep.csv`` just works.
    """
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="ascii", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SWEEP_CSV_COLUMNS)
        for point in points:
            latency = point.latency_summary()
            stats = point.stats
            writer.writerow([
                point.personality, f"{point.rate:g}",
                point.run.completed_ops, point.run.failed_ops,
                round(latency["p50"], 3), round(latency["p99"], 3),
                round(latency["p999"], 3),
                stats.read_retries, stats.corrected_reads,
                stats.uncorrectable_reads, stats.program_fails,
                stats.erase_fails, stats.retired_blocks,
                int(point.read_only),
            ])
    return len(points)
