"""Deterministic fault injection for the NAND model.

Real PM983-class firmware spends significant machinery on reliability:
reads that need retry with tuned reference voltages, programs that fail
and force the page elsewhere, blocks that wear out and are retired into a
grown-defect list.  The paper's latency tails implicitly include those
recovery paths; this module makes them first-class simulator inputs, the
way SimpleSSD and Amber treat reliability events.

Two composable sources of faults, both owned by :class:`FaultInjector`:

* **Schedules** — exact, per-operation faults ("the next read of block 7
  is uncorrectable", "the next program anywhere fails").  Consumed FIFO
  by the first matching operation; what tests and repro cases use.
* **A statistical model** — per-operation fault probabilities drawn from
  a dedicated ``random.Random(seed)``.  The raw bit-error rate grows
  with ``BlockInfo.erase_count`` through :meth:`FaultConfig.wear_multiplier`,
  so a heavily collected device degrades the way worn flash does.

Schedules are always consulted before the statistical model, so a test
can pin one exact fault on top of a statistical background rate.

The injector only *decides*; it never raises and never keeps time.  The
:class:`~repro.flash.nand.FlashArray` asks it per attempt and surfaces
the outcome (a :class:`ReadResult`, or a raised
:class:`~repro.errors.ProgramFailError` / :class:`~repro.errors.EraseFailError`);
recovery — retries, reallocation, retirement, read-only degradation — is
the FTL core's job (:mod:`repro.ftl.core`).

Determinism: the simulation engine is deterministic and the injector
consumes its RNG once per faultable operation in issue order, so two runs
with the same seed produce identical fault sequences, identical
``DeviceStats`` and identical traces.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError

#: Fault kinds a schedule entry may carry.
FAULT_KINDS = (
    "read_corrected",
    "read_uncorrectable",
    "program_fail",
    "erase_fail",
    "bad_block",
)


@dataclass(frozen=True)
class FaultConfig:
    """Reliability model parameters (all probabilities per operation).

    The defaults model perfect flash: every probability is zero, so an
    injector built from a bare ``FaultConfig()`` only ever acts on
    explicit schedules.  ``wear_factor`` scales every probability by
    ``1 + wear_factor * erase_count`` — the raw bit-error growth that
    makes old blocks fail first.
    """

    #: Seed for the statistical model's dedicated RNG.
    seed: int = 1
    #: Probability a read needs a retry sequence but then succeeds.
    read_corrected_prob: float = 0.0
    #: Probability a read stays unreadable through every retry.
    read_uncorrectable_prob: float = 0.0
    #: Probability a page program fails (status-check failure after tPROG).
    program_fail_prob: float = 0.0
    #: Probability a block erase fails (the block is then retired).
    erase_fail_prob: float = 0.0
    #: Probability an erase reveals a spontaneous grown defect: the block
    #: goes permanently bad (every later program/erase on it fails).
    bad_block_prob: float = 0.0
    #: Per-erase-count growth of all probabilities above.
    wear_factor: float = 0.0
    #: Read retries attempted before declaring data uncorrectable.
    max_read_retries: int = 3
    #: Base backoff before retry ``n`` (the FTL waits ``n * backoff`` —
    #: re-tuning read reference voltages takes longer each step).
    read_retry_backoff_us: float = 25.0

    def __post_init__(self) -> None:
        for name in (
            "read_corrected_prob",
            "read_uncorrectable_prob",
            "program_fail_prob",
            "erase_fail_prob",
            "bad_block_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {value}"
                )
        if self.wear_factor < 0:
            raise ConfigurationError(
                f"wear_factor must be >= 0, got {self.wear_factor}"
            )
        if self.max_read_retries < 1:
            raise ConfigurationError(
                f"max_read_retries must be >= 1, got {self.max_read_retries}"
            )
        if self.read_retry_backoff_us < 0:
            raise ConfigurationError(
                f"read_retry_backoff_us must be >= 0, "
                f"got {self.read_retry_backoff_us}"
            )

    def wear_multiplier(self, erase_count: int) -> float:
        """Raw bit-error growth factor for a block of ``erase_count``."""
        return 1.0 + self.wear_factor * erase_count

    @property
    def statistical(self) -> bool:
        """Whether any statistical rate is non-zero."""
        return (
            self.read_corrected_prob > 0.0
            or self.read_uncorrectable_prob > 0.0
            or self.program_fail_prob > 0.0
            or self.erase_fail_prob > 0.0
            or self.bad_block_prob > 0.0
        )


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a read: clean, corrected after retries, or unreadable.

    Returned by every :meth:`~repro.flash.nand.FlashArray.read` attempt
    (``retries`` then counts this attempt's ordinal) and by the FTL
    core's recovering :meth:`~repro.ftl.core.FtlCore.read_page` (where
    ``retries`` is the whole sequence).
    """

    ok: bool = True
    retries: int = 0

    @property
    def corrected(self) -> bool:
        """The data came back good, but only after at least one retry."""
        return self.ok and self.retries > 0

    @property
    def uncorrectable(self) -> bool:
        """The data did not come back good on this attempt."""
        return not self.ok


#: Shared clean result for the unfaulted fast path.
READ_OK = ReadResult()


class FaultInjector:
    """Decides, deterministically, which flash operations fault.

    One injector serves one :class:`~repro.flash.nand.FlashArray`; its
    RNG state *is* device state, so parity experiments build one injector
    per device from the same :class:`FaultConfig`.
    """

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config if config is not None else FaultConfig()
        self._rng = random.Random(self.config.seed)
        #: kind -> FIFO of block filters (``None`` matches any block).
        self._scheduled: Dict[str, Deque[Optional[int]]] = {}
        #: Blocks gone permanently bad (grown defects at media level).
        self._bad_blocks: Set[int] = set()
        #: (block, page) -> retries needed to correct; ``None`` while the
        #: fault is uncorrectable.  Entries live for one retry sequence.
        self._active_reads: Dict[Tuple[int, int], Optional[int]] = {}
        #: Total faults injected, by kind (diagnostic only).
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, kind: str, block: Optional[int] = None, count: int = 1
    ) -> None:
        """Queue ``count`` exact faults of ``kind``.

        Each entry is consumed by the first matching operation: any
        operation of that kind when ``block`` is ``None``, else the first
        one targeting ``block``.  ``bad_block`` entries are consumed by
        the next program *or* erase of the block, which then goes
        permanently bad.
        """
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        queue = self._scheduled.setdefault(kind, deque())
        for _ in range(count):
            queue.append(block)

    def mark_bad(self, block: int) -> None:
        """Declare a block permanently bad, effective immediately."""
        self._bad_blocks.add(block)

    def is_bad(self, block: int) -> bool:
        """Whether the media has given up on ``block``."""
        return block in self._bad_blocks

    def pending_scheduled(self) -> int:
        """Schedule entries not yet consumed (test/debug aid)."""
        return sum(len(queue) for queue in self._scheduled.values())

    def _take_scheduled(self, kind: str, block: int) -> bool:
        queue = self._scheduled.get(kind)
        if not queue:
            return False
        for position, wanted in enumerate(queue):
            if wanted is None or wanted == block:
                del queue[position]
                return True
        return False

    def _note(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # per-attempt decisions (consulted by FlashArray)
    # ------------------------------------------------------------------

    def read_attempt(
        self, block: int, page: int, erase_count: int, attempt: int
    ) -> bool:
        """Whether read ``attempt`` of (block, page) returns good data.

        Attempt 0 decides the fault (schedule first, then the statistical
        model) and pins it on the (block, page) pair; retries consult the
        pinned state, so a corrected fault clears after the decided
        number of retries while an uncorrectable one never does.  The
        recovery layer calls :meth:`finish_read` when it gives up or
        succeeds, releasing the pin.
        """
        key = (block, page)
        if attempt == 0:
            kind = None
            if self._take_scheduled("read_uncorrectable", block):
                kind = "read_uncorrectable"
            elif self._take_scheduled("read_corrected", block):
                kind = "read_corrected"
            elif self.config.statistical and (
                self.config.read_uncorrectable_prob > 0.0
                or self.config.read_corrected_prob > 0.0
            ):
                wear = self.config.wear_multiplier(erase_count)
                p_unc = min(1.0, self.config.read_uncorrectable_prob * wear)
                p_cor = min(1.0, self.config.read_corrected_prob * wear)
                draw = self._rng.random()
                if draw < p_unc:
                    kind = "read_uncorrectable"
                elif draw < p_unc + p_cor:
                    kind = "read_corrected"
            if kind is None:
                return True
            self._note(kind)
            self._active_reads[key] = (
                None if kind == "read_uncorrectable" else 1
            )
            return False
        if key not in self._active_reads:
            return True
        needed = self._active_reads[key]
        if needed is not None and attempt >= needed:
            del self._active_reads[key]
            return True
        return False

    def finish_read(self, block: int, page: int) -> None:
        """Release the retry pin after recovery succeeds or gives up."""
        self._active_reads.pop((block, page), None)

    def program_fails(self, block: int, erase_count: int) -> bool:
        """Whether the next page program of ``block`` fails."""
        if block in self._bad_blocks:
            return True
        if self._take_scheduled("bad_block", block):
            self._bad_blocks.add(block)
            self._note("bad_block")
            return True
        if self._take_scheduled("program_fail", block):
            self._note("program_fail")
            return True
        p = self.config.program_fail_prob
        if p > 0.0:
            p = min(1.0, p * self.config.wear_multiplier(erase_count))
            if self._rng.random() < p:
                self._note("program_fail")
                return True
        return False

    def erase_fails(self, block: int, erase_count: int) -> bool:
        """Whether the next erase of ``block`` fails.

        A spontaneous grown defect (scheduled or statistical
        ``bad_block``) marks the block permanently bad on top of failing
        this erase.
        """
        if block in self._bad_blocks:
            return True
        if self._take_scheduled("bad_block", block):
            self._bad_blocks.add(block)
            self._note("bad_block")
            return True
        if self._take_scheduled("erase_fail", block):
            self._note("erase_fail")
            return True
        if self.config.statistical:
            wear = self.config.wear_multiplier(erase_count)
            p_bad = min(1.0, self.config.bad_block_prob * wear)
            p_erase = min(1.0, self.config.erase_fail_prob * wear)
            if p_bad > 0.0 or p_erase > 0.0:
                draw = self._rng.random()
                if draw < p_bad:
                    self._bad_blocks.add(block)
                    self._note("bad_block")
                    return True
                if draw < p_bad + p_erase:
                    self._note("erase_fail")
                    return True
        return False
