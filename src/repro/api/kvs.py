"""SNIA KVS API library model.

User applications talk to the KV-SSD through this thin library (Sec. II):
it validates arguments, builds vendor-specific NVMe commands, and submits
them through the kernel device driver.  Its thinness is the point — the
paper's RQ1 finding is that this stack consumes ~13x less host CPU than
RocksDB-on-block, because indexing and compaction moved into the device.

Both synchronous and asynchronous modes are provided, as in the real API;
"async" here means the caller may hold many operations in flight (the
workload runner manages queue depth), while "sync" additionally pays
blocking-wait CPU per command.

Device errors surface as the :mod:`repro.errors` exceptions with an
``nvme_status`` attribute attached — the completion-queue status code a
real driver would report (:class:`~repro.nvme.command.NvmeStatus`) — and
the driver accounts the error completion before the exception propagates.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import DeviceError
from repro.kvftl.device import KVSSD
from repro.nvme.command import commands_for_key, status_for_error
from repro.nvme.driver import KernelDeviceDriver
from repro.sim.engine import Environment, Event


class KVStoreAPI:
    """Host-side entry point for KV operations against a :class:`KVSSD`."""

    #: Host CPU the API library itself burns per call (validation,
    #: buffer handoff) — deliberately tiny.
    LIBRARY_CPU_US = 1.0

    def __init__(
        self,
        env: Environment,
        device: KVSSD,
        driver: KernelDeviceDriver,
        sync: bool = False,
        component: str = "kv-api",
    ) -> None:
        self.env = env
        self.device = device
        self.driver = driver
        self.sync = sync
        self.component = component

    def _preamble(
        self, key: bytes, span
    ) -> Generator[Event, None, int]:
        ncommands = commands_for_key(len(key))
        self.driver.cpu.charge(self.component, self.LIBRARY_CPU_US)
        with span.phase("nvme"):
            yield from self.driver.submit(ncommands, self.sync, self.component)
        return ncommands

    def _fail(self, exc: DeviceError) -> None:
        """Account an error completion and tag the exception with it."""
        status = status_for_error(exc)
        exc.nvme_status = status
        self.driver.complete(1, self.component, status=status)

    def store(self, key: bytes, value_bytes: int) -> Generator[Event, None, None]:
        """Store a pair (timed host-to-completion process)."""
        span = self.device.tracer.op("store")
        try:
            ncommands = yield from self._preamble(key, span)
            try:
                yield from self.device.store(
                    key, value_bytes, ncommands=ncommands, span=span
                )
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(key_bytes=len(key), value_bytes=value_bytes)

    def retrieve(self, key: bytes) -> Generator[Event, None, int]:
        """Retrieve a pair; returns its value size."""
        span = self.device.tracer.op("retrieve")
        try:
            ncommands = yield from self._preamble(key, span)
            try:
                value_bytes = yield from self.device.retrieve(
                    key, ncommands=ncommands, span=span
                )
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(key_bytes=len(key))
        return value_bytes

    def delete(self, key: bytes) -> Generator[Event, None, None]:
        """Delete a pair."""
        span = self.device.tracer.op("delete")
        try:
            ncommands = yield from self._preamble(key, span)
            try:
                yield from self.device.delete(key, ncommands=ncommands, span=span)
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(key_bytes=len(key))

    def exist(self, key: bytes) -> Generator[Event, None, bool]:
        """Membership query; returns the device's verdict."""
        span = self.device.tracer.op("exist")
        try:
            ncommands = yield from self._preamble(key, span)
            try:
                present = yield from self.device.exist(
                    key, ncommands=ncommands, span=span
                )
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(key_bytes=len(key))
        return present

    def iterate(self, prefix4: bytes, limit: int = 1024):
        """Prefix iteration (the SNIA iterator surface); returns keys."""
        span = self.device.tracer.op("iterate")
        try:
            self.driver.cpu.charge(self.component, self.LIBRARY_CPU_US)
            with span.phase("nvme"):
                yield from self.driver.submit(1, self.sync, self.component)
            try:
                keys = yield from self.device.iterate(
                    prefix4, limit, ncommands=1, span=span
                )
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish()
        return keys
