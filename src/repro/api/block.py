"""Direct block I/O API (the paper's block-SSD direct-access path).

Wraps a :class:`~repro.blockftl.device.BlockSSD` with the same driver
model the KV API uses, so host CPU and submission-path costs are charged
identically and device comparisons are apples-to-apples.  Block commands
always fit one NVMe submission entry.

Device errors surface as the :mod:`repro.errors` exceptions with an
``nvme_status`` attribute attached (the completion-queue status a real
driver would report), after the driver accounts the error completion.
"""

from __future__ import annotations

from typing import Generator

from repro.blockftl.device import BlockSSD
from repro.errors import DeviceError
from repro.nvme.command import status_for_error
from repro.nvme.driver import KernelDeviceDriver
from repro.sim.engine import Environment, Event


class BlockDeviceAPI:
    """Host-side entry point for direct reads/writes on a block SSD."""

    LIBRARY_CPU_US = 1.0

    def __init__(
        self,
        env: Environment,
        device: BlockSSD,
        driver: KernelDeviceDriver,
        sync: bool = False,
        component: str = "block-api",
    ) -> None:
        self.env = env
        self.device = device
        self.driver = driver
        self.sync = sync
        self.component = component

    def _fail(self, exc: DeviceError) -> None:
        """Account an error completion and tag the exception with it."""
        status = status_for_error(exc)
        exc.nvme_status = status
        self.driver.complete(1, self.component, status=status)

    def write(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Direct write (timed host-to-completion process)."""
        span = self.device.tracer.op("write")
        try:
            self.driver.cpu.charge(self.component, self.LIBRARY_CPU_US)
            with span.phase("nvme"):
                yield from self.driver.submit(1, self.sync, self.component)
            try:
                yield from self.device.write(offset, nbytes, span=span)
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(nbytes=nbytes)

    def read(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Direct read."""
        span = self.device.tracer.op("read")
        try:
            self.driver.cpu.charge(self.component, self.LIBRARY_CPU_US)
            with span.phase("nvme"):
                yield from self.driver.submit(1, self.sync, self.component)
            try:
                yield from self.device.read(offset, nbytes, span=span)
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(nbytes=nbytes)

    def deallocate(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """TRIM a range."""
        span = self.device.tracer.op("deallocate")
        try:
            self.driver.cpu.charge(self.component, self.LIBRARY_CPU_US)
            with span.phase("nvme"):
                yield from self.driver.submit(1, self.sync, self.component)
            try:
                yield from self.device.deallocate(offset, nbytes, span=span)
            except DeviceError as exc:
                self._fail(exc)
                raise
            self.driver.complete(1, self.component)
        finally:
            span.finish(nbytes=nbytes)
