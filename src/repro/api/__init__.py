"""Host-facing device APIs: the SNIA KVS library and direct block I/O."""

from repro.api.block import BlockDeviceAPI
from repro.api.kvs import KVStoreAPI

__all__ = ["BlockDeviceAPI", "KVStoreAPI"]
