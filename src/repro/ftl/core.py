"""The shared FTL device core: GC engine, write pipeline, telemetry.

The paper's methodology is to run two firmware personalities — KV and
block — on *identical* hardware so every observed difference is
attributable to FTL policy, not substrate.  :class:`FtlCore` is the code
form of that guarantee: a single implementation of everything both
personalities must share —

* the **garbage-collection engine** — victim selection through the
  :mod:`repro.ftl.victim` policies, the over-provisioning watermark that
  triggers background collection, and the ``block_allowance``
  foreground/background arbitration that produces the paper's Fig. 6
  stall troughs;
* the **write pipeline** — flush workers that batch buffered payloads
  into page programs, linger-timer aging for partial batches, and the
  ``drain()`` barrier experiments use between setup and measurement;
* **telemetry** — a unified :class:`DeviceStats` struct that both
  devices report through, so figures and benchmarks never read
  personality-specific attributes.

A personality plugs in only what genuinely differs (blob packing and a
hash index for KV; LBA mapping and sector batching for block) by
implementing a small duck-typed hook protocol:

``live_bytes() -> int``
    Bytes of live host data (occupancy accounting).
``peek_flush() -> Optional[Tuple[int, float]]``
    ``(pending_bytes, oldest_arrival_us)`` of queued payloads, or
    ``None`` when nothing awaits flushing.
``pop_flush_batch() -> Optional[FlushBatch]``
    Remove up to one page worth of queued payloads, in arrival order.
``commit_flush(batch, block, page) -> None``
    Bind a programmed batch into the personality's mapping; payloads
    superseded while in flight must be invalidated against ``block``.
``gc_eligible(block_index) -> bool``
    Whether GC may collect the block (KV fences its index region).
``gc_census(victim) -> List[GcItem]``
    Live payloads residing in the victim at collection start.
``gc_relocate(item, victim, target, new_page, slot) -> bool``
    Rebind one payload to its relocated copy; return ``False`` if the
    payload died between census and program (the core then accounts the
    relocated copy dead instead).
``gc_cleanup(victim) -> None``
    Personality bookkeeping after relocation, before the erase.

Adding a third personality (ZNS, host-managed FTL, ...) means
implementing these eight hooks — not forking the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.errors import ConfigurationError
from repro.flash.nand import BlockState, FlashArray
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import select_victim
from repro.ftl.writebuffer import WriteBuffer
from repro.metrics.counters import DeviceCounters
from repro.sim.engine import Environment, Event
from repro.sim.signal import Signal
from repro.units import ceil_div

#: GC policies the core can dispatch to (mirrors ``ftl.victim``).
VICTIM_POLICIES = ("greedy", "cost_benefit")


@dataclass
class DeviceStats(DeviceCounters):
    """Unified device telemetry: counters + space books + stall time.

    Extends the S.M.A.R.T.-style :class:`DeviceCounters` with the three
    quantities the figures and benches previously read through
    personality-specific attributes:

    * flash-operation totals (timed reads/programs/erases, fed by the
      :class:`~repro.flash.nand.FlashArray` sink);
    * space accounting compatible with
      :class:`~repro.metrics.space.SpaceAccountant` (Fig. 7's SAF);
    * stall time — write-buffer admission waits plus free-block
      allowance waits (the Fig. 6 foreground-GC mechanism).

    ``snapshot``/``delta`` are inherited generically, so experiment
    before/after deltas cover every field here too.
    """

    # -- space accounting (SpaceAccountant-compatible) -------------------
    app_key_bytes: int = 0
    app_value_bytes: int = 0
    device_bytes: int = 0
    # -- timed flash operations ------------------------------------------
    flash_reads: int = 0
    flash_programs: int = 0
    flash_erases: int = 0
    #: Summed service time of timed flash ops (die + channel occupancy);
    #: cross-checks the trace subsystem's flash timeline spans.
    flash_busy_us: float = 0.0
    # -- stall telemetry --------------------------------------------------
    #: Time host writers spent blocked on buffer admission.
    buffer_stall_us: float = 0.0
    #: Flush/GC waits on the free-block floor (count and total time).
    allowance_stalls: int = 0
    allowance_stall_us: float = 0.0
    #: Victim block index per GC run, aligned with ``gc_events``.
    gc_victims: List[int] = field(default_factory=list)

    def record_store(
        self, key_bytes: int, value_bytes: int, device_bytes: int
    ) -> None:
        """Account one stored object: application sizes vs device footprint."""
        if min(key_bytes, value_bytes, device_bytes) < 0:
            raise ValueError("space accounting sizes must be >= 0")
        self.app_key_bytes += key_bytes
        self.app_value_bytes += value_bytes
        self.device_bytes += device_bytes

    def record_remove(
        self, key_bytes: int, value_bytes: int, device_bytes: int
    ) -> None:
        """Account removal (overwrite/delete) of a stored object."""
        self.app_key_bytes -= key_bytes
        self.app_value_bytes -= value_bytes
        self.device_bytes -= device_bytes
        if min(self.app_key_bytes, self.app_value_bytes, self.device_bytes) < 0:
            raise ValueError("space accounting went negative; unmatched remove")

    @property
    def app_bytes(self) -> int:
        """Application bytes: keys plus values."""
        return self.app_key_bytes + self.app_value_bytes

    def amplification(self) -> float:
        """Device bytes / application bytes (key+value denominator)."""
        if self.app_bytes == 0:
            raise ValueError("no application bytes recorded")
        return self.device_bytes / self.app_bytes

    def amplification_value_only(self) -> float:
        """Device bytes / value bytes (the paper's most pessimistic view)."""
        if self.app_value_bytes == 0:
            raise ValueError("no application value bytes recorded")
        return self.device_bytes / self.app_value_bytes

    # Canonical SAF name used by figures; ``amplification`` kept for the
    # SpaceAccountant-era call sites.
    space_amplification = amplification

    def stall_time_us(self) -> float:
        """Total host-visible stall time (buffer + allowance waits)."""
        return self.buffer_stall_us + self.allowance_stall_us


@dataclass(frozen=True)
class GcItem:
    """One live payload found in a GC victim during census.

    ``ident`` is opaque to the core — the personality round-trips it back
    through ``gc_relocate`` to find and rebind its own mapping entry.
    """

    ident: object
    page: int
    nbytes: int


@dataclass
class FlushBatch:
    """One page worth of payloads popped from a personality's queue."""

    items: List[object]
    #: Live payload bytes (GC valid-byte accounting for the program).
    payload_bytes: int
    #: Bytes crossing the channel (full page, or less for partial pages).
    transfer_bytes: int


class FtlCore:
    """Shared device substrate both firmware personalities compose.

    Owns the free-block pool, allocation streams, write buffer, flush
    workers, the GC worker, and the :class:`DeviceStats` sink.  The
    hosting personality is consulted only through the hook protocol
    documented in the module docstring.
    """

    def __init__(
        self,
        env: Environment,
        array: FlashArray,
        personality: object,
        *,
        stream_width: int,
        write_buffer_bytes: int,
        flush_linger_us: float,
        gc_threshold_fraction: float,
        gc_reserve_blocks: int,
        page_payload_bytes: int,
        user_capacity_bytes: int,
        gc_victim_policy: str = "greedy",
        stats: Optional[DeviceStats] = None,
        tracer: object = None,
        name: str = "ftl",
    ) -> None:
        if gc_victim_policy not in VICTIM_POLICIES:
            raise ConfigurationError(
                f"unknown GC victim policy {gc_victim_policy!r}; "
                f"expected one of {VICTIM_POLICIES}"
            )
        if page_payload_bytes < 1:
            raise ConfigurationError("page payload must be >= 1 byte")
        self.env = env
        self.array = array
        self.personality = personality
        self.name = name
        self.stats = stats if stats is not None else DeviceStats()
        #: Optional span tracer for flush/GC timeline spans.
        self.tracer = tracer
        self.flush_linger_us = flush_linger_us
        self.gc_reserve_blocks = gc_reserve_blocks
        self.gc_victim_policy = gc_victim_policy
        #: Usable payload bytes per programmed page (below ``page_bytes``
        #: for the KV personality, which reserves per-page recovery area).
        self.page_payload_bytes = page_payload_bytes
        self.user_capacity_bytes = user_capacity_bytes

        # The pool collects only FREE blocks, so a personality that fences
        # off regions (the KV index area) marks them CLOSED before
        # constructing the core.
        self.pool = FreeBlockPool(array)
        self.buffer = WriteBuffer(
            env, write_buffer_bytes, name=f"{name}.buffer", stats=self.stats
        )
        self.write_stream = AllocationStream(
            array, self.pool, stream_width, name=f"{name}.data"
        )
        # The GC stream stays narrow: each open block it rotates across is
        # a block taken from the reserve GC itself depends on, and a wide
        # frontier can swallow the whole reserve and deadlock reclamation.
        self.gc_stream = AllocationStream(array, self.pool, 2, name=f"{name}.gc")

        self._dirty = Signal(env, f"{name}.dirty")
        self._space = Signal(env, f"{name}.space")
        self._gc_wakeup = Signal(env, f"{name}.gcwake")
        self.gc_threshold_blocks = max(
            gc_reserve_blocks + 2,
            int(array.geometry.total_blocks * gc_threshold_fraction),
        )
        for worker in range(stream_width):
            env.process(self._flush_worker(), name=f"{name}.flush{worker}")
        env.process(self._gc_worker(), name=f"{name}.gc")

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes currently holding live host data."""
        return self.personality.live_bytes()

    def occupancy_fraction(self) -> float:
        """Live data as a fraction of user capacity."""
        return self.occupied_bytes / self.user_capacity_bytes

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return len(self.pool)

    # ------------------------------------------------------------------
    # write pipeline
    # ------------------------------------------------------------------

    def kick_flush(self, pending_bytes: int, went_nonempty: bool) -> None:
        """Wake flush workers when the queue state warrants it.

        Workers wake on the empty->non-empty transition, when a full page
        of payload exists, and under buffer pressure; anything between
        rides the linger timer of an already-awake worker.
        """
        if (
            went_nonempty
            or pending_bytes >= self.page_payload_bytes
            or self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        ):
            self._dirty.notify_all()

    def _take_batch(self) -> Optional[FlushBatch]:
        peeked = self.personality.peek_flush()
        if peeked is None:
            return None
        pending_bytes, oldest_arrival_us = peeked
        buffer_pressure = (
            self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        )
        aged = self.env.now - oldest_arrival_us >= self.flush_linger_us
        if pending_bytes < self.page_payload_bytes and not (aged or buffer_pressure):
            return None
        return self.personality.pop_flush_batch()

    def _flush_worker(self) -> Generator[Event, None, None]:
        while True:
            batch = self._take_batch()
            if batch is None:
                if self.personality.peek_flush() is not None:
                    # Partial batch aging: poll on the linger timer.
                    yield self.env.any_of(
                        [
                            self._dirty.wait(),
                            self.env.timeout(self.flush_linger_us),
                        ]
                    )
                else:
                    # Nothing queued: sleep until a write enqueues work.
                    # (Pure signal wait — idle pollers would otherwise
                    # dominate the event stream whenever the device crawls
                    # through a GC stall.)
                    yield self._dirty.wait()
                continue
            tracer = self.tracer
            trace = tracer is not None and tracer.wants("flush")
            started = self.env.now if trace else 0.0
            yield from self.block_allowance(for_gc=False)
            block = self.write_stream.next_slot()
            if len(self.pool) < self.gc_threshold_blocks:
                self._gc_wakeup.notify_all()
            page = yield from self.array.program(
                block, batch.transfer_bytes, batch.payload_bytes
            )
            self.personality.commit_flush(batch, block, page)
            self.buffer.drain(batch.payload_bytes)
            if trace:
                tracer.complete(
                    "flush", "flush.program", "flush",
                    self.env.now - started,
                    args={"bytes": batch.payload_bytes, "block": block},
                )

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all accepted writes reach flash."""
        while self.personality.peek_flush() is not None or self.buffer.occupied_bytes:
            yield self.env.timeout(self.flush_linger_us)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def block_allowance(self, for_gc: bool) -> Generator[Event, None, None]:
        """Wait until the free pool can serve this allocation class.

        Host flushes wait above the GC reserve; GC's own allocations may
        dig into it down to the last block.  A waiting flush is exactly
        what makes the next collection *foreground*.
        """
        floor = 0 if for_gc else self.gc_reserve_blocks
        started: Optional[float] = None
        while len(self.pool) <= floor:
            if started is None:
                started = self.env.now
                self.stats.allowance_stalls += 1
            self._gc_wakeup.notify_all()
            yield self._space.wait()
        if started is not None:
            self.stats.allowance_stall_us += self.env.now - started
            tracer = self.tracer
            if tracer is not None and tracer.wants("gc"):
                tracer.complete(
                    "stall", "allowance.stall", "gc",
                    self.env.now - started,
                    args={"for_gc": for_gc},
                )

    def gc_page_benefit(self, block_index: int) -> int:
        """Pages freed net of pages consumed by relocating ``block_index``."""
        valid = self.array.blocks[block_index].valid_bytes
        pages_needed = ceil_div(valid, self.page_payload_bytes) if valid else 0
        return self.array.geometry.pages_per_block - pages_needed

    def has_reclaimable_victim(self) -> bool:
        """Whether any eligible closed block would yield net pages to GC."""
        eligible = self.personality.gc_eligible
        for block_index, info in enumerate(self.array.blocks):
            if info.state is not BlockState.CLOSED:
                continue
            if not eligible(block_index):
                continue
            if self.gc_page_benefit(block_index) >= 1:
                return True
        return False

    def select_victim(self) -> Optional[int]:
        """Pick the next GC victim under the configured policy."""
        return select_victim(
            self.array, self.gc_victim_policy, eligible=self.personality.gc_eligible
        )

    def _gc_worker(self) -> Generator[Event, None, None]:
        while True:
            if len(self.pool) < self.gc_threshold_blocks:
                yield from self._collect_once()
            else:
                yield self.env.any_of(
                    [self._gc_wakeup.wait(), self.env.timeout(2000.0)]
                )

    def _collect_once(self) -> Generator[Event, None, None]:
        victim = self.select_victim()
        if victim is None:
            yield self.env.timeout(200.0)
            return
        critical = len(self.pool) <= self.gc_reserve_blocks
        if self.gc_page_benefit(victim) < (1 if critical else 2):
            # Relocating this victim would consume as many pages as it
            # frees; wait for invalidations instead of churning.
            yield self.env.timeout(2000.0)
            return
        foreground = self._space.waiting > 0 or critical
        self.stats.gc_runs += 1
        if foreground:
            self.stats.foreground_gc_runs += 1
        self.stats.gc_events.append((self.env.now, foreground))
        self.stats.gc_victims.append(victim)
        tracer = self.tracer
        trace = tracer is not None and tracer.wants("gc")
        collect_started = self.env.now
        if trace:
            tracer.instant(
                "gc", "gc.select", "gc",
                args={
                    "victim": victim,
                    "benefit_pages": self.gc_page_benefit(victim),
                    "foreground": foreground,
                },
            )

        live = self.personality.gc_census(victim)
        pages = sorted({item.page for item in live})
        if pages:
            read_procs = [
                self.env.process(
                    self.array.read(victim, page, self.array.geometry.page_bytes)
                )
                for page in pages
            ]
            yield self.env.all_of(read_procs)

        relocated_bytes = 0
        position = 0
        while position < len(live):
            # First-fit in census order into one page's payload area; for
            # uniform payloads (block personality) this degenerates to
            # fixed slots-per-page groups.
            group: List[GcItem] = []
            room = self.page_payload_bytes
            while position < len(live) and live[position].nbytes <= room:
                group.append(live[position])
                room -= live[position].nbytes
                position += 1
            if not group:  # pragma: no cover - payloads never exceed a page
                raise ConfigurationError("unpackable GC payload")
            yield from self.block_allowance(for_gc=True)
            target = self.gc_stream.next_slot()
            nbytes = sum(item.nbytes for item in group)
            new_page = yield from self.array.program(
                target, self.array.geometry.page_bytes, nbytes
            )
            for slot, item in enumerate(group):
                if self.personality.gc_relocate(item, victim, target, new_page, slot):
                    self.array.invalidate(victim, item.nbytes)
                    relocated_bytes += item.nbytes
                else:
                    # Invalidated between census and program: the fresh
                    # copy is dead on arrival.
                    self.array.invalidate(target, item.nbytes)
        self.personality.gc_cleanup(victim)
        if self.array.blocks[victim].valid_bytes != 0:
            # Concurrent invalidations should have zeroed it; any residue
            # means unmatched accounting, which we surface loudly.
            raise ConfigurationError(
                f"victim {victim} kept {self.array.blocks[victim].valid_bytes}B "
                "valid after relocation"
            )
        yield from self.array.erase(victim)
        self.pool.push(victim)
        self.stats.gc_relocated_bytes += relocated_bytes
        self.stats.gc_erased_blocks += 1
        self._space.notify_all()
        if trace:
            tracer.complete(
                "gc", "gc.collect", "gc",
                self.env.now - collect_started,
                args={
                    "victim": victim,
                    "relocated_bytes": relocated_bytes,
                    "foreground": foreground,
                },
            )
