"""The shared FTL device core: GC engine, write pipeline, telemetry.

The paper's methodology is to run two firmware personalities — KV and
block — on *identical* hardware so every observed difference is
attributable to FTL policy, not substrate.  :class:`FtlCore` is the code
form of that guarantee: a single implementation of everything both
personalities must share —

* the **garbage-collection engine** — victim selection through the
  :mod:`repro.ftl.victim` policies, the over-provisioning watermark that
  triggers background collection, and the ``block_allowance``
  foreground/background arbitration that produces the paper's Fig. 6
  stall troughs;
* the **write pipeline** — flush workers that batch buffered payloads
  into page programs, linger-timer aging for partial batches, and the
  ``drain()`` barrier experiments use between setup and measurement;
* **telemetry** — a unified :class:`DeviceStats` struct that both
  devices report through, so figures and benchmarks never read
  personality-specific attributes.

A personality plugs in only what genuinely differs (blob packing and a
hash index for KV; LBA mapping and sector batching for block) by
implementing a small duck-typed hook protocol:

``live_bytes() -> int``
    Bytes of live host data (occupancy accounting).
``peek_flush() -> Optional[Tuple[int, float]]``
    ``(pending_bytes, oldest_arrival_us)`` of queued payloads, or
    ``None`` when nothing awaits flushing.
``pop_flush_batch() -> Optional[FlushBatch]``
    Remove up to one page worth of queued payloads, in arrival order.
``commit_flush(batch, block, page) -> None``
    Bind a programmed batch into the personality's mapping; payloads
    superseded while in flight must be invalidated against ``block``.
``gc_eligible(block_index) -> bool``
    Whether GC may collect the block (KV fences its index region).
``gc_census(victim) -> List[GcItem]``
    Live payloads residing in the victim at collection start.
``gc_relocate(item, victim, target, new_page, slot) -> bool``
    Rebind one payload to its relocated copy; return ``False`` if the
    payload died between census and program (the core then accounts the
    relocated copy dead instead).
``gc_cleanup(victim) -> None``
    Personality bookkeeping after relocation, before the erase.
``mapping_view() -> Iterable[Tuple[object, int, int, int]]``
    Every live mapping entry as ``(ident, block, page, nbytes)`` — the
    runtime invariant checker's ground truth (only consulted when the
    device is built with ``invariants=True``).

Adding a third personality (ZNS, host-managed FTL, ...) means
implementing these nine hooks — not forking the engine.

**Runtime invariants** (``invariants=True``): after every GC cycle,
defective-block retirement, and flush drain the core cross-checks the
personality's mapping against the flash array and the free pool — no
ident mapped twice, per-block valid bytes equal to the mapping's view,
and page/pool conservation (FREE blocks exactly the pooled ones, valid
bytes never exceeding programmed payload capacity).  Violations raise
:class:`~repro.errors.InvariantViolation`.  The check is O(live data)
per call, so it is a debug/test mode, not a production default.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from repro.errors import (
    ConfigurationError,
    DeviceReadOnlyError,
    EraseFailError,
    InvariantViolation,
    ProgramFailError,
    UncorrectableReadError,
)
from repro.faults.model import ReadResult
from repro.flash.nand import BlockState, FlashArray
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import select_victim
from repro.ftl.writebuffer import WriteBuffer
from repro.metrics.counters import DeviceCounters
from repro.sim.engine import Environment, Event
from repro.sim.signal import Signal
from repro.trace.tracer import NULL_SPAN, Tracer
from repro.units import ceil_div

#: GC policies the core can dispatch to (mirrors ``ftl.victim``).
VICTIM_POLICIES = ("greedy", "cost_benefit")


@dataclass
class DeviceStats(DeviceCounters):
    """Unified device telemetry: counters + space books + stall time.

    Extends the S.M.A.R.T.-style :class:`DeviceCounters` with the three
    quantities the figures and benches previously read through
    personality-specific attributes:

    * flash-operation totals (timed reads/programs/erases, fed by the
      :class:`~repro.flash.nand.FlashArray` sink);
    * space accounting compatible with
      :class:`~repro.metrics.space.SpaceAccountant` (Fig. 7's SAF);
    * stall time — write-buffer admission waits plus free-block
      allowance waits (the Fig. 6 foreground-GC mechanism).

    ``snapshot``/``delta`` are inherited generically, so experiment
    before/after deltas cover every field here too.
    """

    # -- space accounting (SpaceAccountant-compatible) -------------------
    app_key_bytes: int = 0
    app_value_bytes: int = 0
    device_bytes: int = 0
    # -- timed flash operations ------------------------------------------
    flash_reads: int = 0
    flash_programs: int = 0
    flash_erases: int = 0
    #: Summed service time of timed flash ops (die + channel occupancy);
    #: cross-checks the trace subsystem's flash timeline spans.
    flash_busy_us: float = 0.0
    # -- stall telemetry --------------------------------------------------
    #: Time host writers spent blocked on buffer admission.
    buffer_stall_us: float = 0.0
    #: Flush/GC waits on the free-block floor (count and total time).
    allowance_stalls: int = 0
    allowance_stall_us: float = 0.0
    #: Victim block index per GC run, aligned with ``gc_events``.
    gc_victims: List[int] = field(default_factory=list)
    # -- reliability / recovery -------------------------------------------
    #: Read-retry steps issued (each costs a backoff plus a re-read).
    read_retries: int = 0
    #: Reads that needed retries but ultimately returned good data.
    corrected_reads: int = 0
    #: Reads that stayed bad through every retry (host-visible media error).
    uncorrectable_reads: int = 0
    #: Page programs that failed their status check.
    program_fails: int = 0
    #: Block erases that failed (the block is retired).
    erase_fails: int = 0
    #: Failed programs redirected to a fresh block.
    reallocations: int = 0
    #: Grown-defect blocks permanently withdrawn from allocation.
    retired_blocks: int = 0
    #: Time spent in media-error recovery (retries, backoff, reprograms).
    recovery_us: float = 0.0

    def record_store(
        self, key_bytes: int, value_bytes: int, device_bytes: int
    ) -> None:
        """Account one stored object: application sizes vs device footprint."""
        if min(key_bytes, value_bytes, device_bytes) < 0:
            raise ValueError("space accounting sizes must be >= 0")
        self.app_key_bytes += key_bytes
        self.app_value_bytes += value_bytes
        self.device_bytes += device_bytes

    def record_remove(
        self, key_bytes: int, value_bytes: int, device_bytes: int
    ) -> None:
        """Account removal (overwrite/delete) of a stored object."""
        self.app_key_bytes -= key_bytes
        self.app_value_bytes -= value_bytes
        self.device_bytes -= device_bytes
        if min(self.app_key_bytes, self.app_value_bytes, self.device_bytes) < 0:
            raise ValueError("space accounting went negative; unmatched remove")

    @property
    def app_bytes(self) -> int:
        """Application bytes: keys plus values."""
        return self.app_key_bytes + self.app_value_bytes

    def amplification(self) -> float:
        """Device bytes / application bytes (key+value denominator)."""
        if self.app_bytes == 0:
            raise ValueError("no application bytes recorded")
        return self.device_bytes / self.app_bytes

    def amplification_value_only(self) -> float:
        """Device bytes / value bytes (the paper's most pessimistic view)."""
        if self.app_value_bytes == 0:
            raise ValueError("no application value bytes recorded")
        return self.device_bytes / self.app_value_bytes

    # Canonical SAF name used by figures; ``amplification`` kept for the
    # SpaceAccountant-era call sites.
    space_amplification = amplification

    def stall_time_us(self) -> float:
        """Total host-visible stall time (buffer + allowance waits)."""
        return self.buffer_stall_us + self.allowance_stall_us


@dataclass(frozen=True)
class GcItem:
    """One live payload found in a GC victim during census.

    ``ident`` is opaque to the core — the personality round-trips it back
    through ``gc_relocate`` to find and rebind its own mapping entry.
    """

    ident: object
    page: int
    nbytes: int


@dataclass
class FlushBatch:
    """One page worth of payloads popped from a personality's queue."""

    items: List[object]
    #: Live payload bytes (GC valid-byte accounting for the program).
    payload_bytes: int
    #: Bytes crossing the channel (full page, or less for partial pages).
    transfer_bytes: int


class Personality(Protocol):
    """The hook protocol a hosting personality implements for the core.

    The nine hooks the module docstring documents, as a structural type:
    any object with these methods works — both shipped personalities
    (:class:`~repro.kvftl.device.KVSSD`,
    :class:`~repro.blockftl.device.BlockSSD`) and test stubs.
    """

    def live_bytes(self) -> int:
        """Total live payload bytes across the personality's mapping."""
        ...

    def peek_flush(self) -> Optional[Tuple[int, float]]:
        """(pending bytes, age of oldest) of the flush queue, or ``None``."""
        ...

    def pop_flush_batch(self) -> Optional[FlushBatch]:
        """Pop up to one page worth of queued payloads."""
        ...

    def commit_flush(self, batch: FlushBatch, block: int, page: int) -> None:
        """Bind a programmed batch's payloads to their flash location."""
        ...

    def gc_eligible(self, block_index: int) -> bool:
        """Whether GC may pick this block as a victim."""
        ...

    def gc_census(self, victim: int) -> List[GcItem]:
        """Every live payload currently resident in ``victim``."""
        ...

    def gc_relocate(self, item: GcItem, victim: int, target: int,
                    new_page: int, slot: int) -> bool:
        """Rebind one relocated payload; ``False`` if it died in flight."""
        ...

    def gc_cleanup(self, victim: int) -> None:
        """Drop personality-side state for a fully collected block."""
        ...

    def mapping_view(self) -> Iterable[Tuple[object, int, int, int]]:
        """Every live mapping as ``(ident, block, page, nbytes)``.

        Consumed only by :meth:`FtlCore.check_invariants`; idents must be
        unique and hashable.
        """
        ...


class FtlCore:
    """Shared device substrate both firmware personalities compose.

    Owns the free-block pool, allocation streams, write buffer, flush
    workers, the GC worker, and the :class:`DeviceStats` sink.  The
    hosting personality is consulted only through the hook protocol
    documented in the module docstring.
    """

    def __init__(
        self,
        env: Environment,
        array: FlashArray,
        personality: Personality,
        *,
        stream_width: int,
        write_buffer_bytes: int,
        flush_linger_us: float,
        gc_threshold_fraction: float,
        gc_reserve_blocks: int,
        page_payload_bytes: int,
        user_capacity_bytes: int,
        gc_victim_policy: str = "greedy",
        spare_block_limit: Optional[int] = None,
        stats: Optional[DeviceStats] = None,
        tracer: Optional[Tracer] = None,
        invariants: bool = False,
        name: str = "ftl",
    ) -> None:
        if gc_victim_policy not in VICTIM_POLICIES:
            raise ConfigurationError(
                f"unknown GC victim policy {gc_victim_policy!r}; "
                f"expected one of {VICTIM_POLICIES}"
            )
        if page_payload_bytes < 1:
            raise ConfigurationError("page payload must be >= 1 byte")
        self.env = env
        self.array = array
        self.personality = personality
        self.name = name
        self.stats = stats if stats is not None else DeviceStats()
        #: Optional span tracer for flush/GC timeline spans.
        self.tracer = tracer
        #: Runtime invariant checking (debug/test mode; O(live data)).
        self.invariants = invariants
        self.flush_linger_us = flush_linger_us
        self.gc_reserve_blocks = gc_reserve_blocks
        self.gc_victim_policy = gc_victim_policy
        #: Usable payload bytes per programmed page (below ``page_bytes``
        #: for the KV personality, which reserves per-page recovery area).
        self.page_payload_bytes = page_payload_bytes
        self.user_capacity_bytes = user_capacity_bytes

        # The pool collects only FREE blocks, so a personality that fences
        # off regions (the KV index area) marks them CLOSED before
        # constructing the core.
        self.pool = FreeBlockPool(array)
        self.buffer = WriteBuffer(
            env, write_buffer_bytes, name=f"{name}.buffer", stats=self.stats
        )
        self.write_stream = AllocationStream(
            array, self.pool, stream_width, name=f"{name}.data"
        )
        # The GC stream stays narrow: each open block it rotates across is
        # a block taken from the reserve GC itself depends on, and a wide
        # frontier can swallow the whole reserve and deadlock reclamation.
        self.gc_stream = AllocationStream(array, self.pool, 2, name=f"{name}.gc")

        # -- reliability state ------------------------------------------
        # Grown defects consume the over-provisioning spares; past this
        # budget the device can no longer guarantee GC headroom and
        # degrades to read-only rather than corrupting its invariants.
        if spare_block_limit is None:
            spare_block_limit = max(
                gc_reserve_blocks, array.geometry.total_blocks // 64
            )
        if spare_block_limit < 1:
            raise ConfigurationError("spare_block_limit must be >= 1")
        self.spare_block_limit = spare_block_limit
        #: Once set, every new write is refused with DeviceReadOnlyError.
        self.read_only = False
        #: Blocks permanently retired (mirrors ``pool.retired``).
        self.grown_defects: Set[int] = set()
        #: Defective blocks awaiting retirement by the GC worker (their
        #: live data must be relocated off them first).
        self._retire_queue: Deque[int] = deque()
        self._retire_pending: Set[int] = set()

        self._dirty = Signal(env, f"{name}.dirty")
        self._space = Signal(env, f"{name}.space")
        self._gc_wakeup = Signal(env, f"{name}.gcwake")
        self.gc_threshold_blocks = max(
            gc_reserve_blocks + 2,
            int(array.geometry.total_blocks * gc_threshold_fraction),
        )
        for worker in range(stream_width):
            env.process(self._flush_worker(), name=f"{name}.flush{worker}")
        env.process(self._gc_worker(), name=f"{name}.gc")

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes currently holding live host data."""
        return self.personality.live_bytes()

    def occupancy_fraction(self) -> float:
        """Live data as a fraction of user capacity."""
        return self.occupied_bytes / self.user_capacity_bytes

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return len(self.pool)

    # ------------------------------------------------------------------
    # write pipeline
    # ------------------------------------------------------------------

    def kick_flush(self, pending_bytes: int, went_nonempty: bool) -> None:
        """Wake flush workers when the queue state warrants it.

        Workers wake on the empty->non-empty transition, when a full page
        of payload exists, and under buffer pressure; anything between
        rides the linger timer of an already-awake worker.
        """
        if (
            went_nonempty
            or pending_bytes >= self.page_payload_bytes
            or self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        ):
            self._dirty.notify_all()

    def _take_batch(self) -> Optional[FlushBatch]:
        peeked = self.personality.peek_flush()
        if peeked is None:
            return None
        pending_bytes, oldest_arrival_us = peeked
        buffer_pressure = (
            self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        )
        aged = self.env.now - oldest_arrival_us >= self.flush_linger_us
        if pending_bytes < self.page_payload_bytes and not (aged or buffer_pressure):
            return None
        return self.personality.pop_flush_batch()

    def _flush_worker(self) -> Generator[Event, None, None]:
        while True:
            batch = self._take_batch()
            if batch is None:
                if self.personality.peek_flush() is not None:
                    # Partial batch aging: poll on the linger timer.
                    yield self.env.any_of(
                        [
                            self._dirty.wait(),
                            self.env.timeout(self.flush_linger_us),
                        ]
                    )
                else:
                    # Nothing queued: sleep until a write enqueues work.
                    # (Pure signal wait — idle pollers would otherwise
                    # dominate the event stream whenever the device crawls
                    # through a GC stall.)
                    yield self._dirty.wait()
                continue
            tracer = self.tracer
            trace = tracer is not None and tracer.wants("flush")
            started = self.env.now if trace else 0.0
            block, page = yield from self._program_slot(
                self.write_stream, False, batch.transfer_bytes,
                batch.payload_bytes,
            )
            self.personality.commit_flush(batch, block, page)
            self.buffer.drain(batch.payload_bytes)
            if trace:
                tracer.complete(
                    "flush", "flush.program", "flush",
                    self.env.now - started,
                    args={"bytes": batch.payload_bytes, "block": block},
                )

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all accepted writes reach flash."""
        while self.personality.peek_flush() is not None or self.buffer.occupied_bytes:
            yield self.env.timeout(self.flush_linger_us)
        self.check_invariants("drain")

    # ------------------------------------------------------------------
    # runtime invariants
    # ------------------------------------------------------------------

    def check_invariants(self, context: str = "explicit") -> None:
        """Cross-check mapping, valid-byte accounting, and the free pool.

        No-op unless the core was built with ``invariants=True``.  Runs
        at scheduling points where the pipeline is quiescent for the
        state it checks (GC end, retirement end, drain end) — every
        mutation of mapping + valid bytes is atomic between yields, so
        the three views must agree exactly:

        I1
            No ident appears twice in the personality's
            ``mapping_view()`` (a double-mapped payload would be counted
            live twice and survive GC as a ghost).
        I2
            Per block, the mapping's live bytes equal the flash array's
            ``valid_bytes`` — GC victim scoring reads the latter, the
            personality relocates from the former; drift between them
            corrupts collection.
        I3
            Conservation: FREE blocks are exactly the pooled blocks
            (minus grown defects, which may never be either), and per
            block ``0 <= valid_bytes <= programmed payload capacity``
            with FREE blocks fully reset — i.e. free/valid/invalid page
            accounting sums to the block's capacity.
        """
        if not self.invariants:
            return
        blocks = self.array.blocks
        per_block: Dict[int, int] = {}
        seen: Set[object] = set()
        for ident, block, page, nbytes in self.personality.mapping_view():
            if ident in seen:
                raise InvariantViolation(
                    f"{self.name}/{context}: ident {ident!r} mapped twice"
                )
            seen.add(ident)
            if not 0 <= block < len(blocks):
                raise InvariantViolation(
                    f"{self.name}/{context}: ident {ident!r} mapped to "
                    f"nonexistent block {block}"
                )
            info = blocks[block]
            if info.state is BlockState.FREE:
                raise InvariantViolation(
                    f"{self.name}/{context}: ident {ident!r} mapped to "
                    f"FREE block {block}"
                )
            if not 0 <= page < info.next_page:
                raise InvariantViolation(
                    f"{self.name}/{context}: ident {ident!r} mapped to "
                    f"unwritten page {page} of block {block} "
                    f"(next_page={info.next_page})"
                )
            if nbytes <= 0:
                raise InvariantViolation(
                    f"{self.name}/{context}: ident {ident!r} maps "
                    f"{nbytes} bytes"
                )
            per_block[block] = per_block.get(block, 0) + nbytes
        page_cap = self.page_payload_bytes
        pages_per_block = self.array.geometry.pages_per_block
        n_free = 0
        for index, info in enumerate(blocks):
            mapped = per_block.get(index, 0)
            if mapped != info.valid_bytes:
                raise InvariantViolation(
                    f"{self.name}/{context}: block {index} has "
                    f"valid_bytes={info.valid_bytes} but the mapping "
                    f"holds {mapped} live bytes there"
                )
            if info.state is BlockState.FREE:
                n_free += 1
                if index in self.pool.retired:
                    raise InvariantViolation(
                        f"{self.name}/{context}: retired block {index} "
                        "is FREE"
                    )
                if info.next_page != 0 or info.valid_bytes != 0:
                    raise InvariantViolation(
                        f"{self.name}/{context}: FREE block {index} not "
                        f"reset (next_page={info.next_page}, "
                        f"valid_bytes={info.valid_bytes})"
                    )
            if not 0 <= info.next_page <= pages_per_block:
                raise InvariantViolation(
                    f"{self.name}/{context}: block {index} next_page="
                    f"{info.next_page} outside [0, {pages_per_block}]"
                )
            if info.valid_bytes > info.next_page * page_cap:
                raise InvariantViolation(
                    f"{self.name}/{context}: block {index} valid_bytes="
                    f"{info.valid_bytes} exceeds the "
                    f"{info.next_page * page_cap}B payload capacity of "
                    f"its {info.next_page} programmed pages"
                )
        if n_free != len(self.pool):
            raise InvariantViolation(
                f"{self.name}/{context}: {n_free} FREE blocks but "
                f"{len(self.pool)} pooled — a block leaked from (or "
                "into) the free pool"
            )

    # ------------------------------------------------------------------
    # media-error recovery
    # ------------------------------------------------------------------

    def ensure_writable(self) -> None:
        """Refuse new writes once grown defects exhausted the spares."""
        if self.read_only:
            raise DeviceReadOnlyError(
                f"{self.name}: {self.stats.retired_blocks} retired blocks "
                f"exceed the {self.spare_block_limit}-block spare budget; "
                "device is read-only"
            )

    def read_page(
        self,
        block: int,
        page: int,
        nbytes: int,
        span=NULL_SPAN,
        must_succeed: bool = True,
    ) -> Generator[Event, None, ReadResult]:
        """Read a page with read-retry recovery (timed).

        The first attempt charges the op span's ``flash`` phase; the
        retry loop — linearly growing backoff (re-tuned read reference
        voltages take longer each step) plus the re-read — charges
        ``recovery``, so a faulted operation's attribution still tiles
        its latency.  Raises
        :class:`~repro.errors.UncorrectableReadError` when retries run
        out, unless ``must_succeed=False`` (GC relocation reads: data
        content is not modeled, so collection proceeds and the failure
        is only counted).
        """
        with span.phase("flash"):
            result = yield from self.array.read(block, page, nbytes)
        if result.ok:
            return result
        faults = self.array.faults
        config = faults.config
        started = self.env.now
        attempt = 0
        with span.phase("recovery"):
            while not result.ok and attempt < config.max_read_retries:
                attempt += 1
                yield self.env.timeout(config.read_retry_backoff_us * attempt)
                result = yield from self.array.read(
                    block, page, nbytes, attempt=attempt
                )
        faults.finish_read(block, page)
        elapsed = self.env.now - started
        self.stats.read_retries += attempt
        self.stats.recovery_us += elapsed
        tracer = self.tracer
        if tracer is not None and tracer.wants("recovery"):
            tracer.complete(
                "recovery", "read.retry", "recovery", elapsed,
                args={"block": block, "page": page,
                      "retries": attempt, "ok": result.ok},
            )
        if result.ok:
            self.stats.corrected_reads += 1
            return ReadResult(ok=True, retries=attempt)
        self.stats.uncorrectable_reads += 1
        if must_succeed:
            raise UncorrectableReadError(
                f"uncorrectable read at block {block} page {page} after "
                f"{attempt} retries",
                block=block, page=page,
            )
        return ReadResult(ok=False, retries=attempt)

    def _program_slot(
        self, stream: AllocationStream, for_gc: bool,
        transfer_bytes: int, payload_bytes: int,
    ) -> Generator[Event, None, Tuple[int, int]]:
        """Allocate a slot and program it, reallocating on program fail.

        A failed program closes the defective block (so the stream's next
        rotation refills the slot from the pool), queues it for
        retirement, and retries on fresh blocks.  Returns the
        ``(block, page)`` that finally took the data.
        """
        attempts = 0
        while True:
            yield from self.block_allowance(for_gc=for_gc)
            block = stream.next_slot()
            if not for_gc and len(self.pool) < self.gc_threshold_blocks:
                self._gc_wakeup.notify_all()
            try:
                started = self.env.now
                page = yield from self.array.program(
                    block, transfer_bytes, payload_bytes
                )
            except ProgramFailError:
                attempts += 1
                self.stats.program_fails += 1
                self.stats.reallocations += 1
                self.stats.recovery_us += self.env.now - started
                self._mark_defective(block)
                if attempts > self.array.geometry.total_blocks:
                    # Every block failing means the fault model is set to
                    # certain failure; surface loudly instead of spinning.
                    raise
                continue
            return block, page

    def _mark_defective(self, block: int) -> None:
        """Close a program-failed block and queue it for retirement."""
        self.array.close_defective(block)
        if block not in self._retire_pending and block not in self.grown_defects:
            self._retire_pending.add(block)
            self._retire_queue.append(block)
            self._gc_wakeup.notify_all()
        tracer = self.tracer
        if tracer is not None and tracer.wants("recovery"):
            tracer.instant(
                "recovery", "block.defect", "recovery", args={"block": block}
            )

    def _note_retired(self, block: int) -> None:
        """Account a block as a grown defect; flip read-only past budget."""
        self._retire_pending.discard(block)
        if block in self.grown_defects:
            return
        self.grown_defects.add(block)
        self.pool.retire(block)
        self.stats.retired_blocks += 1
        tracer = self.tracer
        trace = tracer is not None and tracer.wants("recovery")
        if trace:
            tracer.instant(
                "recovery", "block.retire", "recovery",
                args={"block": block, "retired": self.stats.retired_blocks},
            )
        if not self.read_only and self.stats.retired_blocks > self.spare_block_limit:
            self.read_only = True
            if trace:
                tracer.instant(
                    "recovery", "device.read_only", "recovery",
                    args={"retired": self.stats.retired_blocks,
                          "spare_limit": self.spare_block_limit},
                )

    def _retire_block(self, victim: int) -> Generator[Event, None, None]:
        """Relocate live data off a defective block, then retire it.

        Runs in the GC worker ahead of regular collections; the block
        never returns to the free pool.
        """
        started = self.env.now
        yield from self._relocate_live(victim)
        self.personality.gc_cleanup(victim)
        if self.array.blocks[victim].valid_bytes != 0:
            raise ConfigurationError(
                f"defective block {victim} kept "
                f"{self.array.blocks[victim].valid_bytes}B valid after "
                "relocation"
            )
        self._note_retired(victim)
        self.stats.recovery_us += self.env.now - started
        self.check_invariants("retire")

    def _gc_read(self, victim: int, page: int) -> Generator[Event, None, None]:
        """One relocation read; uncorrectable data is counted, not fatal."""
        yield from self.read_page(
            victim, page, self.array.geometry.page_bytes, must_succeed=False
        )

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def block_allowance(self, for_gc: bool) -> Generator[Event, None, None]:
        """Wait until the free pool can serve this allocation class.

        Host flushes wait above the GC reserve; GC's own allocations may
        dig into it down to the last block.  A waiting flush is exactly
        what makes the next collection *foreground*.
        """
        floor = 0 if for_gc else self.gc_reserve_blocks
        started: Optional[float] = None
        while len(self.pool) <= floor:
            if started is None:
                started = self.env.now
                self.stats.allowance_stalls += 1
            self._gc_wakeup.notify_all()
            yield self._space.wait()
        if started is not None:
            self.stats.allowance_stall_us += self.env.now - started
            tracer = self.tracer
            if tracer is not None and tracer.wants("gc"):
                tracer.complete(
                    "stall", "allowance.stall", "gc",
                    self.env.now - started,
                    args={"for_gc": for_gc},
                )

    def gc_page_benefit(self, block_index: int) -> int:
        """Pages freed net of pages consumed by relocating ``block_index``."""
        valid = self.array.blocks[block_index].valid_bytes
        pages_needed = ceil_div(valid, self.page_payload_bytes) if valid else 0
        return self.array.geometry.pages_per_block - pages_needed

    def _gc_eligible(self, block_index: int) -> bool:
        """Personality eligibility minus retired/retiring blocks.

        A defect-closed block looks like a perfect victim once its live
        data is gone (zero valid bytes), but collecting it would erase
        and reuse a block the device has given up on.
        """
        if block_index in self.grown_defects or block_index in self._retire_pending:
            return False
        return self.personality.gc_eligible(block_index)

    def has_reclaimable_victim(self) -> bool:
        """Whether any eligible closed block would yield net pages to GC."""
        for block_index, info in enumerate(self.array.blocks):
            if info.state is not BlockState.CLOSED:
                continue
            if not self._gc_eligible(block_index):
                continue
            if self.gc_page_benefit(block_index) >= 1:
                return True
        return False

    def select_victim(self) -> Optional[int]:
        """Pick the next GC victim under the configured policy."""
        return select_victim(
            self.array, self.gc_victim_policy, eligible=self._gc_eligible
        )

    def _gc_worker(self) -> Generator[Event, None, None]:
        while True:
            if self._retire_queue:
                # Defective blocks first: their live data is at risk and
                # their pages are unusable either way.
                yield from self._retire_block(self._retire_queue.popleft())
            elif len(self.pool) < self.gc_threshold_blocks:
                yield from self._collect_once()
            else:
                yield self.env.any_of(
                    [self._gc_wakeup.wait(), self.env.timeout(2000.0)]
                )

    def _collect_once(self) -> Generator[Event, None, None]:
        victim = self.select_victim()
        if victim is None:
            yield self.env.timeout(200.0)
            return
        critical = len(self.pool) <= self.gc_reserve_blocks
        if self.gc_page_benefit(victim) < (1 if critical else 2):
            # Relocating this victim would consume as many pages as it
            # frees; wait for invalidations instead of churning.
            yield self.env.timeout(2000.0)
            return
        foreground = self._space.waiting > 0 or critical
        self.stats.gc_runs += 1
        if foreground:
            self.stats.foreground_gc_runs += 1
        self.stats.gc_events.append((self.env.now, foreground))
        self.stats.gc_victims.append(victim)
        tracer = self.tracer
        trace = tracer is not None and tracer.wants("gc")
        collect_started = self.env.now
        if trace:
            tracer.instant(
                "gc", "gc.select", "gc",
                args={
                    "victim": victim,
                    "benefit_pages": self.gc_page_benefit(victim),
                    "foreground": foreground,
                },
            )

        relocated_bytes = yield from self._relocate_live(victim)
        self.personality.gc_cleanup(victim)
        if self.array.blocks[victim].valid_bytes != 0:
            # Concurrent invalidations should have zeroed it; any residue
            # means unmatched accounting, which we surface loudly.
            raise ConfigurationError(
                f"victim {victim} kept {self.array.blocks[victim].valid_bytes}B "
                "valid after relocation"
            )
        self.stats.gc_relocated_bytes += relocated_bytes
        try:
            yield from self.array.erase(victim)
        except EraseFailError:
            # The erase consumed its time but the block never came back;
            # retire it instead of returning it to the pool.
            self.stats.erase_fails += 1
            self._note_retired(victim)
        else:
            self.pool.push(victim)
            self.stats.gc_erased_blocks += 1
            self._space.notify_all()
        if trace:
            tracer.complete(
                "gc", "gc.collect", "gc",
                self.env.now - collect_started,
                args={
                    "victim": victim,
                    "relocated_bytes": relocated_bytes,
                    "foreground": foreground,
                },
            )
        self.check_invariants("gc")

    def _relocate_live(self, victim: int) -> Generator[Event, None, int]:
        """Move every live payload out of ``victim``; returns moved bytes.

        Shared by regular collection and defective-block retirement: a
        census of live payloads, parallel page reads, then first-fit
        grouped reprograms through the GC stream with the personality
        rebinding each payload.
        """
        live = self.personality.gc_census(victim)
        pages = sorted({item.page for item in live})
        if pages:
            read_procs = [
                self.env.process(self._gc_read(victim, page))
                for page in pages
            ]
            yield self.env.all_of(read_procs)

        relocated_bytes = 0
        position = 0
        while position < len(live):
            # First-fit in census order into one page's payload area; for
            # uniform payloads (block personality) this degenerates to
            # fixed slots-per-page groups.
            group: List[GcItem] = []
            room = self.page_payload_bytes
            while position < len(live) and live[position].nbytes <= room:
                group.append(live[position])
                room -= live[position].nbytes
                position += 1
            if not group:  # pragma: no cover - payloads never exceed a page
                raise ConfigurationError("unpackable GC payload")
            nbytes = sum(item.nbytes for item in group)
            target, new_page = yield from self._program_slot(
                self.gc_stream, True, self.array.geometry.page_bytes, nbytes
            )
            for slot, item in enumerate(group):
                if self.personality.gc_relocate(item, victim, target, new_page, slot):
                    self.array.invalidate(victim, item.nbytes)
                    relocated_bytes += item.nbytes
                else:
                    # Invalidated between census and program: the fresh
                    # copy is dead on arrival.
                    self.array.invalidate(target, item.nbytes)
        return relocated_bytes
