"""Garbage-collection victim selection policies.

Both personalities choose erase victims among CLOSED blocks.  Two standard
policies are provided:

* :func:`greedy_victim` — minimum valid bytes; optimal for uniform traffic
  and what most firmware ships.
* :func:`cost_benefit_victim` — the classic (1-u)/(1+u) * age score, which
  outperforms greedy under skew; exposed for the ablation benches.

Each selector accepts an optional ``eligible`` predicate so a personality
can fence off blocks GC must never touch (the KV device's on-flash index
region) without forking the policy code.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.flash.nand import BlockState, FlashArray

#: Signature shared by all victim selectors.
VictimSelector = Callable[[FlashArray], Optional[int]]

#: Predicate deciding whether a block index may be collected at all.
EligiblePredicate = Callable[[int], bool]


def greedy_victim(
    array: FlashArray, eligible: Optional[EligiblePredicate] = None
) -> Optional[int]:
    """Closed block with the fewest valid bytes, or None if none closed."""
    best_index: Optional[int] = None
    best_valid = None
    for block_index, info in enumerate(array.blocks):
        if info.state is not BlockState.CLOSED:
            continue
        if eligible is not None and not eligible(block_index):
            continue
        if best_valid is None or info.valid_bytes < best_valid:
            best_valid = info.valid_bytes
            best_index = block_index
            if best_valid == 0:
                break
    return best_index


def cost_benefit_victim(
    array: FlashArray, eligible: Optional[EligiblePredicate] = None
) -> Optional[int]:
    """Cost-benefit selection: maximize (1-u)/(1+u) weighted by coldness.

    Without per-block modification timestamps the age term uses the erase
    count as a proxy for coldness (rarely erased ~ cold).  Degenerates to
    greedy when all erase counts match, which keeps tests deterministic.
    """
    block_bytes = array.geometry.block_bytes
    best_index: Optional[int] = None
    best_score = None
    max_erase = max((info.erase_count for info in array.blocks), default=0) + 1
    for block_index, info in enumerate(array.blocks):
        if info.state is not BlockState.CLOSED:
            continue
        if eligible is not None and not eligible(block_index):
            continue
        utilization = info.valid_bytes / block_bytes
        coldness = 1.0 + (max_erase - info.erase_count) / max_erase
        score = ((1.0 - utilization) / (1.0 + utilization)) * coldness
        if best_score is None or score > best_score:
            best_score = score
            best_index = block_index
    return best_index


def select_victim(
    array: FlashArray,
    policy: str = "greedy",
    eligible: Optional[EligiblePredicate] = None,
) -> Optional[int]:
    """Dispatch by policy name (``'greedy'`` or ``'cost_benefit'``)."""
    if policy == "greedy":
        return greedy_victim(array, eligible)
    if policy == "cost_benefit":
        return cost_benefit_victim(array, eligible)
    raise ValueError(f"unknown GC victim policy {policy!r}")
