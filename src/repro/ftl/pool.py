"""Free-block pooling and open-block page allocation.

Both firmware personalities allocate flash pages through the same two
structures:

* :class:`FreeBlockPool` — per-die queues of erased blocks, so allocation
  can stripe across dies for program parallelism.
* :class:`AllocationStream` — a set of concurrently OPEN blocks (one write
  frontier per die in use) that hands out ``(block, page)`` slots round-
  robin.  The *width* of a stream is a policy lever the paper's analysis
  turns on: the block personality keeps fewer open blocks to preserve
  spatial locality of logical blocks, while the KV personality stripes its
  hash-ordered log across every die (Sec. IV, "Impact of concurrency").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.errors import ConfigurationError, DeviceFullError
from repro.flash.nand import BlockState, FlashArray


class FreeBlockPool:
    """Tracks FREE blocks grouped by die.

    The pool is initialized from the array's current state, so priming a
    device and then building a pool stays consistent.
    """

    def __init__(self, array: FlashArray) -> None:
        self.array = array
        self._by_die: Dict[int, Deque[int]] = {
            die: deque() for die in range(array.geometry.total_dies)
        }
        self._count = 0
        #: Grown defects: blocks permanently withdrawn from allocation.
        #: They consume the over-provisioning spares — the FTL core
        #: compares this against its spare budget to decide when the
        #: device must degrade to read-only.
        self.retired: Set[int] = set()
        for block_index, info in enumerate(array.blocks):
            if info.state is BlockState.FREE:
                self.push(block_index)

    def __len__(self) -> int:
        return self._count

    def push(self, block_index: int) -> None:
        """Return an erased block to the pool."""
        if block_index in self.retired:
            raise ConfigurationError(
                f"retired block {block_index} cannot rejoin the free pool"
            )
        die = self.array.geometry.die_of_block(block_index)
        self._by_die[die].append(block_index)
        self._count += 1

    def pop(self, preferred_die: Optional[int] = None) -> int:
        """Take a free block, preferring ``preferred_die`` when stocked.

        Falls back to the best-stocked die so allocation never fails while
        any free block exists anywhere.
        """
        if self._count == 0:
            raise DeviceFullError("no free blocks available")
        if preferred_die is not None and self._by_die[preferred_die]:
            die = preferred_die
        else:
            die = max(self._by_die, key=lambda d: len(self._by_die[d]))
            if not self._by_die[die]:
                raise DeviceFullError("no free blocks available")
        self._count -= 1
        return self._by_die[die].popleft()

    def available_on_die(self, die: int) -> int:
        """Free blocks currently queued for ``die``."""
        return len(self._by_die[die])

    def reserve(self, block_index: int) -> None:
        """Remove a specific block from the pool (e.g. for an index region).

        Raises :class:`DeviceFullError` if the block is not currently
        pooled.
        """
        die = self.array.geometry.die_of_block(block_index)
        try:
            self._by_die[die].remove(block_index)
        except ValueError:
            raise DeviceFullError(
                f"block {block_index} is not in the free pool"
            ) from None
        self._count -= 1

    def retire(self, block_index: int) -> None:
        """Permanently withdraw a grown-defect block from allocation.

        The block is dropped from its die queue if it happens to be
        pooled (a FREE block can go bad on its first failed program) and
        recorded in :attr:`retired`; ``push`` refuses it from then on.
        Idempotent — retiring twice counts once.
        """
        if block_index in self.retired:
            return
        self.retired.add(block_index)
        die = self.array.geometry.die_of_block(block_index)
        try:
            self._by_die[die].remove(block_index)
        except ValueError:
            pass
        else:
            self._count -= 1


class AllocationStream:
    """A write frontier of ``width`` concurrently OPEN blocks.

    ``next_slot()`` rotates across the open blocks, opening replacements
    from the pool as blocks fill.  The rotation plus the pool's per-die
    queues yields die-striped programming for wide streams and
    locality-preserving programming for narrow ones.
    """

    def __init__(
        self,
        array: FlashArray,
        pool: FreeBlockPool,
        width: int,
        name: str = "",
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"stream width must be >= 1, got {width}")
        if width > array.geometry.total_dies:
            width = array.geometry.total_dies
        self.array = array
        self.pool = pool
        self.width = width
        self.name = name
        # next_slot() runs once per programmed page; bind the two stable
        # lookups it needs rather than chasing them per call.
        self._blocks = array.blocks
        self._pages_per_block = array.geometry.pages_per_block
        self._open_blocks: List[Optional[int]] = [None] * width
        # Pages *handed out* per slot.  Programs complete asynchronously,
        # so allocation must count reservations, not committed pages —
        # otherwise two concurrent writers can over-commit a nearly-full
        # block.
        self._reserved_pages: List[int] = [0] * width
        self._cursor = 0

    def _refill(self, slot: int) -> int:
        """Open a fresh block for rotation slot ``slot``."""
        total_dies = self.array.geometry.total_dies
        preferred_die = (slot * total_dies) // self.width
        block_index = self.pool.pop(preferred_die)
        self.array.open_block(block_index)
        self._open_blocks[slot] = block_index
        self._reserved_pages[slot] = 0
        return block_index

    def next_slot(self) -> int:
        """Return the block index whose next page should be programmed.

        The caller performs exactly one page program (timed or primed) per
        call; this method reserves that page.  A block whose pages are all
        reserved (or that was closed externally) is replaced from the free
        pool.
        """
        slot = self._cursor
        self._cursor = (self._cursor + 1) % self.width
        block_index = self._open_blocks[slot]
        reserved = self._reserved_pages
        if (
            block_index is not None
            and reserved[slot] < self._pages_per_block
            and self._blocks[block_index].state is BlockState.OPEN
        ):
            reserved[slot] += 1
            return block_index
        block_index = self._refill(slot)
        reserved[slot] = 1
        return block_index

    def cycle_headroom(self) -> int:
        """Whole rotation cycles every open block can absorb right now.

        Zero when any slot is empty, closed externally, or fully
        reserved — callers fall back to :meth:`next_slot` for one page
        and retry.  Bulk priming uses this to find how many cycles
        :meth:`reserve_cycles` may batch without hitting a refill.
        """
        headroom = self._pages_per_block
        blocks = self._blocks
        for slot in range(self.width):
            block_index = self._open_blocks[slot]
            if block_index is None or blocks[block_index].state is not BlockState.OPEN:
                return 0
            free = self._pages_per_block - self._reserved_pages[slot]
            if free < headroom:
                headroom = free
        return headroom

    def reserve_cycles(self, cycles: int) -> List[int]:
        """Reserve ``cycles`` pages on every open block in rotation order.

        Equivalent to ``cycles * width`` calls of :meth:`next_slot` when
        :meth:`cycle_headroom` reports at least ``cycles``: the same pages
        are reserved on the same blocks and the cursor ends where it
        started (whole cycles).  Returns the blocks in rotation order
        starting at the cursor — the page-program order within each cycle.
        """
        if not 1 <= cycles <= self.cycle_headroom():
            raise ConfigurationError(
                f"cannot reserve {cycles} cycles; headroom is "
                f"{self.cycle_headroom()}"
            )
        width = self.width
        cursor = self._cursor
        order: List[int] = []
        open_blocks = self._open_blocks
        reserved = self._reserved_pages
        for offset in range(width):
            slot = (cursor + offset) % width
            block_index = open_blocks[slot]
            assert block_index is not None  # guaranteed by cycle_headroom
            reserved[slot] += cycles
            order.append(block_index)
        return order

    def open_block_indices(self) -> List[int]:
        """Currently open blocks (for occupancy accounting)."""
        return [index for index in self._open_blocks if index is not None]
