"""Device DRAM write buffer.

Host writes complete once their payload is admitted to the device's DRAM
buffer; flushing to flash happens asynchronously.  This is why real SSDs
report ~30 us writes against ~700 us NAND programs — and it is also the
stall mechanism: when flash (plus garbage collection) cannot drain the
buffer as fast as the host fills it, admission blocks and host-visible
write latency collapses to flash speed.  Fig. 6's foreground-GC bandwidth
troughs emerge exactly here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Environment, Event
from repro.sim.resources import TokenBucket

if TYPE_CHECKING:
    # Lives above this layer; imported for annotations only.
    from repro.ftl.core import DeviceStats


class WriteBuffer:
    """Byte-granular admission control for the device write path.

    ``admit(nbytes)`` blocks the calling process until buffer space is
    available; the flush machinery calls ``drain(nbytes)`` once the data
    has been programmed to flash.
    """

    def __init__(
        self,
        env: Environment,
        capacity_bytes: int,
        name: str = "",
        stats: Optional["DeviceStats"] = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"write buffer capacity must be >= 1 byte, got {capacity_bytes}"
            )
        self.env = env
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._tokens = TokenBucket(env, capacity_bytes, name=f"{name}.tokens")
        self._stall_time_us = 0.0
        #: Optional DeviceStats sink mirroring admission-stall time.
        self._stats = stats

    @property
    def occupied_bytes(self) -> int:
        """Bytes currently buffered and awaiting flush."""
        return self.capacity_bytes - self._tokens.available

    @property
    def stall_time_us(self) -> float:
        """Cumulative time writers spent blocked on admission."""
        return self._stall_time_us

    def admit(self, nbytes: int) -> Generator[Event, None, None]:
        """Block until ``nbytes`` of buffer space is granted.

        Requests larger than the whole buffer are admitted in
        buffer-capacity chunks, which models how a device accepts a 2 MiB
        value through a smaller internal buffer.
        """
        env = self.env
        started = env._now
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.capacity_bytes)
            yield self._tokens.get(chunk)
            remaining -= chunk
        waited = env._now - started
        self._stall_time_us += waited
        if self._stats is not None:
            self._stats.buffer_stall_us += waited

    def drain(self, nbytes: int) -> None:
        """Release ``nbytes`` of buffer space after flash programming."""
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.capacity_bytes)
            self._tokens.put(chunk)
            remaining -= chunk
