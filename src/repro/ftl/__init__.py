"""Shared FTL substrate: device core, pooling, streams, GC victims, buffers."""

from repro.ftl.core import DeviceStats, FlushBatch, FtlCore, GcItem
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import (
    VictimSelector,
    cost_benefit_victim,
    greedy_victim,
    select_victim,
)
from repro.ftl.writebuffer import WriteBuffer

__all__ = [
    "AllocationStream",
    "DeviceStats",
    "FlushBatch",
    "FreeBlockPool",
    "FtlCore",
    "GcItem",
    "VictimSelector",
    "WriteBuffer",
    "cost_benefit_victim",
    "greedy_victim",
    "select_victim",
]
