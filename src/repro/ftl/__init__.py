"""Shared FTL substrate: block pooling, allocation streams, GC victims, buffers."""

from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import (
    VictimSelector,
    cost_benefit_victim,
    greedy_victim,
    select_victim,
)
from repro.ftl.writebuffer import WriteBuffer

__all__ = [
    "AllocationStream",
    "FreeBlockPool",
    "VictimSelector",
    "WriteBuffer",
    "cost_benefit_victim",
    "greedy_victim",
    "select_victim",
]
