"""Latency attribution: roll trace spans into per-op-type breakdowns.

:class:`LatencyBreakdown` consumes finished span records (duck-typed:
anything with ``pid``/``cat``/``name``/``ts``/``dur``/``args``) and
aggregates two independent views:

* **operation attribution** — for every ``op`` root span, the total
  latency and its per-bucket components (``nvme``, ``controller``,
  ``index``, ``buffer``, ``flash``, ...) carried in the record's
  ``args["components"]``.  Mean/p99/p999 per op type come from here,
  and the mean components sum to the mean latency because the phases
  tile each operation.
* **device-timeline category totals** — summed busy time per non-op
  category (``flash``, ``gc``, ``flush``, ``nvme``, ``host``), the view
  that cross-checks against :class:`~repro.ftl.core.DeviceStats`
  counters (``flash_busy_us``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.latency import percentile


class LatencyBreakdown:
    """Aggregates span records into per-op-type latency attribution."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._ops: Dict[str, List[Tuple[float, Dict[str, float]]]] = {}
        self._category_us: Dict[str, float] = {}
        self._category_counts: Dict[str, int] = {}

    @classmethod
    def from_records(
        cls,
        records: Iterable[object],
        pid: Optional[int] = None,
        since_us: Optional[float] = None,
        name: str = "",
    ) -> "LatencyBreakdown":
        """Build a breakdown from records, optionally filtered.

        ``pid`` restricts to one device's tracer; ``since_us`` keeps only
        spans that *started* at or after the cutoff (the measured phase
        of a run, excluding warmup traffic).
        """
        breakdown = cls(name)
        for record in records:
            if pid is not None and record.pid != pid:
                continue
            if since_us is not None and record.ts < since_us:
                continue
            breakdown.add(record)
        return breakdown

    def add(self, record: object) -> None:
        """Fold one finished span record into the aggregate."""
        cat = record.cat
        if cat == "op":
            args = record.args or {}
            components = args.get("components", {})
            self._ops.setdefault(record.name, []).append(
                (record.dur, components)
            )
        elif cat != "phase":
            # Phase children duplicate the op components; everything else
            # is device-timeline busy time.
            self._category_us[cat] = self._category_us.get(cat, 0.0) + record.dur
            self._category_counts[cat] = self._category_counts.get(cat, 0) + 1

    # -- operation attribution ------------------------------------------

    def op_types(self) -> List[str]:
        """Operation names seen, sorted."""
        return sorted(self._ops)

    def count(self, op: str) -> int:
        """Number of finished operations of type ``op``."""
        return len(self._ops.get(op, []))

    def totals_us(self, op: str) -> List[float]:
        """Raw total latencies for ``op``, in completion order."""
        return [total for total, _components in self._ops.get(op, [])]

    def mean_total_us(self, op: str) -> float:
        """Mean measured latency for ``op``."""
        totals = self.totals_us(op)
        if not totals:
            raise ValueError(f"no operations of type {op!r} recorded")
        return sum(totals) / len(totals)

    def _tail(self, op: str, fraction: float) -> float:
        totals = self.totals_us(op)
        if not totals:
            raise ValueError(f"no operations of type {op!r} recorded")
        totals.sort()
        return percentile(totals, fraction)

    def p99_total_us(self, op: str) -> float:
        """99th-percentile latency for ``op``."""
        return self._tail(op, 0.99)

    def p999_total_us(self, op: str) -> float:
        """99.9th-percentile latency for ``op``."""
        return self._tail(op, 0.999)

    def mean_components_us(self, op: str) -> Dict[str, float]:
        """Mean time per attribution bucket for ``op`` (absent => 0)."""
        entries = self._ops.get(op, [])
        if not entries:
            raise ValueError(f"no operations of type {op!r} recorded")
        sums: Dict[str, float] = {}
        for _total, components in entries:
            for bucket, value in components.items():
                sums[bucket] = sums.get(bucket, 0.0) + value
        return {bucket: value / len(entries) for bucket, value in sums.items()}

    # ``mean_components`` reads better at call sites; keep both names.
    mean_components = mean_components_us

    def buckets(self) -> List[str]:
        """Union of attribution buckets across all op types, sorted."""
        seen = set()
        for entries in self._ops.values():
            for _total, components in entries:
                seen.update(components)
        return sorted(seen)

    # -- device-timeline categories -------------------------------------

    def category_time_us(self, cat: str) -> float:
        """Total busy time recorded under a device-timeline category."""
        return self._category_us.get(cat, 0.0)

    def category_count(self, cat: str) -> int:
        """Number of device-timeline spans under ``cat``."""
        return self._category_counts.get(cat, 0)

    def categories(self) -> List[str]:
        """Device-timeline categories seen, sorted."""
        return sorted(self._category_us)

    # -- serialization ---------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict rollup: per op type, count/mean/p99/p999/components."""
        return {
            op: {
                "count": self.count(op),
                "mean_us": self.mean_total_us(op),
                "p99_us": self.p99_total_us(op),
                "p999_us": self.p999_total_us(op),
                "components_us": self.mean_components_us(op),
            }
            for op in self.op_types()
        }
