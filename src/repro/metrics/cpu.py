"""Host CPU accounting (the simulator's ``dstat``).

The paper's RQ1 headline is that KV-SSD cuts host CPU utilization by ~13x
versus RocksDB-on-block (because indexing, compaction and mapping move into
the device).  In the simulator every host-side component charges its CPU
work to a :class:`CpuAccountant`; utilization is charged-time divided by
wall (simulation) time and core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.engine import Environment


@dataclass(frozen=True)
class CpuReport:
    """Summary of host CPU consumption over an interval."""

    busy_us: float
    wall_us: float
    cores: int
    by_component: Dict[str, float]

    @property
    def utilization(self) -> float:
        """Fraction of total core-time consumed (0..cores)."""
        if self.wall_us <= 0:
            return 0.0
        return self.busy_us / self.wall_us

    @property
    def core_fraction(self) -> float:
        """Utilization normalized by core count (0..1)."""
        return self.utilization / self.cores


class CpuAccountant:
    """Accumulates host CPU time charged by software components.

    Charging is instantaneous bookkeeping — it does not advance the clock.
    Components that also *occupy* the CPU (serialize) should additionally
    hold a host CPU :class:`~repro.sim.resources.Resource`; for the paper's
    experiments the interesting quantity is consumption, not contention, so
    plain charging is the default.
    """

    def __init__(self, env: Environment, cores: int = 16) -> None:
        if cores < 1:
            raise ValueError(f"core count must be >= 1, got {cores}")
        self.env = env
        self.cores = cores
        self._busy_us = 0.0
        self._by_component: Dict[str, float] = {}
        self._epoch_us = 0.0
        self._epoch_busy = 0.0

    def charge(self, component: str, cpu_us: float) -> None:
        """Charge ``cpu_us`` of host CPU work to ``component``."""
        if cpu_us < 0:
            raise ValueError(f"negative CPU charge {cpu_us}")
        self._busy_us += cpu_us
        self._by_component[component] = (
            self._by_component.get(component, 0.0) + cpu_us
        )

    def mark_epoch(self) -> None:
        """Start a fresh measurement interval at the current time."""
        self._epoch_us = self.env.now
        self._epoch_busy = self._busy_us

    def report(self) -> CpuReport:
        """CPU report for the interval since the last :meth:`mark_epoch`."""
        return CpuReport(
            busy_us=self._busy_us - self._epoch_busy,
            wall_us=self.env.now - self._epoch_us,
            cores=self.cores,
            by_component=dict(self._by_component),
        )

    @property
    def total_busy_us(self) -> float:
        """All CPU time charged since construction."""
        return self._busy_us
