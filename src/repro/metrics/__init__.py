"""Measurement instruments: latency, bandwidth, CPU, space, device counters."""

from repro.metrics.attribution import LatencyBreakdown
from repro.metrics.bandwidth import BandwidthPoint, BandwidthTracker
from repro.metrics.counters import DeviceCounters
from repro.metrics.cpu import CpuAccountant, CpuReport
from repro.metrics.latency import (
    LatencyRecorder,
    LatencySummary,
    latency_ratio,
    percentile,
)
from repro.metrics.space import SpaceAccountant

__all__ = [
    "BandwidthPoint",
    "BandwidthTracker",
    "CpuAccountant",
    "CpuReport",
    "DeviceCounters",
    "LatencyBreakdown",
    "LatencyRecorder",
    "LatencySummary",
    "SpaceAccountant",
    "latency_ratio",
    "percentile",
]
