"""Device-level event counters (the simulator's S.M.A.R.T. / NVMe-CLI view).

Both firmware personalities expose a :class:`DeviceCounters` with garbage
collection activity, host-attributed traffic, and derived quantities such
as write amplification.  Experiments snapshot counters around a measurement
phase and report deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class DeviceCounters:
    """Cumulative FTL-level counters."""

    host_reads: int = 0
    host_writes: int = 0
    host_read_bytes: int = 0
    host_write_bytes: int = 0
    gc_runs: int = 0
    foreground_gc_runs: int = 0
    gc_relocated_bytes: int = 0
    gc_erased_blocks: int = 0
    index_flash_reads: int = 0
    index_flash_writes: int = 0
    #: (time_us, was_foreground) for every GC run, for time-series overlays.
    gc_events: List[Tuple[float, bool]] = field(default_factory=list)

    def snapshot(self) -> "DeviceCounters":
        """Copy for before/after deltas."""
        clone = DeviceCounters(
            host_reads=self.host_reads,
            host_writes=self.host_writes,
            host_read_bytes=self.host_read_bytes,
            host_write_bytes=self.host_write_bytes,
            gc_runs=self.gc_runs,
            foreground_gc_runs=self.foreground_gc_runs,
            gc_relocated_bytes=self.gc_relocated_bytes,
            gc_erased_blocks=self.gc_erased_blocks,
            index_flash_reads=self.index_flash_reads,
            index_flash_writes=self.index_flash_writes,
        )
        clone.gc_events = list(self.gc_events)
        return clone

    def delta(self, earlier: "DeviceCounters") -> "DeviceCounters":
        """Counter difference ``self - earlier``."""
        diff = DeviceCounters(
            host_reads=self.host_reads - earlier.host_reads,
            host_writes=self.host_writes - earlier.host_writes,
            host_read_bytes=self.host_read_bytes - earlier.host_read_bytes,
            host_write_bytes=self.host_write_bytes - earlier.host_write_bytes,
            gc_runs=self.gc_runs - earlier.gc_runs,
            foreground_gc_runs=(
                self.foreground_gc_runs - earlier.foreground_gc_runs
            ),
            gc_relocated_bytes=(
                self.gc_relocated_bytes - earlier.gc_relocated_bytes
            ),
            gc_erased_blocks=self.gc_erased_blocks - earlier.gc_erased_blocks,
            index_flash_reads=self.index_flash_reads - earlier.index_flash_reads,
            index_flash_writes=(
                self.index_flash_writes - earlier.index_flash_writes
            ),
        )
        diff.gc_events = self.gc_events[len(earlier.gc_events):]
        return diff

    def write_amplification(self) -> float:
        """(host + GC-relocated bytes) / host bytes; 1.0 when idle."""
        if self.host_write_bytes == 0:
            return 1.0
        moved = self.host_write_bytes + self.gc_relocated_bytes
        return moved / self.host_write_bytes
