"""Device-level event counters (the simulator's S.M.A.R.T. / NVMe-CLI view).

Both firmware personalities expose a :class:`DeviceCounters` with garbage
collection activity, host-attributed traffic, and derived quantities such
as write amplification.  Experiments snapshot counters around a measurement
phase and report deltas.

``snapshot``/``delta`` operate over the dataclass fields generically so
subclasses (the FTL core's richer ``DeviceStats``) inherit correct
before/after semantics without re-listing every field: numeric fields
subtract, list fields carry the tail appended since the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Tuple, TypeVar

CountersT = TypeVar("CountersT", bound="DeviceCounters")


@dataclass
class DeviceCounters:
    """Cumulative FTL-level counters."""

    host_reads: int = 0
    host_writes: int = 0
    host_read_bytes: int = 0
    host_write_bytes: int = 0
    gc_runs: int = 0
    foreground_gc_runs: int = 0
    gc_relocated_bytes: int = 0
    gc_erased_blocks: int = 0
    index_flash_reads: int = 0
    index_flash_writes: int = 0
    #: (time_us, was_foreground) for every GC run, for time-series overlays.
    gc_events: List[Tuple[float, bool]] = field(default_factory=list)

    def snapshot(self: CountersT) -> CountersT:
        """Copy for before/after deltas (lists are shallow-copied)."""
        clone = type(self)()
        for spec in fields(self):
            value = getattr(self, spec.name)
            setattr(clone, spec.name, list(value) if isinstance(value, list) else value)
        return clone

    def delta(self: CountersT, earlier: CountersT) -> CountersT:
        """Counter difference ``self - earlier``.

        Event lists keep only the entries recorded after ``earlier`` was
        snapshotted (appends-only semantics).
        """
        diff = type(self)()
        for spec in fields(self):
            value = getattr(self, spec.name)
            before = getattr(earlier, spec.name)
            if isinstance(value, list):
                setattr(diff, spec.name, value[len(before):])
            else:
                setattr(diff, spec.name, value - before)
        return diff

    def write_amplification(self) -> float:
        """(host + GC-relocated bytes) / host bytes; 1.0 when idle."""
        if self.host_write_bytes == 0:
            return 1.0
        moved = self.host_write_bytes + self.gc_relocated_bytes
        return moved / self.host_write_bytes
