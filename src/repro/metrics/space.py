"""Space-amplification accounting (Fig. 7).

The paper defines space amplification as *actual SSD space utilization
divided by data written by the application*.  Application bytes are counted
as key + value (we also expose a value-only view, since the paper's
"up to 20x" headline matches the value-only denominator for tiny values).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SpaceAccountant:
    """Tracks application-written bytes against device-consumed bytes."""

    app_key_bytes: int = 0
    app_value_bytes: int = 0
    device_bytes: int = 0

    def record_store(self, key_bytes: int, value_bytes: int, device_bytes: int) -> None:
        """Account one stored object: application sizes vs device footprint."""
        if min(key_bytes, value_bytes, device_bytes) < 0:
            raise ValueError("space accounting sizes must be >= 0")
        self.app_key_bytes += key_bytes
        self.app_value_bytes += value_bytes
        self.device_bytes += device_bytes

    def record_remove(self, key_bytes: int, value_bytes: int, device_bytes: int) -> None:
        """Account removal (overwrite/delete) of a previously stored object."""
        self.app_key_bytes -= key_bytes
        self.app_value_bytes -= value_bytes
        self.device_bytes -= device_bytes
        if min(self.app_key_bytes, self.app_value_bytes, self.device_bytes) < 0:
            raise ValueError("space accounting went negative; unmatched remove")

    @property
    def app_bytes(self) -> int:
        """Application bytes: keys plus values."""
        return self.app_key_bytes + self.app_value_bytes

    def amplification(self) -> float:
        """Device bytes / application bytes (key+value denominator)."""
        if self.app_bytes == 0:
            raise ValueError("no application bytes recorded")
        return self.device_bytes / self.app_bytes

    def amplification_value_only(self) -> float:
        """Device bytes / value bytes (the paper's most pessimistic view)."""
        if self.app_value_bytes == 0:
            raise ValueError("no application value bytes recorded")
        return self.device_bytes / self.app_value_bytes
