"""Latency recording and summary statistics.

:class:`LatencyRecorder` collects per-operation latencies (microseconds)
and produces the summaries the paper reports: averages, percentiles, and
distribution comparisons (the box-plot style data of Fig. 2 and the ratio
series of Fig. 4).
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Immutable summary of a latency sample set (all times in us)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: float
    stddev: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table printing and JSON-ish dumping."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "stddev": self.stddev,
        }


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample list."""
    if not sorted_samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0,1], got {fraction}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = fraction * (len(sorted_samples) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_samples[low]
    weight = position - low
    return sorted_samples[low] * (1.0 - weight) + sorted_samples[high] * weight


class LatencyRecorder:
    """Accumulates operation latencies, optionally split by operation type.

    Samples are tagged with an ``op`` label (``'insert'``, ``'read'``, ...)
    so a single recorder can serve a mixed workload run.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        # Samples live in compact C-double arrays: one object per label
        # instead of one boxed float per sample, and record() is a dict
        # probe plus an append.  array('d') round-trips Python floats
        # exactly, so summaries are bit-identical to the list-backed ones.
        self._samples: Dict[str, "array[float]"] = {}

    def record(self, latency_us: float, op: str = "all") -> None:
        """Add one latency sample under label ``op``."""
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        samples = self._samples.get(op)
        if samples is None:
            samples = self._samples[op] = array("d")
        samples.append(latency_us)

    def count(self, op: Optional[str] = None) -> int:
        """Number of samples for ``op`` (or across all labels)."""
        if op is not None:
            return len(self._samples.get(op, ()))
        return sum(len(samples) for samples in self._samples.values())

    def labels(self) -> List[str]:
        """Operation labels seen so far, sorted."""
        return sorted(self._samples)

    def samples(self, op: Optional[str] = None) -> List[float]:
        """Copy of the raw samples for ``op`` (or all labels merged)."""
        if op is not None:
            return list(self._samples.get(op, ()))
        merged: List[float] = []
        for batch in self._samples.values():
            merged.extend(batch)
        return merged

    def summary(self, op: Optional[str] = None) -> LatencySummary:
        """Summary statistics for ``op`` (or all samples merged)."""
        samples = self.samples(op)
        if not samples:
            raise ValueError(
                f"no latency samples recorded for {op!r} in {self.name!r}"
            )
        samples.sort()
        total = sum(samples)
        mean = total / len(samples)
        variance = sum((value - mean) ** 2 for value in samples) / len(samples)
        return LatencySummary(
            count=len(samples),
            mean=mean,
            minimum=samples[0],
            maximum=samples[-1],
            p50=percentile(samples, 0.50),
            p90=percentile(samples, 0.90),
            p99=percentile(samples, 0.99),
            p999=percentile(samples, 0.999),
            stddev=math.sqrt(variance),
        )

    def mean(self, op: Optional[str] = None) -> float:
        """Arithmetic mean latency for ``op`` (or all samples)."""
        samples = self.samples(op)
        if not samples:
            raise ValueError(f"no latency samples for {op!r}")
        return sum(samples) / len(samples)


def latency_ratio(numerator: LatencyRecorder, denominator: LatencyRecorder,
                  op: Optional[str] = None) -> float:
    """Mean-latency ratio between two recorders (the Fig. 4 metric).

    Values below 1.0 mean the numerator device is faster.
    """
    return numerator.mean(op) / denominator.mean(op)
