"""Windowed bandwidth tracking (the simulator's ``iostat``).

:class:`BandwidthTracker` accumulates completed-transfer byte counts into
fixed-width time windows of the simulation clock, yielding the bandwidth
time series the paper plots in Figs. 5, 6 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.units import mib_per_sec


@dataclass(frozen=True)
class BandwidthPoint:
    """One window of the bandwidth time series."""

    start_us: float
    end_us: float
    bytes_moved: int
    operations: int

    @property
    def mib_per_sec(self) -> float:
        """Window bandwidth in MiB/s."""
        return mib_per_sec(self.bytes_moved, self.end_us - self.start_us)


class BandwidthTracker:
    """Accumulates completions into consecutive fixed-width windows.

    Completions must be reported with non-decreasing timestamps (the
    single-threaded simulation guarantees this).  Empty windows between
    completions are materialized so stalls — the foreground-GC signature of
    Fig. 6 — appear as explicit zero/low points rather than being skipped.
    """

    def __init__(self, window_us: float, name: str = "") -> None:
        if window_us <= 0:
            raise ValueError(f"window width must be positive, got {window_us}")
        self.window_us = window_us
        self.name = name
        self._points: List[BandwidthPoint] = []
        self._window_start = 0.0
        self._window_bytes = 0
        self._window_ops = 0
        self._total_bytes = 0
        self._total_ops = 0
        self._last_time = 0.0

    def record(self, timestamp_us: float, nbytes: int) -> None:
        """Report a completion of ``nbytes`` at simulation time ``timestamp_us``."""
        if timestamp_us < self._last_time:
            raise ValueError(
                "bandwidth completions must be time-ordered "
                f"({timestamp_us} < {self._last_time})"
            )
        self._last_time = timestamp_us
        while timestamp_us >= self._window_start + self.window_us:
            self._close_window()
        self._window_bytes += nbytes
        self._window_ops += 1
        self._total_bytes += nbytes
        self._total_ops += 1

    def _close_window(self) -> None:
        end = self._window_start + self.window_us
        self._points.append(
            BandwidthPoint(
                start_us=self._window_start,
                end_us=end,
                bytes_moved=self._window_bytes,
                operations=self._window_ops,
            )
        )
        self._window_start = end
        self._window_bytes = 0
        self._window_ops = 0

    def finish(self, end_time_us: float) -> None:
        """Flush windows up to ``end_time_us`` (call once, after the run)."""
        while end_time_us > self._window_start + self.window_us:
            self._close_window()
        if self._window_ops or self._window_bytes:
            self._points.append(
                BandwidthPoint(
                    start_us=self._window_start,
                    end_us=max(end_time_us, self._window_start + 1e-9),
                    bytes_moved=self._window_bytes,
                    operations=self._window_ops,
                )
            )
            self._window_start = self._points[-1].end_us
            self._window_bytes = 0
            self._window_ops = 0

    @property
    def points(self) -> List[BandwidthPoint]:
        """The closed windows so far."""
        return list(self._points)

    @property
    def total_bytes(self) -> int:
        """All bytes reported, closed windows or not."""
        return self._total_bytes

    @property
    def total_operations(self) -> int:
        """All completions reported."""
        return self._total_ops

    def overall_mib_per_sec(self) -> float:
        """Mean bandwidth over the whole recording interval."""
        return mib_per_sec(self._total_bytes, self._last_time)

    def series_mib_per_sec(self) -> List[float]:
        """Bandwidth of each closed window, in MiB/s."""
        return [point.mib_per_sec for point in self._points]

    def minimum_window_mib_per_sec(self) -> float:
        """Worst closed window — the depth of a GC-induced trough."""
        series = self.series_mib_per_sec()
        if not series:
            raise ValueError("no closed bandwidth windows")
        return min(series)
