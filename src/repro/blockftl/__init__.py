"""Block-SSD firmware personality (page-mapped FTL baseline)."""

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.device import BlockSSD
from repro.blockftl.mapping import UNMAPPED, PageMap, SegmentCache

__all__ = ["BlockSSD", "BlockSSDConfig", "PageMap", "SegmentCache", "UNMAPPED"]
