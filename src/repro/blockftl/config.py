"""Configuration for the block-SSD firmware personality.

The defaults are calibrated so the simulated block device lands near the
PM983 datasheet relationships the paper leans on (Sec. IV):

* 4 KiB random read ~ 85-90 us; sequential ~ 0.8x of random;
* buffered random write ~ 25 us; sequential ~ 0.6x of random;
* latency flat versus occupancy (mapping table always DRAM-resident);
* foreground GC practically untriggerable for 4 KiB I/O at <= 80% fill.

Mechanisms behind the sequential advantage (not magic factors): mapping
*segment cache* hits make sequential lookups cheap, while random lookups
pay a serialized metadata-load step — the same host-visible asymmetry the
paper attributes to block FTLs minimizing metadata work for sequential
streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import KIB, MIB


@dataclass(frozen=True)
class BlockSSDConfig:
    """Policy and cost knobs for :class:`~repro.blockftl.device.BlockSSD`."""

    #: Mapping granularity; 4 KiB is the de-facto industry unit.
    map_unit_bytes: int = 4 * KIB
    #: Logical sector size exposed to the host.
    sector_bytes: int = 512
    #: Fraction of raw capacity hidden as over-provisioning.
    overprovision: float = 0.07
    #: Controller cores available for command processing.
    controller_cores: int = 8
    #: Write-frontier width (concurrently open blocks).  Block FTLs keep
    #: this narrow to preserve spatial locality of logical blocks; the KV
    #: personality stripes wider — the Fig. 4 concurrency asymmetry.
    stream_width: int = 8
    #: Device DRAM write buffer.
    write_buffer_bytes: int = 1 * MIB
    #: Background-GC trigger: free blocks below this fraction of all blocks.
    gc_threshold_fraction: float = 0.08
    #: Free blocks reserved for GC's own allocations (user flush waits
    #: below this floor — the foreground-GC stall point).
    gc_reserve_blocks: int = 4
    #: GC victim scoring: ``greedy`` or ``cost_benefit`` (ablation knob).
    gc_victim_policy: str = "greedy"
    #: Grown-defect budget before the device degrades to read-only;
    #: ``None`` scales with the geometry (see FtlCore).
    spare_block_limit: Optional[int] = None
    #: Runtime invariant checking after every GC cycle and drain (see
    #: :meth:`repro.ftl.core.FtlCore.check_invariants`).  O(live data)
    #: per check — a debug/test mode, off by default.
    invariants: bool = False

    # -- controller service times (microseconds) --------------------------
    #: Fixed command handling (NVMe decode, DMA setup).
    host_interface_us: float = 2.0
    #: Mapping lookup when the segment cache hits (sequential streams).
    map_hit_us: float = 3.0
    #: Extra serialized metadata-segment load on a cache miss (random).
    map_load_us: float = 15.0
    #: Mapping update on segment-cache hit / miss (writes).
    map_update_hit_us: float = 6.0
    map_update_miss_us: float = 16.0
    #: DRAM copy cost per map unit moved through the write buffer.
    buffer_copy_us: float = 5.0
    #: Serving a read straight from the write buffer.
    buffer_read_us: float = 3.0

    # -- mapping segment cache ---------------------------------------------
    #: Consecutive map units covered by one cached segment.
    segment_units: int = 1024
    #: Number of segments the controller keeps hot.
    segment_cache_entries: int = 64

    # -- flush policy -------------------------------------------------------
    #: Idle time after which a partial page is flushed anyway.
    flush_linger_us: float = 500.0

    def __post_init__(self) -> None:
        if self.map_unit_bytes % self.sector_bytes != 0:
            raise ConfigurationError(
                "map unit must be a multiple of the sector size"
            )
        if not 0.0 <= self.overprovision < 0.5:
            raise ConfigurationError(
                f"overprovision fraction {self.overprovision} outside [0, 0.5)"
            )
        if self.controller_cores < 1 or self.stream_width < 1:
            raise ConfigurationError("cores and stream width must be >= 1")
        if self.segment_units < 1 or self.segment_cache_entries < 1:
            raise ConfigurationError("segment cache parameters must be >= 1")
        if self.gc_reserve_blocks < 1:
            raise ConfigurationError("gc_reserve_blocks must be >= 1")
        if self.spare_block_limit is not None and self.spare_block_limit < 1:
            raise ConfigurationError("spare_block_limit must be >= 1")
        if not 0.0 < self.gc_threshold_fraction < 1.0:
            raise ConfigurationError("gc_threshold_fraction must be in (0, 1)")
        if self.gc_victim_policy not in ("greedy", "cost_benefit"):
            raise ConfigurationError(
                "gc_victim_policy must be 'greedy' or 'cost_benefit', "
                f"got {self.gc_victim_policy!r}"
            )
