"""Logical-to-physical mapping structures for the block personality.

:class:`PageMap` is a page-level (4 KiB-unit) mapping held entirely in
device DRAM, as on real enterprise drives — this DRAM residency is why the
paper's Fig. 3 shows block-SSD latency flat in occupancy while the KV
index degrades.  Forward and reverse tables are dense ``numpy`` arrays, so
multi-million-unit fills stay cheap in host memory.

:class:`SegmentCache` models the controller's hot window over the mapping
table: lookups within recently touched segments are cheap; lookups outside
pay a serialized metadata load.  Sequential streams stay inside one
segment, random traffic thrashes — the mechanism behind the block device's
sequential-access advantage.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import AddressError, ConfigurationError
from repro.flash.geometry import Geometry

#: Sentinel for "unmapped" in both tables.
UNMAPPED = -1


class PageMap:
    """Dense forward (unit -> slot) and reverse (slot -> unit) mapping.

    A *slot* is a map-unit-sized region of a flash page, numbered flat:
    ``slot_id = (block * pages_per_block + page) * slots_per_page + slot``.
    """

    def __init__(self, geometry: Geometry, map_unit_bytes: int, n_units: int) -> None:
        if geometry.page_bytes % map_unit_bytes != 0:
            raise ConfigurationError(
                f"page size {geometry.page_bytes} not a multiple of map unit "
                f"{map_unit_bytes}"
            )
        if n_units < 1:
            raise ConfigurationError(f"n_units must be >= 1, got {n_units}")
        self.geometry = geometry
        self.map_unit_bytes = map_unit_bytes
        self.n_units = n_units
        self.slots_per_page = geometry.page_bytes // map_unit_bytes
        total_slots = geometry.total_pages * self.slots_per_page
        self._forward = np.full(n_units, UNMAPPED, dtype=np.int64)
        self._reverse = np.full(total_slots, UNMAPPED, dtype=np.int64)
        self._mapped_units = 0

    # -- slot arithmetic -----------------------------------------------------

    def slot_id(self, block: int, page: int, slot: int) -> int:
        """Flatten a (block, page, slot) triple."""
        self.geometry.check_page(block, page)
        if not 0 <= slot < self.slots_per_page:
            raise AddressError(f"slot {slot} out of range [0,{self.slots_per_page})")
        return (block * self.geometry.pages_per_block + page) * self.slots_per_page + slot

    def unflatten(self, slot_id: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`slot_id`."""
        page_flat, slot = divmod(slot_id, self.slots_per_page)
        block, page = divmod(page_flat, self.geometry.pages_per_block)
        return block, page, slot

    # -- mapping operations ----------------------------------------------------

    @property
    def mapped_units(self) -> int:
        """Number of units currently holding a valid mapping."""
        return self._mapped_units

    def lookup(self, unit: int) -> int:
        """Forward lookup; returns flat slot id or UNMAPPED."""
        self._check_unit(unit)
        return int(self._forward[unit])

    def is_mapped(self, unit: int) -> bool:
        """Whether the unit currently points at a flash slot."""
        return self.lookup(unit) != UNMAPPED

    def bind(self, unit: int, block: int, page: int, slot: int) -> None:
        """Point ``unit`` at a physical slot (unbinding any prior mapping)."""
        self._check_unit(unit)
        new_slot = self.slot_id(block, page, slot)
        if self._reverse[new_slot] != UNMAPPED:
            raise AddressError(
                f"slot {new_slot} already holds unit {self._reverse[new_slot]}"
            )
        old_slot = self._forward[unit]
        if old_slot != UNMAPPED:
            self._reverse[old_slot] = UNMAPPED
        else:
            self._mapped_units += 1
        self._forward[unit] = new_slot
        self._reverse[new_slot] = unit

    def bind_range(self, unit_start: int, count: int, block: int, page: int) -> np.ndarray:
        """Bind ``count`` consecutive units to slots ``0..count-1`` of a page.

        Vectorized equivalent of ``count`` sequential :meth:`bind` calls
        (unit ``unit_start + i`` -> slot ``i``), the shape every
        sequential fill produces.  Returns the array of *previous* slot
        ids (``UNMAPPED`` where the unit was unbound) so callers can
        invalidate stale copies — aggregated per old block rather than
        one call per unit, which is state-identical.
        """
        if count < 1 or count > self.slots_per_page:
            raise AddressError(
                f"bind_range count {count} out of range [1, {self.slots_per_page}]"
            )
        self._check_unit(unit_start)
        self._check_unit(unit_start + count - 1)
        self.geometry.check_page(block, page)
        base = (block * self.geometry.pages_per_block + page) * self.slots_per_page
        forward = self._forward
        reverse = self._reverse
        target = reverse[base:base + count]
        if np.any(target != UNMAPPED):
            offset = int(np.argmax(target != UNMAPPED))
            raise AddressError(
                f"slot {base + offset} already holds unit {target[offset]}"
            )
        old_slots = forward[unit_start:unit_start + count].copy()
        prior = old_slots != UNMAPPED
        n_prior = int(np.count_nonzero(prior))
        if n_prior:
            reverse[old_slots[prior]] = UNMAPPED
        new_slots = np.arange(base, base + count, dtype=np.int64)
        forward[unit_start:unit_start + count] = new_slots
        reverse[base:base + count] = np.arange(
            unit_start, unit_start + count, dtype=np.int64
        )
        self._mapped_units += count - n_prior
        return old_slots

    def bind_full_pages(self, unit_start: int, page_bases: np.ndarray) -> np.ndarray:
        """Bind a run of consecutive units across many *full* pages at once.

        ``page_bases`` holds the flat slot id of slot 0 for each page (in
        program order); every page takes ``slots_per_page`` consecutive
        units.  Equivalent to ``bind_range`` per page, batched so a
        multi-hundred-thousand-unit fill costs a handful of numpy ops
        instead of one Python call per page.  Returns the previous slot
        ids for the whole run (``UNMAPPED`` where unbound).
        """
        spp = self.slots_per_page
        n = int(page_bases.size) * spp
        if n == 0:
            return np.empty(0, dtype=np.int64)
        self._check_unit(unit_start)
        self._check_unit(unit_start + n - 1)
        forward = self._forward
        reverse = self._reverse
        new_slots = (
            page_bases[:, None] + np.arange(spp, dtype=np.int64)
        ).ravel()
        target = reverse[new_slots]
        occupied = target != UNMAPPED
        if occupied.any():
            offset = int(np.argmax(occupied))
            raise AddressError(
                f"slot {int(new_slots[offset])} already holds unit "
                f"{target[offset]}"
            )
        old_slots = forward[unit_start:unit_start + n].copy()
        prior = old_slots != UNMAPPED
        n_prior = int(np.count_nonzero(prior))
        if n_prior:
            reverse[old_slots[prior]] = UNMAPPED
        forward[unit_start:unit_start + n] = new_slots
        reverse[new_slots] = np.arange(
            unit_start, unit_start + n, dtype=np.int64
        )
        self._mapped_units += n - n_prior
        return old_slots

    def unbind(self, unit: int) -> int:
        """Remove the unit's mapping; returns the freed slot id.

        Raises :class:`AddressError` if the unit was not mapped.
        """
        self._check_unit(unit)
        old_slot = int(self._forward[unit])
        if old_slot == UNMAPPED:
            raise AddressError(f"unit {unit} is not mapped")
        self._forward[unit] = UNMAPPED
        self._reverse[old_slot] = UNMAPPED
        self._mapped_units -= 1
        return old_slot

    def unit_at(self, slot_id: int) -> int:
        """Reverse lookup; returns the unit stored at a slot or UNMAPPED."""
        return int(self._reverse[slot_id])

    def iter_mapped(self) -> Iterator[Tuple[int, int, int, int]]:
        """All live (unit, block, page, slot) mappings, physical order.

        The invariant checker's ground truth; O(total slots) per call,
        so it is meant for debug/test passes, not hot paths.
        """
        for slot_id in np.nonzero(self._reverse != UNMAPPED)[0]:
            block, page, slot = self.unflatten(int(slot_id))
            yield int(self._reverse[slot_id]), block, page, slot

    def live_units_in_block(self, block: int) -> List[Tuple[int, int, int]]:
        """All live (unit, page, slot) triples within ``block`` — GC's view."""
        self.geometry.check_block(block)
        per_block = self.geometry.pages_per_block * self.slots_per_page
        start = block * per_block
        region = self._reverse[start:start + per_block]
        live: List[Tuple[int, int, int]] = []
        for offset in np.nonzero(region != UNMAPPED)[0]:
            page, slot = divmod(int(offset), self.slots_per_page)
            live.append((int(region[offset]), page, slot))
        return live

    def _check_unit(self, unit: int) -> None:
        if not 0 <= unit < self.n_units:
            raise AddressError(f"map unit {unit} out of range [0, {self.n_units})")


class SegmentCache:
    """LRU cache of mapping-table segments the controller keeps hot."""

    def __init__(self, segment_units: int, entries: int) -> None:
        if segment_units < 1 or entries < 1:
            raise ConfigurationError("segment cache parameters must be >= 1")
        self.segment_units = segment_units
        self.entries = entries
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def segment_of(self, unit: int) -> int:
        """Mapping-table segment covering ``unit``."""
        return unit // self.segment_units

    def access(self, unit: int) -> bool:
        """Touch the segment containing ``unit``; True on cache hit."""
        segment = self.segment_of(unit)
        if segment in self._lru:
            self._lru.move_to_end(segment)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[segment] = None
        if len(self._lru) > self.entries:
            self._lru.popitem(last=False)
        return False

    def hit_rate(self) -> float:
        """Fraction of accesses that hit, 0.0 when untouched."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
