"""The block-SSD firmware personality.

:class:`BlockSSD` composes the flash array, a page-level mapping and a
segment cache over the shared :class:`~repro.ftl.core.FtlCore` substrate
(write buffer, flush workers, garbage collector) into the device the
paper uses as its baseline (Samsung PM983 with block firmware EDA53W0Q).

Host-visible semantics:

* ``write`` completes once the payload is admitted to the device DRAM
  buffer (tens of microseconds) — flash programming happens asynchronously
  behind it.  When flash plus GC cannot keep up, admission blocks and
  host-visible write latency collapses; that is the foreground-GC stall
  mechanism of Fig. 6.
* ``read`` completes after mapping lookup and flash (or buffer) access.
* ``deallocate`` (TRIM) drops mappings so GC can reclaim space without
  relocation — the reason RocksDB-on-block never triggers foreground GC in
  the paper's Fig. 6a.

Only the LBA side lives here — unit splitting, the mapping, the segment
cache, read-modify-write, and TRIM; batching, GC and telemetry are the
core's.  Sequential versus random asymmetry is *emergent*: sequential
streams hit the mapping segment cache (cheap lookups), random traffic
misses and pays a serialized metadata load, reproducing the datasheet's
~0.8x/0.6x latency relationships without hard-coded factors.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generator, Iterator, List, Optional, Tuple

import numpy as np

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.mapping import UNMAPPED, PageMap, SegmentCache
from repro.errors import AddressError, ConfigurationError
from repro.faults.model import FaultInjector
from repro.flash.geometry import Geometry
from repro.flash.nand import FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.core import DeviceStats, FlushBatch, FtlCore, GcItem
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.trace.tracer import NULL_SPAN, Tracer


@dataclass
class _PendingUnit:
    """A dirty map unit buffered in device DRAM awaiting flush."""

    unit: int
    arrival_us: float
    sequence: int


class BlockSSD:
    """Simulated NVMe block SSD (page-mapped FTL personality)."""

    def __init__(
        self,
        env: Environment,
        geometry: Geometry,
        timing: Optional[FlashTiming] = None,
        config: Optional[BlockSSDConfig] = None,
        name: str = "block-ssd",
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.config = config or BlockSSDConfig()
        self.timing = timing or FlashTiming()
        self.stats = DeviceStats()
        #: Span tracer shared by the whole stack below this device; a
        #: disabled singleton when tracing is off, so API layers can
        #: always call ``device.tracer.op(...)``.
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.tracer.bind(env)
        #: Legacy view kept for tooling; counters live on ``stats`` now.
        self.counters = self.stats
        self.array = FlashArray(
            env, geometry, self.timing, stats=self.stats, tracer=self.tracer,
            faults=faults,
        )

        raw_bytes = geometry.capacity_bytes
        usable = int(raw_bytes * (1.0 - self.config.overprovision))
        self.map_unit = self.config.map_unit_bytes
        self.n_units = usable // self.map_unit
        if self.n_units < 1:
            raise ConfigurationError("geometry too small for one map unit")
        self.user_capacity_bytes = self.n_units * self.map_unit
        self.slots_per_page = geometry.page_bytes // self.map_unit

        self.pagemap = PageMap(geometry, self.map_unit, self.n_units)
        self.segment_cache = SegmentCache(
            self.config.segment_units, self.config.segment_cache_entries
        )
        self.core = FtlCore(
            env,
            self.array,
            self,
            stream_width=self.config.stream_width,
            write_buffer_bytes=self.config.write_buffer_bytes,
            flush_linger_us=self.config.flush_linger_us,
            gc_threshold_fraction=self.config.gc_threshold_fraction,
            gc_reserve_blocks=self.config.gc_reserve_blocks,
            page_payload_bytes=self.slots_per_page * self.map_unit,
            user_capacity_bytes=self.user_capacity_bytes,
            gc_victim_policy=self.config.gc_victim_policy,
            spare_block_limit=self.config.spare_block_limit,
            stats=self.stats,
            tracer=self.tracer,
            invariants=self.config.invariants,
            name=name,
        )
        self.pool = self.core.pool
        self.buffer = self.core.buffer
        self.controller = Resource(
            env, self.config.controller_cores, name=f"{name}.ctl"
        )
        self.map_loader = Resource(env, 1, name=f"{name}.maploader")

        self._pending: "OrderedDict[int, _PendingUnit]" = OrderedDict()
        self._latest_sequence: Dict[int, int] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def _check_range(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise AddressError(f"I/O size must be positive, got {nbytes}")
        if offset < 0 or offset + nbytes > self.user_capacity_bytes:
            raise AddressError(
                f"range [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.user_capacity_bytes}"
            )
        if offset % self.config.sector_bytes or nbytes % self.config.sector_bytes:
            raise AddressError(
                f"I/O must be {self.config.sector_bytes}B-aligned "
                f"(offset={offset}, nbytes={nbytes})"
            )

    def _split_units(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Split a byte range into (unit, offset_in_unit, length) pieces."""
        pieces: List[Tuple[int, int, int]] = []
        position = offset
        end = offset + nbytes
        while position < end:
            unit = position // self.map_unit
            in_unit = position % self.map_unit
            length = min(self.map_unit - in_unit, end - position)
            pieces.append((unit, in_unit, length))
            position += length
        return pieces

    # ------------------------------------------------------------------
    # host write path
    # ------------------------------------------------------------------

    def write(
        self, offset: int, nbytes: int, span=NULL_SPAN
    ) -> Generator[Event, None, None]:
        """Host write; completes at buffer admission (timed process).

        The commit into the flush queue happens without suspension points
        so one command's units stay adjacent in flush order — real FTLs
        keep a command's data together, and scattering it across pages
        would fan a later read of the same range across the whole array.
        ``span`` is the operation's root trace span; every suspension
        point sits in one of its attribution phases.
        """
        self._check_range(offset, nbytes)
        self.core.ensure_writable()
        with span.phase("controller"):
            yield from self.controller.serve(self.config.host_interface_us)
        pieces = self._split_units(offset, nbytes)

        # Phase 1: mapping updates and sub-unit read-modify-writes (timed).
        # Unlike lookups, mapping *updates* are journaled asynchronously
        # and do not pass through the serialized metadata loader; misses
        # still cost extra controller work.
        seen_segments = set()
        for unit, _in_unit, length in pieces:
            segment = self.segment_cache.segment_of(unit)
            if segment in seen_segments:
                hit = True  # the command pins segments it already walked
            else:
                seen_segments.add(segment)
                hit = self.segment_cache.access(unit)
            cost = (
                self.config.map_update_hit_us
                if hit
                else self.config.map_update_miss_us
            )
            with span.phase("index"):
                yield from self.controller.serve(cost)
            partial = length < self.map_unit
            slot_id = self.pagemap.lookup(unit)
            if partial and slot_id != UNMAPPED and unit not in self._pending:
                # Sub-unit update of flash-resident data: read-modify-write.
                block, page, _slot = self.pagemap.unflatten(slot_id)
                yield from self.core.read_page(
                    block, page, self.map_unit, span=span
                )

        # Phases 2+3, chunked: admit buffer space for a group of units,
        # then commit that group without suspension points.  Chunking keeps
        # each admission below buffer capacity (a whole-command admission
        # of a huge write would deadlock against its own flush) while one
        # group's units still stay adjacent in flush order.
        group_units = max(
            self.slots_per_page,
            self.buffer.capacity_bytes // (2 * self.map_unit),
        )
        for start in range(0, len(pieces), group_units):
            group = pieces[start:start + group_units]
            with span.phase("buffer"):
                yield from self.buffer.admit(len(group) * self.map_unit)
            with span.phase("controller"):
                yield from self.controller.serve(
                    self.config.buffer_copy_us * len(group)
                )
            for unit, _in_unit, _length in group:
                self._sequence += 1
                entry = self._pending.get(unit)
                if entry is not None:
                    # Coalesce with the not-yet-flushed copy.
                    self.buffer.drain(self.map_unit)
                    entry.sequence = self._sequence
                    self._latest_sequence[unit] = self._sequence
                    continue
                slot_id = self.pagemap.lookup(unit)
                if slot_id != UNMAPPED:
                    # The buffered copy supersedes the flash-resident one.
                    block, _page, _slot = self.pagemap.unflatten(slot_id)
                    self.pagemap.unbind(unit)
                    self.array.invalidate(block, self.map_unit)
                self._pending[unit] = _PendingUnit(
                    unit, self.env.now, self._sequence
                )
                self._latest_sequence[unit] = self._sequence
            self.core.kick_flush(
                len(self._pending) * self.map_unit,
                went_nonempty=len(self._pending) <= len(group),
            )
        self.stats.host_writes += 1
        self.stats.host_write_bytes += nbytes

    # ------------------------------------------------------------------
    # host read path
    # ------------------------------------------------------------------

    def read(
        self, offset: int, nbytes: int, span=NULL_SPAN
    ) -> Generator[Event, None, None]:
        """Host read (timed process)."""
        self._check_range(offset, nbytes)
        with span.phase("controller"):
            yield from self.controller.serve(self.config.host_interface_us)
        page_reads: Dict[Tuple[int, int], int] = {}
        seen_segments = set()
        for unit, _in_unit, length in self._split_units(offset, nbytes):
            segment = self.segment_cache.segment_of(unit)
            if segment in seen_segments:
                hit = True  # the command pins segments it already walked
            else:
                seen_segments.add(segment)
                hit = self.segment_cache.access(unit)
            with span.phase("index"):
                yield from self.controller.serve(self.config.map_hit_us)
                if not hit:
                    yield from self.map_loader.serve(self.config.map_load_us)
            if unit in self._pending:
                with span.phase("controller"):
                    yield from self.controller.serve(self.config.buffer_read_us)
                continue
            slot_id = self.pagemap.lookup(unit)
            if slot_id == UNMAPPED:
                # Reading never-written space: served from controller only.
                with span.phase("controller"):
                    yield from self.controller.serve(self.config.buffer_read_us)
                continue
            block, page, _slot = self.pagemap.unflatten(slot_id)
            key = (block, page)
            page_reads[key] = page_reads.get(key, 0) + length
        if page_reads:
            procs = [
                self.env.process(
                    self.core.read_page(block, page, length),
                    name=f"{self.name}.rd",
                )
                for (block, page), length in page_reads.items()
            ]
            # Parallel page reads share the op's flash phase, so any
            # retry time lands there too (per-page recovery attribution
            # would require splitting the all_of wait).
            with span.phase("flash"):
                yield self.env.all_of(procs)
        self.stats.host_reads += 1
        self.stats.host_read_bytes += nbytes

    # ------------------------------------------------------------------
    # deallocate (TRIM)
    # ------------------------------------------------------------------

    def deallocate(
        self, offset: int, nbytes: int, span=NULL_SPAN
    ) -> Generator[Event, None, None]:
        """Drop mappings for fully covered units (timed, cheap)."""
        self._check_range(offset, nbytes)
        pieces = self._split_units(offset, nbytes)
        with span.phase("controller"):
            yield from self.controller.serve(
                self.config.host_interface_us + 0.05 * len(pieces)
            )
        for unit, in_unit, length in pieces:
            if in_unit != 0 or length != self.map_unit:
                continue  # partial-unit trims are advisory no-ops
            if unit in self._pending:
                del self._pending[unit]
                self._latest_sequence.pop(unit, None)
                self.buffer.drain(self.map_unit)
            slot_id = self.pagemap.lookup(unit)
            if slot_id != UNMAPPED:
                block, _page, _slot = self.pagemap.unflatten(slot_id)
                self.pagemap.unbind(unit)
                self.array.invalidate(block, self.map_unit)

    # ------------------------------------------------------------------
    # FtlCore personality hooks: write pipeline
    # ------------------------------------------------------------------

    def live_bytes(self) -> int:
        return self.pagemap.mapped_units * self.map_unit

    def peek_flush(self) -> Optional[Tuple[int, float]]:
        if not self._pending:
            return None
        oldest = next(iter(self._pending.values()))
        return len(self._pending) * self.map_unit, oldest.arrival_us

    def pop_flush_batch(self) -> Optional[FlushBatch]:
        batch: List[_PendingUnit] = []
        while self._pending and len(batch) < self.slots_per_page:
            _unit, entry = self._pending.popitem(last=False)
            batch.append(entry)
        if not batch:
            return None
        nbytes = len(batch) * self.map_unit
        transfer = (
            self.array.geometry.page_bytes
            if len(batch) == self.slots_per_page
            else nbytes
        )
        return FlushBatch(items=batch, payload_bytes=nbytes, transfer_bytes=transfer)

    def commit_flush(self, batch: FlushBatch, block: int, page: int) -> None:
        for slot, entry in enumerate(batch.items):
            if self._latest_sequence.get(entry.unit) != entry.sequence:
                # Superseded while in flight: programmed copy is dead.
                self.array.invalidate(block, self.map_unit)
                continue
            slot_id = self.pagemap.lookup(entry.unit)
            if slot_id != UNMAPPED:
                old_block, _p, _s = self.pagemap.unflatten(slot_id)
                self.pagemap.unbind(entry.unit)
                self.array.invalidate(old_block, self.map_unit)
            self.pagemap.bind(entry.unit, block, page, slot)
            del self._latest_sequence[entry.unit]

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all buffered writes have reached flash."""
        yield from self.core.drain()

    # ------------------------------------------------------------------
    # FtlCore personality hooks: garbage collection
    # ------------------------------------------------------------------

    def gc_eligible(self, block_index: int) -> bool:
        return True

    def gc_census(self, victim: int) -> List[GcItem]:
        # ``slot_id`` here is pure arithmetic on the physical location, so
        # the expected mapping captured in ``ident`` is time-invariant —
        # a unit overwritten or trimmed mid-GC simply stops matching.
        return [
            GcItem(
                (unit, self.pagemap.slot_id(victim, page, slot)),
                page,
                self.map_unit,
            )
            for unit, page, slot in self.pagemap.live_units_in_block(victim)
        ]

    def gc_relocate(
        self, item: GcItem, victim: int, target: int, new_page: int, slot: int
    ) -> bool:
        unit, expected_slot_id = item.ident
        if self.pagemap.lookup(unit) != expected_slot_id:
            # Overwritten or trimmed while GC was in flight.
            return False
        self.pagemap.unbind(unit)
        self.pagemap.bind(unit, target, new_page, slot)
        return True

    def gc_cleanup(self, victim: int) -> None:
        # The page map carries all block-personality state; nothing to do.
        pass

    def mapping_view(self) -> Iterator[Tuple[object, int, int, int]]:
        # Invariant-checker ground truth: every mapped unit, identified
        # by its (unique) logical unit number.
        for unit, block, page, _slot in self.pagemap.iter_mapped():
            yield unit, block, page, self.map_unit

    # ------------------------------------------------------------------
    # experiment priming
    # ------------------------------------------------------------------

    def prime_sequential_fill(self, n_units: int, start_unit: int = 0) -> None:
        """Untimed sequential fill of ``n_units`` map units from ``start_unit``.

        State-identical to issuing sequential writes and draining, minus
        the simulated time.  Used to set up occupancy before a measured
        phase (Figs. 3 and 6).
        """
        if start_unit < 0 or start_unit + n_units > self.n_units:
            raise AddressError(
                f"prime range [{start_unit}, {start_unit + n_units}) outside "
                f"{self.n_units} units"
            )
        pagemap = self.pagemap
        spp = self.slots_per_page
        pages_per_block = pagemap.geometry.pages_per_block
        stream = self.core.write_stream
        next_slot = stream.next_slot
        prime_program = self.array.prime_program
        prime_program_run = self.array.prime_program_run
        page_bytes = spp * self.map_unit
        width = stream.width
        unit = start_unit
        remaining = n_units
        while remaining >= spp:
            # Batch whole rotation cycles: reserve one page per open block
            # per cycle, commit each block's page run at once, and bind the
            # whole batch's mappings with one vectorized call.  The blocks,
            # pages, and bind order are identical to the per-page path.
            cycles = min(stream.cycle_headroom(), (remaining // spp) // width)
            if cycles >= 1:
                blocks_cycle = stream.reserve_cycles(cycles)
                starts = [
                    prime_program_run(block, cycles, page_bytes)
                    for block in blocks_cycle
                ]
                first_pages = (
                    np.asarray(blocks_cycle, dtype=np.int64) * pages_per_block
                    + np.asarray(starts, dtype=np.int64)
                )
                bases = (
                    first_pages[None, :]
                    + np.arange(cycles, dtype=np.int64)[:, None]
                ).ravel() * spp
                old_slots = pagemap.bind_full_pages(unit, bases)
                self._invalidate_stale(old_slots)
                unit += cycles * width * spp
                remaining -= cycles * width * spp
                continue
            # Per-page path: rotation boundaries (a block about to close).
            block = next_slot()
            page = prime_program(block, page_bytes)
            bases = np.asarray(
                [(block * pages_per_block + page) * spp], dtype=np.int64
            )
            old_slots = pagemap.bind_full_pages(unit, bases)
            self._invalidate_stale(old_slots)
            unit += spp
            remaining -= spp
        if remaining:
            block = next_slot()
            page = prime_program(block, remaining * self.map_unit)
            old_slots = pagemap.bind_range(unit, remaining, block, page)
            self._invalidate_stale(old_slots)

    def _invalidate_stale(self, old_slots: "np.ndarray") -> None:
        """Invalidate overwritten copies, aggregated per old block.

        The aggregate per-block byte decrement equals the per-unit
        sequence of ``invalidate`` calls, so the resulting flash state is
        identical.
        """
        stale = old_slots[old_slots != UNMAPPED]
        if not stale.size:
            return
        slots_per_block = self.pagemap.slots_per_page * self.pagemap.geometry.pages_per_block
        old_blocks, counts = np.unique(stale // slots_per_block, return_counts=True)
        for old_block, n in zip(old_blocks.tolist(), counts.tolist()):
            self.array.invalidate(int(old_block), int(n) * self.map_unit)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes currently holding live host data."""
        return self.core.occupied_bytes

    def occupancy_fraction(self) -> float:
        """Live data as a fraction of user capacity."""
        return self.core.occupancy_fraction()

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return self.core.free_block_count()
