"""The block-SSD firmware personality.

:class:`BlockSSD` composes the flash array, a page-level mapping, a
segment cache, a DRAM write buffer with background flushers, and a garbage
collector into the device the paper uses as its baseline (Samsung PM983
with block firmware EDA53W0Q).

Host-visible semantics:

* ``write`` completes once the payload is admitted to the device DRAM
  buffer (tens of microseconds) — flash programming happens asynchronously
  behind it.  When flash plus GC cannot keep up, admission blocks and
  host-visible write latency collapses; that is the foreground-GC stall
  mechanism of Fig. 6.
* ``read`` completes after mapping lookup and flash (or buffer) access.
* ``deallocate`` (TRIM) drops mappings so GC can reclaim space without
  relocation — the reason RocksDB-on-block never triggers foreground GC in
  the paper's Fig. 6a.

Sequential versus random asymmetry is *emergent*: sequential streams hit
the mapping segment cache (cheap lookups), random traffic misses and pays
a serialized metadata load, reproducing the datasheet's ~0.8x/0.6x
latency relationships without hard-coded factors.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.blockftl.config import BlockSSDConfig
from repro.blockftl.mapping import UNMAPPED, PageMap, SegmentCache
from repro.errors import AddressError, ConfigurationError
from repro.flash.geometry import Geometry
from repro.flash.nand import FlashArray
from repro.flash.timing import FlashTiming
from repro.ftl.pool import AllocationStream, FreeBlockPool
from repro.ftl.victim import select_victim
from repro.ftl.writebuffer import WriteBuffer
from repro.metrics.counters import DeviceCounters
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.sim.signal import Signal


@dataclass
class _PendingUnit:
    """A dirty map unit buffered in device DRAM awaiting flush."""

    unit: int
    arrival_us: float
    sequence: int


class BlockSSD:
    """Simulated NVMe block SSD (page-mapped FTL personality)."""

    def __init__(
        self,
        env: Environment,
        geometry: Geometry,
        timing: Optional[FlashTiming] = None,
        config: Optional[BlockSSDConfig] = None,
        name: str = "block-ssd",
    ) -> None:
        self.env = env
        self.name = name
        self.config = config or BlockSSDConfig()
        self.timing = timing or FlashTiming()
        self.array = FlashArray(env, geometry, self.timing)
        self.counters = DeviceCounters()

        raw_bytes = geometry.capacity_bytes
        usable = int(raw_bytes * (1.0 - self.config.overprovision))
        self.map_unit = self.config.map_unit_bytes
        self.n_units = usable // self.map_unit
        if self.n_units < 1:
            raise ConfigurationError("geometry too small for one map unit")
        self.user_capacity_bytes = self.n_units * self.map_unit
        self.slots_per_page = geometry.page_bytes // self.map_unit

        self.pagemap = PageMap(geometry, self.map_unit, self.n_units)
        self.segment_cache = SegmentCache(
            self.config.segment_units, self.config.segment_cache_entries
        )
        self.pool = FreeBlockPool(self.array)
        self.user_stream = AllocationStream(
            self.array, self.pool, self.config.stream_width, name=f"{name}.user"
        )
        # Narrow GC frontier: see the KV device's note — a wide GC stream
        # can consume the very reserve garbage collection relies on.
        self.gc_stream = AllocationStream(
            self.array, self.pool, 2, name=f"{name}.gc"
        )
        self.buffer = WriteBuffer(
            env, self.config.write_buffer_bytes, name=f"{name}.buffer"
        )
        self.controller = Resource(
            env, self.config.controller_cores, name=f"{name}.ctl"
        )
        self.map_loader = Resource(env, 1, name=f"{name}.maploader")

        self._pending: "OrderedDict[int, _PendingUnit]" = OrderedDict()
        self._latest_sequence: Dict[int, int] = {}
        self._sequence = 0
        self._dirty = Signal(env, f"{name}.dirty")
        self._space = Signal(env, f"{name}.space")
        self._gc_wakeup = Signal(env, f"{name}.gcwake")
        self._gc_threshold_blocks = max(
            self.config.gc_reserve_blocks + 2,
            int(geometry.total_blocks * self.config.gc_threshold_fraction),
        )
        self._shutdown = False
        for worker_id in range(self.config.stream_width):
            env.process(self._flush_worker(), name=f"{name}.flush{worker_id}")
        env.process(self._gc_worker(), name=f"{name}.gc")

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def _check_range(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise AddressError(f"I/O size must be positive, got {nbytes}")
        if offset < 0 or offset + nbytes > self.user_capacity_bytes:
            raise AddressError(
                f"range [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.user_capacity_bytes}"
            )
        if offset % self.config.sector_bytes or nbytes % self.config.sector_bytes:
            raise AddressError(
                f"I/O must be {self.config.sector_bytes}B-aligned "
                f"(offset={offset}, nbytes={nbytes})"
            )

    def _split_units(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Split a byte range into (unit, offset_in_unit, length) pieces."""
        pieces: List[Tuple[int, int, int]] = []
        position = offset
        end = offset + nbytes
        while position < end:
            unit = position // self.map_unit
            in_unit = position % self.map_unit
            length = min(self.map_unit - in_unit, end - position)
            pieces.append((unit, in_unit, length))
            position += length
        return pieces

    # ------------------------------------------------------------------
    # host write path
    # ------------------------------------------------------------------

    def write(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Host write; completes at buffer admission (timed process).

        The commit into the flush queue happens without suspension points
        so one command's units stay adjacent in flush order — real FTLs
        keep a command's data together, and scattering it across pages
        would fan a later read of the same range across the whole array.
        """
        self._check_range(offset, nbytes)
        yield from self.controller.serve(self.config.host_interface_us)
        pieces = self._split_units(offset, nbytes)

        # Phase 1: mapping updates and sub-unit read-modify-writes (timed).
        # Unlike lookups, mapping *updates* are journaled asynchronously
        # and do not pass through the serialized metadata loader; misses
        # still cost extra controller work.
        seen_segments = set()
        for unit, _in_unit, length in pieces:
            segment = self.segment_cache.segment_of(unit)
            if segment in seen_segments:
                hit = True  # the command pins segments it already walked
            else:
                seen_segments.add(segment)
                hit = self.segment_cache.access(unit)
            cost = (
                self.config.map_update_hit_us
                if hit
                else self.config.map_update_miss_us
            )
            yield from self.controller.serve(cost)
            partial = length < self.map_unit
            slot_id = self.pagemap.lookup(unit)
            if partial and slot_id != UNMAPPED and unit not in self._pending:
                # Sub-unit update of flash-resident data: read-modify-write.
                block, page, _slot = self.pagemap.unflatten(slot_id)
                yield from self.array.read(block, page, self.map_unit)

        # Phases 2+3, chunked: admit buffer space for a group of units,
        # then commit that group without suspension points.  Chunking keeps
        # each admission below buffer capacity (a whole-command admission
        # of a huge write would deadlock against its own flush) while one
        # group's units still stay adjacent in flush order.
        group_units = max(
            self.slots_per_page,
            self.buffer.capacity_bytes // (2 * self.map_unit),
        )
        for start in range(0, len(pieces), group_units):
            group = pieces[start:start + group_units]
            yield from self.buffer.admit(len(group) * self.map_unit)
            yield from self.controller.serve(
                self.config.buffer_copy_us * len(group)
            )
            for unit, _in_unit, _length in group:
                self._sequence += 1
                entry = self._pending.get(unit)
                if entry is not None:
                    # Coalesce with the not-yet-flushed copy.
                    self.buffer.drain(self.map_unit)
                    entry.sequence = self._sequence
                    self._latest_sequence[unit] = self._sequence
                    continue
                slot_id = self.pagemap.lookup(unit)
                if slot_id != UNMAPPED:
                    # The buffered copy supersedes the flash-resident one.
                    block, _page, _slot = self.pagemap.unflatten(slot_id)
                    self.pagemap.unbind(unit)
                    self.array.invalidate(block, self.map_unit)
                self._pending[unit] = _PendingUnit(
                    unit, self.env.now, self._sequence
                )
                self._latest_sequence[unit] = self._sequence
            if (
                len(self._pending) <= len(group)
                or len(self._pending) >= self.slots_per_page
                or self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
            ):
                # Wake flushers on the empty->non-empty transition, for
                # page-sized batches, and under buffer pressure; stragglers
                # flush on an already-awake flusher's linger timer.
                self._dirty.notify_all()
        self.counters.host_writes += 1
        self.counters.host_write_bytes += nbytes

    # ------------------------------------------------------------------
    # host read path
    # ------------------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Host read (timed process)."""
        self._check_range(offset, nbytes)
        yield from self.controller.serve(self.config.host_interface_us)
        page_reads: Dict[Tuple[int, int], int] = {}
        seen_segments = set()
        for unit, _in_unit, length in self._split_units(offset, nbytes):
            segment = self.segment_cache.segment_of(unit)
            if segment in seen_segments:
                hit = True  # the command pins segments it already walked
            else:
                seen_segments.add(segment)
                hit = self.segment_cache.access(unit)
            yield from self.controller.serve(self.config.map_hit_us)
            if not hit:
                yield from self.map_loader.serve(self.config.map_load_us)
            if unit in self._pending:
                yield from self.controller.serve(self.config.buffer_read_us)
                continue
            slot_id = self.pagemap.lookup(unit)
            if slot_id == UNMAPPED:
                # Reading never-written space: served from controller only.
                yield from self.controller.serve(self.config.buffer_read_us)
                continue
            block, page, _slot = self.pagemap.unflatten(slot_id)
            key = (block, page)
            page_reads[key] = page_reads.get(key, 0) + length
        if page_reads:
            procs = [
                self.env.process(
                    self.array.read(block, page, length), name=f"{self.name}.rd"
                )
                for (block, page), length in page_reads.items()
            ]
            yield self.env.all_of(procs)
        self.counters.host_reads += 1
        self.counters.host_read_bytes += nbytes

    # ------------------------------------------------------------------
    # deallocate (TRIM)
    # ------------------------------------------------------------------

    def deallocate(self, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Drop mappings for fully covered units (timed, cheap)."""
        self._check_range(offset, nbytes)
        pieces = self._split_units(offset, nbytes)
        yield from self.controller.serve(
            self.config.host_interface_us + 0.05 * len(pieces)
        )
        for unit, in_unit, length in pieces:
            if in_unit != 0 or length != self.map_unit:
                continue  # partial-unit trims are advisory no-ops
            if unit in self._pending:
                del self._pending[unit]
                self._latest_sequence.pop(unit, None)
                self.buffer.drain(self.map_unit)
            slot_id = self.pagemap.lookup(unit)
            if slot_id != UNMAPPED:
                block, _page, _slot = self.pagemap.unflatten(slot_id)
                self.pagemap.unbind(unit)
                self.array.invalidate(block, self.map_unit)

    # ------------------------------------------------------------------
    # flush machinery
    # ------------------------------------------------------------------

    def _take_batch(self) -> Optional[List[_PendingUnit]]:
        if not self._pending:
            return None
        oldest = next(iter(self._pending.values()))
        buffer_pressure = (
            self.buffer.occupied_bytes >= self.buffer.capacity_bytes // 2
        )
        aged = self.env.now - oldest.arrival_us >= self.config.flush_linger_us
        if len(self._pending) < self.slots_per_page and not (aged or buffer_pressure):
            return None
        batch: List[_PendingUnit] = []
        while self._pending and len(batch) < self.slots_per_page:
            _unit, entry = self._pending.popitem(last=False)
            batch.append(entry)
        return batch

    def _flush_worker(self) -> Generator[Event, None, None]:
        while not self._shutdown:
            batch = self._take_batch()
            if batch is None:
                if self._pending:
                    yield self.env.any_of(
                        [
                            self._dirty.wait(),
                            self.env.timeout(self.config.flush_linger_us),
                        ]
                    )
                else:
                    # Pure signal wait while idle (see the KV packer note).
                    yield self._dirty.wait()
                continue
            yield from self._block_allowance(for_gc=False)
            block = self.user_stream.next_slot()
            if len(self.pool) < self._gc_threshold_blocks:
                self._gc_wakeup.notify_all()
            nbytes = len(batch) * self.map_unit
            transfer = (
                self.array.geometry.page_bytes
                if len(batch) == self.slots_per_page
                else nbytes
            )
            page = yield from self.array.program(block, transfer, nbytes)
            for slot, entry in enumerate(batch):
                if self._latest_sequence.get(entry.unit) != entry.sequence:
                    # Superseded while in flight: programmed copy is dead.
                    self.array.invalidate(block, self.map_unit)
                    continue
                slot_id = self.pagemap.lookup(entry.unit)
                if slot_id != UNMAPPED:
                    old_block, _p, _s = self.pagemap.unflatten(slot_id)
                    self.pagemap.unbind(entry.unit)
                    self.array.invalidate(old_block, self.map_unit)
                self.pagemap.bind(entry.unit, block, page, slot)
                del self._latest_sequence[entry.unit]
            self.buffer.drain(nbytes)

    def drain(self) -> Generator[Event, None, None]:
        """Wait until all buffered writes have reached flash."""
        while self._pending or self.buffer.occupied_bytes:
            yield self.env.timeout(self.config.flush_linger_us)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _block_allowance(self, for_gc: bool) -> Generator[Event, None, None]:
        """Wait until the free pool can serve this allocation class."""
        floor = 0 if for_gc else self.config.gc_reserve_blocks
        while len(self.pool) <= floor:
            self._gc_wakeup.notify_all()
            yield self._space.wait()

    def _gc_worker(self) -> Generator[Event, None, None]:
        while not self._shutdown:
            if len(self.pool) < self._gc_threshold_blocks:
                yield from self._collect_once()
            else:
                yield self.env.any_of(
                    [self._gc_wakeup.wait(), self.env.timeout(2000.0)]
                )

    def _collect_once(self) -> Generator[Event, None, None]:
        victim = select_victim(self.array)
        if victim is None:
            yield self.env.timeout(200.0)
            return
        critical = len(self.pool) <= self.config.gc_reserve_blocks
        valid_units = self.array.blocks[victim].valid_bytes // self.map_unit
        pages_needed = -(-valid_units // self.slots_per_page)
        benefit = self.array.geometry.pages_per_block - pages_needed
        if benefit < (1 if critical else 2):
            # Relocating a nearly-full block gains nothing; wait for
            # invalidations instead of churning.
            yield self.env.timeout(2000.0)
            return
        foreground = self._space.waiting > 0 or critical
        self.counters.gc_runs += 1
        if foreground:
            self.counters.foreground_gc_runs += 1
        self.counters.gc_events.append((self.env.now, foreground))

        live = self.pagemap.live_units_in_block(victim)
        if live:
            pages = sorted({page for _unit, page, _slot in live})
            read_procs = [
                self.env.process(
                    self.array.read(victim, page, self.array.geometry.page_bytes)
                )
                for page in pages
            ]
            yield self.env.all_of(read_procs)
        relocated = 0
        original_slots = {
            unit: self.pagemap.slot_id(victim, page, slot)
            for unit, page, slot in live
        }
        position = 0
        while position < len(live):
            group = live[position:position + self.slots_per_page]
            position += len(group)
            yield from self._block_allowance(for_gc=True)
            target = self.gc_stream.next_slot()
            nbytes = len(group) * self.map_unit
            page = yield from self.array.program(
                target, self.array.geometry.page_bytes, nbytes
            )
            for slot, (unit, _old_page, _old_slot) in enumerate(group):
                if self.pagemap.lookup(unit) != original_slots[unit]:
                    # Overwritten or trimmed while GC was in flight.
                    self.array.invalidate(target, self.map_unit)
                    continue
                self.pagemap.unbind(unit)
                self.array.invalidate(victim, self.map_unit)
                self.pagemap.bind(unit, target, page, slot)
                relocated += self.map_unit
        if self.array.blocks[victim].valid_bytes != 0:
            # Concurrent invalidations should have zeroed it; any residue
            # means unmatched accounting, which we surface loudly.
            raise ConfigurationError(
                f"victim {victim} kept {self.array.blocks[victim].valid_bytes}B "
                "valid after relocation"
            )
        yield from self.array.erase(victim)
        self.pool.push(victim)
        self.counters.gc_relocated_bytes += relocated
        self.counters.gc_erased_blocks += 1
        self._space.notify_all()

    # ------------------------------------------------------------------
    # experiment priming
    # ------------------------------------------------------------------

    def prime_sequential_fill(self, n_units: int, start_unit: int = 0) -> None:
        """Untimed sequential fill of ``n_units`` map units from ``start_unit``.

        State-identical to issuing sequential writes and draining, minus
        the simulated time.  Used to set up occupancy before a measured
        phase (Figs. 3 and 6).
        """
        if start_unit < 0 or start_unit + n_units > self.n_units:
            raise AddressError(
                f"prime range [{start_unit}, {start_unit + n_units}) outside "
                f"{self.n_units} units"
            )
        unit = start_unit
        remaining = n_units
        while remaining > 0:
            count = min(self.slots_per_page, remaining)
            block = self.user_stream.next_slot()
            page = self.array.prime_program(block, count * self.map_unit)
            for slot in range(count):
                target = unit + slot
                slot_id = self.pagemap.lookup(target)
                if slot_id != UNMAPPED:
                    old_block, _p, _s = self.pagemap.unflatten(slot_id)
                    self.pagemap.unbind(target)
                    self.array.invalidate(old_block, self.map_unit)
                self.pagemap.bind(target, block, page, slot)
            unit += count
            remaining -= count

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def occupied_bytes(self) -> int:
        """Device bytes currently holding live host data."""
        return self.pagemap.mapped_units * self.map_unit

    def occupancy_fraction(self) -> float:
        """Live data as a fraction of user capacity."""
        return self.occupied_bytes / self.user_capacity_bytes

    def free_block_count(self) -> int:
        """Erased blocks available for allocation."""
        return len(self.pool)
