"""Command-line interface: regenerate any paper experiment directly.

Usage::

    python -m repro fig5
    python -m repro fig fig4 --parallel 4
    python -m repro fig3 --measured-ops 2000
    python -m repro headline
    python -m repro all --parallel 2

Each subcommand runs the corresponding experiment from
:mod:`repro.core.figures` and prints the same rows/series the paper's
figure shows (the pytest benches add paper-vs-measured assertions on
top of the identical experiment functions).

``--parallel N`` fans each experiment's independent points over ``N``
worker processes; results are assembled in spec order, so the printed
figure output is byte-identical to a serial run.  Computed points land
in an on-disk cache (``.repro-cache/``, disable with ``--no-cache``)
keyed by a content hash of the cell inputs and a code-version salt, so
re-running a figure only recomputes what changed.  Cache/worker
statistics go to stderr; stdout carries only the figure output.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.core.figures import (
    fig2_end_to_end,
    fig3_index_occupancy,
    fig4_value_size_concurrency,
    fig5_packing_bandwidth,
    fig6_foreground_gc,
    fig7_space_amplification,
    fig8_key_size_bandwidth,
)
from repro.core.headline import headline_scalars
from repro.exec.runner import SweepRunner
from repro.kvbench.report import format_table, sparkline
from repro.units import KIB


def _print_fig2(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig2_end_to_end(n_ops=args.n_ops, runner=runner)
    rows = []
    for system in result.latency_us:
        for pattern, phases in result.latency_us[system].items():
            rows.append([system, pattern, phases["insert"],
                         phases["update"], phases["read"]])
    print(format_table(
        ["system", "pattern", "insert us", "update us", "read us"], rows
    ))
    print("\nhost CPU per op (us):",
          {k: round(v, 1) for k, v in result.cpu_us_per_op.items()})


def _print_fig3(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig3_index_occupancy(measured_ops=args.measured_ops, runner=runner)
    rows = []
    for device in ("kv", "block"):
        for occupancy in ("low", "high"):
            cell = result.latency_us[device][occupancy]
            rows.append([device, occupancy, cell["read"], cell["write"]])
    print(format_table(["device", "occupancy", "read us", "write us"], rows))
    print(f"\nKV degradation: write {result.degradation('kv', 'write'):.1f}x "
          f"(paper 16.4x), read {result.degradation('kv', 'read'):.1f}x "
          "(paper 2x)")


def _print_fig4(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig4_value_size_concurrency(n_ops=args.n_ops, runner=runner)
    rows = []
    for size in result.value_sizes:
        rows.append([
            f"{size / KIB:g}KiB",
            result.ratio["write"][1][size], result.ratio["read"][1][size],
            result.ratio["write"][64][size], result.ratio["read"][64][size],
        ])
    print(format_table(
        ["value", "w QD1", "r QD1", "w QD64", "r QD64"], rows
    ))
    print("\nKV/block mean-latency ratios; <1 favors the KV-SSD")


def _print_fig5(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig5_packing_bandwidth(n_ops=args.n_ops, runner=runner)
    rows = [
        [f"{size / KIB:g}KiB", result.kv_mib_s[size],
         result.block_mib_s[size], result.kv_fragments[size]]
        for size in result.value_sizes
    ]
    print(format_table(["value", "KV MiB/s", "block MiB/s", "fragments"], rows))


def _print_fig6(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig6_foreground_gc(runner=runner)
    for scenario, series in result.series.items():
        summary = result.stats_summary[scenario]
        latency = result.latency_summary[scenario]
        print(f"{scenario:<16} trough {result.trough_ratio(scenario):5.2f}  "
              f"fgGC {result.foreground_gc_runs.get(scenario, 0):4d}  "
              f"WAF {summary['waf']:5.2f}  "
              f"stall {summary['stall_ms']:8.1f}ms  "
              f"p99 {latency['p99'] / 1000.0:7.1f}ms  "
              f"p999 {latency['p999'] / 1000.0:7.1f}ms  "
              f"{sparkline(series[:48])}")


def _print_fig7(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig7_space_amplification(runner=runner)
    rows = [
        [f"{size}B", result.sa["kvssd"][size], result.kv_analytic[size],
         result.sa["aerospike"][size], result.sa["rocksdb"][size]]
        for size in result.value_sizes
    ]
    print(format_table(
        ["value", "KV-SSD", "KV analytic", "Aerospike", "RocksDB"], rows
    ))
    print(f"\nmax KVPs at 3.84 TB: {result.max_kvps_full_scale / 1e9:.2f}B "
          "(paper ~3.1B)")


def _print_fig8(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    result = fig8_key_size_bandwidth(n_ops=args.n_ops, runner=runner)
    rows = [
        [f"{k}B", result.commands[k], result.mib_s["sync"][k],
         result.mib_s["async"][k]]
        for k in result.key_sizes
    ]
    print(format_table(["key", "cmds", "sync MiB/s", "async MiB/s"], rows))
    print(f"\ncliff past 16B: async {result.cliff_ratio('async'):.2f}x "
          "(paper ~0.53x)")


def _print_headline(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    del runner  # scalar summaries; nothing to fan out
    result = headline_scalars()
    print(format_table(["metric", "paper", "measured"], result.rows()))


def _print_trace(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    # Imported lazily so the figure subcommands never pay for the trace
    # machinery (and vice versa).
    from repro.trace.export import format_breakdown, write_chrome_trace
    from repro.trace.run import run_traced

    report = run_traced(fig=args.fig, n_ops=args.trace_ops, runner=runner)
    print(f"scenario: {args.fig} — {report.scenario.focus}")
    for personality in ("kv-ssd", "block-ssd"):
        run = report.runs[personality]
        print(f"\n[{personality}] {run.completed_ops} ops in "
              f"{run.elapsed_us / 1000.0:.1f}ms simulated")
        print(format_breakdown(report.breakdowns[personality]))
    events = write_chrome_trace(report.collector, args.out)
    print(f"\nwrote {events} events to {args.out} "
          "(load in https://ui.perfetto.dev or chrome://tracing)")
    if report.collector.dropped:
        print(f"warning: ring buffer dropped {report.collector.dropped} "
              "spans; raise max_spans for a complete timeline")


def _print_faults(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    # Lazy import, like trace: figure subcommands never pay for it.
    from repro.faults.run import run_fault_sweep, write_sweep_csv

    try:
        rates = [float(r) for r in args.fault_rates.split(",") if r.strip()]
    except ValueError:
        raise SystemExit(f"bad --fault-rates value: {args.fault_rates!r}")
    points = run_fault_sweep(rates=rates, n_ops=args.n_ops,
                             seed=args.fault_seed, runner=runner)
    rows = []
    for point in points:
        latency = point.latency_summary()
        stats = point.stats
        rows.append([
            point.personality, f"{point.rate:g}",
            point.run.completed_ops, point.run.failed_ops,
            round(latency["p50"], 1), round(latency["p99"], 1),
            stats.read_retries, stats.corrected_reads,
            stats.uncorrectable_reads, stats.program_fails,
            stats.retired_blocks,
            "RO" if point.read_only else "rw",
        ])
    print(format_table(
        ["system", "rate", "ops", "fail", "p50 us", "p99 us",
         "retry", "corr", "uncorr", "pfail", "retired", "mode"],
        rows,
    ))
    print("\nrate = per-read corrected-error probability; rarer events "
          "(uncorrectable, program/erase fail) scale down from it")
    if args.faults_out:
        written = write_sweep_csv(points, args.faults_out)
        print(f"wrote {written} sweep rows to {args.faults_out}")


def _print_cluster(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    # Lazy imports, like trace/faults: figure subcommands never pay for
    # the cluster machinery.
    from repro.cluster import ClusterSpec, DegradeEvent, TenantSpec, run_cluster

    if args.smoke:
        # CI-shaped smoke: 2 shards, R=2, one forced mid-run read-only
        # degradation.  Exits non-zero if any acknowledged write is lost.
        n_ops = args.cluster_ops
        spec = ClusterSpec(
            shards=2, replication=2, partitions=8, vnodes=8,
            tenants=(
                TenantSpec(name="ta", workload="A", n_ops=n_ops,
                           population=2 * n_ops, seed=11),
            ),
            degrade=(DegradeEvent(shard=0, at_op=n_ops // 2),),
            rebalance_window_ops=max(1, n_ops // 4),
            seed=17,
        )
        result = run_cluster(spec, runner)
        print(format_table(
            ["shards", "R", "ops", "fail", "drain", "verified", "missing",
             "degraded", "kops"],
            [[spec.shards, spec.replication, result.completed_ops,
              result.failed_ops, result.drain_ops, result.verify_checked,
              result.verify_missing, result.degraded_shards,
              round(result.throughput_kops(), 2)]],
        ))
        print(f"fingerprint: {result.fingerprint()}")
        if not result.zero_lost_writes:
            raise SystemExit("cluster smoke: lost acknowledged writes")
        print("zero lost acknowledged writes")
        return

    from repro.core.figures import (
        cluster_rebalance_tail,
        cluster_replication_cost,
        cluster_shard_scaling,
    )

    scaling = cluster_shard_scaling(n_ops=args.cluster_ops, runner=runner)
    print("-- throughput vs shard count --")
    print(format_table(
        ["shards", "kops", "kops/shard", "router share", "ops"],
        [[n, round(scaling.throughput_kops[n], 2),
          round(scaling.per_shard_kops[n], 2),
          round(scaling.router_share[n], 4), scaling.completed_ops[n]]
         for n in scaling.shard_counts],
    ))
    print(f"scaling {min(scaling.shard_counts)}->{max(scaling.shard_counts)} "
          f"shards: {scaling.scaling_ratio():.2f}x\n")

    rebalance = cluster_rebalance_tail(n_ops=args.cluster_ops, runner=runner)
    print("-- tail latency through a rebalance window --")
    print(format_table(
        ["phase", "ops", "mean us", "p99 us", "p999 us"],
        [[label, int(cell["count"]), round(cell["mean"], 1),
          round(cell["p99"], 1), round(cell["p999"], 1)]
         for label, cell in rebalance.phases.items()],
    ))
    print(f"p99 inflation during rebalance: "
          f"{rebalance.tail_inflation('p99'):.2f}x  "
          f"(drain {rebalance.drain_ops} ops, "
          f"router share {rebalance.router_share:.4f}, "
          f"{rebalance.trace_spans} spans, "
          f"zero-lost={rebalance.zero_lost_writes})\n")

    replication = cluster_replication_cost(n_ops=args.cluster_ops,
                                           runner=runner)
    print("-- replication-factor cost --")
    print(format_table(
        ["R", "kops", "routed ops", "flash programs", "write cost",
         "read p99 us"],
        [[r, round(replication.throughput_kops[r], 2),
          replication.routed_ops[r], replication.flash_programs[r],
          round(replication.write_cost(r), 2),
          round(replication.read_p99[r], 1)]
         for r in replication.factors],
    ))


def _print_frontend(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    # Lazy import, like trace/faults/cluster: figure subcommands never
    # pay for the serving-frontend machinery.
    from repro.frontend.run import frontend_load_sweep

    try:
        loads = tuple(
            float(x) for x in args.loads.split(",") if x.strip()
        )
    except ValueError:
        raise SystemExit(f"bad --loads value: {args.loads!r}")
    if not loads or any(load <= 0.0 for load in loads):
        raise SystemExit(f"bad --loads value: {args.loads!r}")
    result = frontend_load_sweep(
        loads_kops=loads,
        n_requests=args.frontend_ops,
        scheduler=args.scheduler,
        runner=runner,
    )
    rows = []
    for load in result.loads_kops:
        row: List[object] = [f"{load:g}"]
        for cls in result.class_names:
            row.extend([
                round(result.p50[cls][load], 1),
                round(result.p99[cls][load], 1),
                round(result.p999[cls][load], 1),
                round(100.0 * result.shed_fraction[cls][load], 1),
                round(100.0 * result.violation_fraction[cls][load], 1),
            ])
        row.append(round(result.throughput_kops[load], 1))
        rows.append(row)
    header = ["kops"]
    for cls in result.class_names:
        header.extend([f"{cls} p50", f"{cls} p99", f"{cls} p999",
                       f"{cls} shed%", f"{cls} viol%"])
    header.append("thr kops")
    print(format_table(header, rows))
    knee = result.knee_kops()
    if knee is None:
        print("\nno saturation knee within the swept loads")
    else:
        share = result.queueing_share("lat", knee)
        print(f"\nsaturation knee at {knee:g} kops offered "
              f"(queueing accounts for {100.0 * share:.0f}% of the "
              "added lat-class p99)")
    if args.slo_gate is not None:
        base = result.loads_kops[0]
        violation = result.violation_fraction["lat"][base]
        if violation > args.slo_gate:
            raise SystemExit(
                f"frontend SLO gate: lat-class violation fraction "
                f"{violation:.3f} at {base:g} kops exceeds the "
                f"--slo-gate {args.slo_gate:g} budget"
            )
        print(f"SLO gate ok: lat-class violations {violation:.3f} "
              f"<= {args.slo_gate:g} at {base:g} kops")


def _print_replay(args: argparse.Namespace, runner: Optional[SweepRunner]) -> None:
    # Lazy import, like trace/faults/cluster/frontend: figure subcommands
    # never pay for the replay machinery.
    from repro.core.figures import replay_rotation, replay_ttl_scan_mix

    if args.smoke:
        # CI-shaped smoke: tiny cells, both figures, hard liveness gates —
        # the replay path must actually rotate, expire, and scan.
        rotation = replay_rotation(
            rotate_every=(0, 64), n_ops=200, population=512,
            working_set=64, blocks_per_plane=8, runner=runner,
        )
        mix = replay_ttl_scan_mix(
            variants=("plain", "ttl+scan"), n_ops=200,
            population=400, ttl_ops=120, blocks_per_plane=8, runner=runner,
        )
    else:
        rotation = replay_rotation(runner=runner)
        mix = replay_ttl_scan_mix(n_ops=args.replay_ops, runner=runner)

    print("-- working-set rotation: KV vs block --")
    rows = []
    for device in rotation.latency_us:
        for rotate in rotation.rotate_every:
            cell = rotation.latency_us[device][rotate]
            stats = rotation.stats_summary[device][rotate]
            rows.append([
                device, rotate or "static", round(cell["mean"], 1),
                round(cell["p99"], 1), round(cell["p999"], 1),
                round(stats["waf"], 2),
                rotation.completed_ops[device][rotate],
            ])
    print(format_table(
        ["device", "rotate every", "mean us", "p99 us", "p999 us",
         "WAF", "ops"],
        rows,
    ))
    for device in rotation.latency_us:
        print(f"{device} rotation p99 penalty: "
              f"{rotation.rotation_penalty(device):.2f}x")

    print("\n-- TTL + scan mix: read-tail cost --")
    rows = []
    for variant in mix.variants:
        latency = mix.latency_us[variant]
        ops = mix.ops[variant]
        buckets = mix.buckets[variant]
        rows.append([
            variant, round(latency["read_p99"], 1),
            round(latency["read_p999"], 1), ops["completed"],
            ops["failed"], ops["deletes"], ops["scans"],
            buckets["keys"], buckets["page_writes"],
        ])
    print(format_table(
        ["variant", "read p99", "read p999", "ops", "fail", "deletes",
         "scans", "bucket keys", "bucket pages"],
        rows,
    ))
    scan_variant = next(
        (v for v in mix.variants if "scan" in v), None
    )
    if scan_variant is not None:
        print(f"read-tail inflation ({scan_variant} vs plain): "
              f"{mix.tail_inflation(scan_variant):.2f}x")

    if args.smoke:
        churned = [r for r in rotation.rotate_every if r > 0]
        if not churned or any(
            rotation.completed_ops[d][r] == 0
            for d in rotation.latency_us for r in rotation.rotate_every
        ):
            raise SystemExit("replay smoke: rotation cells ran no operations")
        scan_cells = [v for v in mix.variants if "scan" in v]
        if not scan_cells or any(mix.ops[v]["scans"] == 0 for v in scan_cells):
            raise SystemExit("replay smoke: scan variants ran no scans")
        ttl_cells = [v for v in mix.variants if v.startswith("ttl")]
        if any(mix.ops[v]["deletes"] == 0 for v in ttl_cells):
            raise SystemExit("replay smoke: TTL variants expired no keys")
        print("replay smoke ok: rotation, expiry deletes, and scans all live")


_COMMANDS: Dict[str, Callable[[argparse.Namespace, Optional[SweepRunner]], None]] = {
    "fig2": _print_fig2,
    "fig3": _print_fig3,
    "fig4": _print_fig4,
    "fig5": _print_fig5,
    "fig6": _print_fig6,
    "fig7": _print_fig7,
    "fig8": _print_fig8,
    "headline": _print_headline,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate experiments from 'KV-SSD: What Is It Good For?' "
            "(DAC 2021) on the simulated testbed."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all", "fig", "trace", "faults",
                                     "cluster", "frontend", "replay",
                                     "lint", "sanitize"],
        help=(
            "which figure (or 'headline'/'all') to regenerate — 'fig' "
            "with a figure name as the next argument also works "
            "('repro fig fig4 --parallel 4') — 'trace' to record a span "
            "trace of a figure-shaped workload, 'faults' to sweep "
            "statistical fault rates on both personalities, 'cluster' "
            "to run the sharded multi-device cluster figures "
            "(--smoke for the CI degradation check), 'frontend' to "
            "sweep the open-loop serving frontend over offered load, "
            "'replay' to run the trace-replay figures (working-set "
            "rotation and the TTL+scan mix; --smoke for the CI check), "
            "'lint' to run the simlint static-analysis pass "
            "(extra args go to repro.lint), or 'sanitize' to replay a "
            "figure under the runtime nondeterminism sanitizer "
            "(extra args go to repro.lint.sanitizer)"
        ),
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        choices=sorted(_COMMANDS) + ["all", None],
        help="with 'fig': which figure to regenerate",
    )
    parser.add_argument(
        "--parallel", type=int,
        default=int(os.environ.get("REPRO_PARALLEL", "1")), metavar="N",
        help=(
            "worker processes for independent experiment points "
            "(default: $REPRO_PARALLEL or 1 = serial; output is "
            "byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write .repro-cache/",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--n-ops", type=int, default=1200,
        help="operations per measured phase (default: 1200)",
    )
    parser.add_argument(
        "--measured-ops", type=int, default=1500,
        help="fig3 measured operations per phase (default: 1500)",
    )
    parser.add_argument(
        "--fig", default="fig6", metavar="FIG",
        help="trace: which figure-shaped scenario to record (default: fig6)",
    )
    parser.add_argument(
        "--trace-ops", type=int, default=None, metavar="N",
        help="trace: measured ops per personality "
             "(default: the scenario's own count)",
    )
    parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="trace: Perfetto JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--fault-rates", default="0,1e-3,1e-2,5e-2", metavar="R,R,...",
        help="faults: comma-separated statistical rates to sweep "
             "(default: 0,1e-3,1e-2,5e-2)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7,
        help="faults: fault-injector RNG seed (default: 7)",
    )
    parser.add_argument(
        "--faults-out", default=None, metavar="PATH",
        help="faults: also write the sweep as CSV to PATH "
             "(parent directories are created)",
    )
    parser.add_argument(
        "--cluster-ops", type=int, default=300, metavar="N",
        help="cluster: operations per tenant stream (default: 300)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="cluster: run only the 2-shard R=2 forced-degradation "
             "smoke check (exits non-zero on any lost write); "
             "replay: tiny cells with liveness gates on rotation, "
             "expiry deletes, and scans",
    )
    parser.add_argument(
        "--replay-ops", type=int, default=1500, metavar="N",
        help="replay: base-mix operations per variant (default: 1500)",
    )
    parser.add_argument(
        "--loads", default="16,32,64,128,256,512", metavar="K,K,...",
        help="frontend: comma-separated offered loads in kops "
             "(default: 16,32,64,128,256,512)",
    )
    parser.add_argument(
        "--frontend-ops", type=int, default=800, metavar="N",
        help="frontend: requests offered per load point (default: 800)",
    )
    parser.add_argument(
        "--scheduler", default="edf", choices=["edf", "fifo"],
        help="frontend: dispatch policy (default: edf)",
    )
    parser.add_argument(
        "--slo-gate", type=float, default=None, metavar="FRAC",
        help="frontend: exit non-zero if the lat class violates its SLO "
             "more than FRAC of the time at the lowest offered load",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # simlint has its own argument surface (paths, --list-rules);
        # hand the rest of the command line straight to it.
        from repro.lint.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["sanitize"]:
        # Same pattern: the sanitizer owns its argument surface
        # (--fig/--target, --n-ops, --hash-seeds, --smoke).
        from repro.lint.sanitizer import main as sanitize_main

        return sanitize_main(argv[1:])
    args = build_parser().parse_args(argv)
    experiment = args.experiment
    if experiment == "fig":
        # 'repro fig fig4' meta-form: the figure rides in as the target.
        if args.target is None:
            raise SystemExit("repro fig: name a figure, e.g. 'repro fig fig4'")
        experiment = args.target
    elif args.target is not None:
        raise SystemExit(
            f"unexpected argument {args.target!r} after {experiment!r}"
        )
    if args.parallel < 1:
        raise SystemExit(f"--parallel must be >= 1, got {args.parallel}")
    runner = SweepRunner(
        workers=args.parallel,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    if experiment in ("trace", "faults", "cluster", "frontend", "replay"):
        # Excluded from 'all': these are diagnostic/extension passes (a
        # trace file, a reliability sweep, the multi-device cluster, the
        # serving-frontend load sweep, the trace-replay figures), not
        # paper-figure regenerations.
        names = [experiment]
        commands = {"trace": _print_trace, "faults": _print_faults,
                    "cluster": _print_cluster, "frontend": _print_frontend,
                    "replay": _print_replay}
    elif experiment == "all":
        names = sorted(_COMMANDS)
        commands = _COMMANDS
    else:
        names = [experiment]
        commands = _COMMANDS
    reported = 0
    for name in names:
        print(f"\n=== {name} ===")
        # Host-side progress reporting for the human running the CLI —
        # not simulation state, so the wall clock is the right clock.
        started = time.time()  # simlint: disable=SIM001
        commands[name](args, runner)
        elapsed = time.time() - started  # simlint: disable=SIM001
        print(f"[{name} done in {elapsed:.1f}s]")
        # Exec statistics go to stderr so stdout stays pure figure
        # output (byte-comparable across worker counts).
        for report in runner.reports[reported:]:
            print(report.format(), file=sys.stderr)
        reported = len(runner.reports)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
