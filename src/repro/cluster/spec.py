"""Declarative cluster configuration.

A :class:`ClusterSpec` fully determines a cluster run — tenants, shard
count, replication factor, ring shape, and any planned device
degradations.  Everything in it is a frozen dataclass of primitives and
tuples, so a spec is picklable, content-hashable by the result cache
(:mod:`repro.exec.cache`), and safe to ship to worker processes: a shard
cell receives ``(spec, shard_id)`` and re-derives its own slice of the
routing plan deterministically instead of hauling op lists through
pickles.

Key naming is two-level: ``tenant tag (4 B) + partition number (4
digits) + local index (8 digits)`` — 16-byte keys, the paper's macro
key size.  Partitions (not raw keys) are the ring's placement unit, the
way Dynamo-style stores place vnode ranges; a partition's local index
space is dense and contiguous, which is exactly what the untimed
priming machinery (:func:`repro.kvftl.priming.fast_fill`) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.kvftl.population import KeyScheme

#: Decimal digits naming a partition inside a key (max 9999 partitions).
PARTITION_DIGITS = 4
#: Decimal digits naming a pair inside its partition.
LOCAL_DIGITS = 8
#: Shard personalities the cluster can build.
PERSONALITIES = ("kv", "block")


def shard_name(shard: int) -> str:
    """Ring-member name of shard ``shard``."""
    return f"shard{shard}"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a prefix-scoped namespace driving a YCSB workload."""

    #: Tenant identity; the first four ASCII characters (underscore
    #: padded) become the key-prefix tag, so every key of this tenant is
    #: recognizable — and quota-countable — by prefix alone.
    name: str
    #: YCSB core workload letter (A-F), or ``"churn"`` for the
    #: working-set-rotation stream (:mod:`repro.kvbench.generators`).
    workload: str
    #: Operations this tenant contributes to the cluster stream.
    n_ops: int
    #: Distinct keys prefilled before the measured phase.
    population: int
    #: Maximum pairs the tenant may hold (prefill + inserts);
    #: 0 = unlimited.  Inserts past the quota are rejected at the
    #: router and never reach a device.
    quota_pairs: int = 0
    value_bytes: int = 1000
    zipf_theta: float = 0.99
    scan_length: int = 10
    #: churn: keys in the rotating hot window (0 = population // 8).
    churn_working_set: int = 0
    #: churn: ops between wholesale window rotations (0 = static window).
    churn_rotate_every_ops: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name or not self.name.isascii():
            raise ConfigurationError(
                f"tenant name must be non-empty ASCII, got {self.name!r}"
            )
        if not self.name[0].isalnum():
            # Non-alphanumeric lead bytes (e.g. "!") are reserved for the
            # cluster's internal key namespaces (sacrificial degrade keys).
            raise ConfigurationError(
                f"tenant name must start alphanumeric, got {self.name!r}"
            )
        if self.workload != "churn" and (
            self.workload not in "ABCDEF" or len(self.workload) != 1
        ):
            raise ConfigurationError(
                f"tenant {self.name!r}: workload must be one of A-F "
                f"or 'churn', got {self.workload!r}"
            )
        if self.n_ops < 1 or self.population < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: n_ops and population must be >= 1"
            )
        if self.quota_pairs < 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: quota_pairs must be >= 0"
            )
        if self.quota_pairs and self.quota_pairs < self.population:
            raise ConfigurationError(
                f"tenant {self.name!r}: quota_pairs {self.quota_pairs} is "
                f"below the prefilled population {self.population}"
            )
        if self.value_bytes < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: value_bytes must be >= 1"
            )
        if self.scan_length < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: scan_length must be >= 1"
            )
        if self.churn_working_set < 0 or self.churn_rotate_every_ops < 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: churn knobs must be >= 0"
            )
        if self.churn_working_set > self.population:
            raise ConfigurationError(
                f"tenant {self.name!r}: churn_working_set "
                f"{self.churn_working_set} exceeds the population "
                f"{self.population}"
            )
        if self.workload != "churn" and (
            self.churn_working_set or self.churn_rotate_every_ops
        ):
            raise ConfigurationError(
                f"tenant {self.name!r}: churn knobs only apply to the "
                f"'churn' workload, not {self.workload!r}"
            )

    @property
    def churn_window(self) -> int:
        """Effective churn hot-window size in keys."""
        if self.churn_working_set:
            return self.churn_working_set
        return max(1, self.population // 8)

    @property
    def tag(self) -> bytes:
        """Four-byte key prefix identifying this tenant's namespace."""
        return self.name[:4].ljust(4, "_").encode("ascii")

    def partition_scheme(self, partition: int) -> KeyScheme:
        """Key scheme of one partition's dense local index space."""
        prefix = self.tag + str(partition).zfill(PARTITION_DIGITS).encode(
            "ascii"
        )
        return KeyScheme(prefix=prefix, digits=LOCAL_DIGITS)

    def partition_token(self, partition: int) -> str:
        """Ring placement token of one partition of this tenant."""
        return f"{self.name[:4]}/{partition}"


@dataclass(frozen=True)
class DegradeEvent:
    """A planned mid-run device retirement.

    At global stream position ``at_op`` the shard's device degrades to
    read-only (through the real mechanism: scheduled program-fail
    faults exhaust its spare-block budget, tripping
    ``FtlCore.read_only``), the router removes it from the ring, and
    drain traffic restores the replication factor on the survivors.
    """

    shard: int
    at_op: int

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.at_op < 0:
            raise ConfigurationError(f"at_op must be >= 0, got {self.at_op}")


def _default_tenants() -> Tuple[TenantSpec, ...]:
    return (
        TenantSpec(name="ta", workload="A", n_ops=400, population=600),
        TenantSpec(name="tb", workload="B", n_ops=400, population=600),
    )


@dataclass(frozen=True)
class ClusterSpec:
    """Complete description of one cluster run."""

    shards: int = 4
    #: Replication factor R: write-all / read-one.
    replication: int = 2
    #: Ring partitions per tenant namespace.
    partitions: int = 32
    #: Virtual nodes per shard on the ring.
    vnodes: int = 16
    #: Per-shard personality ("kv"/"block"); empty = all KV.
    personalities: Tuple[str, ...] = ()
    tenants: Tuple[TenantSpec, ...] = field(default_factory=_default_tenants)
    #: Planned read-only degradations, in stream order.
    degrade: Tuple[DegradeEvent, ...] = ()
    #: Client operations routed while drain traffic is in flight get the
    #: "rebalance" phase label; the window bounds how many.
    rebalance_window_ops: int = 200
    #: Interleave seed for merging tenant streams.
    seed: int = 1
    queue_depth: int = 8
    #: Simulated routing hop (hashing, directory lookup, fabric) charged
    #: before each device operation.
    router_us: float = 3.0
    blocks_per_plane: int = 16
    #: Spare-block budget for shards with a planned degradation (small,
    #: so a handful of scheduled program-fails trips read-only).
    degrade_spare_blocks: int = 1
    #: Per-shard open-loop offered load (ops/s): > 0 replaces the
    #: closed-loop queue-depth workers with seeded Poisson arrivals that
    #: offer operations independently of completions, the serving-
    #: frontend regime.  0 keeps the closed-loop default (byte-identical
    #: to earlier revisions).
    arrival_rate_ops_s: float = 0.0
    #: Open-loop bounded admission: a read arriving while this many
    #: operations are in flight on the shard is shed (counted, never
    #: executed).  0 = admit everything.  Writes are never shed — the
    #: statically derived verification plan (and the zero-lost-write
    #: invariant) assumes every routed write lands.
    admit_capacity: int = 0
    #: Record router/device spans through the trace subsystem.
    trace: bool = False
    #: Post-run device-side verification of every expected key (KV
    #: personalities only; disable for very large runs).
    verify: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if not 1 <= self.replication <= self.shards:
            raise ConfigurationError(
                f"replication must be in [1, {self.shards}], "
                f"got {self.replication}"
            )
        if not 1 <= self.partitions <= 10**PARTITION_DIGITS - 1:
            raise ConfigurationError(
                f"partitions must be in [1, {10 ** PARTITION_DIGITS - 1}], "
                f"got {self.partitions}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.personalities and len(self.personalities) != self.shards:
            raise ConfigurationError(
                f"personalities must name all {self.shards} shards or none, "
                f"got {len(self.personalities)}"
            )
        for personality in self.personalities:
            if personality not in PERSONALITIES:
                raise ConfigurationError(
                    f"unknown personality {personality!r}; "
                    f"expected one of {PERSONALITIES}"
                )
        if not self.tenants:
            raise ConfigurationError("a cluster needs at least one tenant")
        tags = [tenant.tag for tenant in self.tenants]
        if len(set(tags)) != len(tags):
            raise ConfigurationError(
                f"tenant tags must be unique, got {tags!r}"
            )
        degraded = [event.shard for event in self.degrade]
        if len(set(degraded)) != len(degraded):
            raise ConfigurationError(
                f"a shard may degrade at most once, got {degraded!r}"
            )
        for event in self.degrade:
            if event.shard >= self.shards:
                raise ConfigurationError(
                    f"degrade targets shard {event.shard} of {self.shards}"
                )
        if len(self.degrade) >= self.shards:
            raise ConfigurationError(
                f"{len(self.degrade)} degradations would retire all "
                f"{self.shards} shards"
            )
        positions = [event.at_op for event in self.degrade]
        if positions != sorted(positions):
            raise ConfigurationError(
                "degrade events must be ordered by at_op"
            )
        for event in self.degrade:
            if event.at_op >= self.total_client_ops:
                raise ConfigurationError(
                    f"degrade at_op {event.at_op} is past the end of the "
                    f"{self.total_client_ops}-op client stream"
                )
        if self.rebalance_window_ops < 1:
            raise ConfigurationError(
                f"rebalance_window_ops must be >= 1, "
                f"got {self.rebalance_window_ops}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.router_us < 0.0:
            raise ConfigurationError(
                f"router_us must be >= 0, got {self.router_us}"
            )
        if self.arrival_rate_ops_s < 0.0:
            raise ConfigurationError(
                f"arrival_rate_ops_s must be >= 0, "
                f"got {self.arrival_rate_ops_s}"
            )
        if self.admit_capacity < 0:
            raise ConfigurationError(
                f"admit_capacity must be >= 0, got {self.admit_capacity}"
            )
        if self.degrade_spare_blocks < 1:
            raise ConfigurationError(
                f"degrade_spare_blocks must be >= 1, "
                f"got {self.degrade_spare_blocks}"
            )

    def personality_of(self, shard: int) -> str:
        """Personality of shard ``shard`` ("kv" unless configured)."""
        if not 0 <= shard < self.shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.shards})"
            )
        if self.personalities:
            return self.personalities[shard]
        return "kv"

    @property
    def total_client_ops(self) -> int:
        """Client operations across every tenant (drain excluded)."""
        return sum(tenant.n_ops for tenant in self.tenants)
