"""Sharded multi-device KV cluster: routing, replication, rebalancing.

The paper characterizes one PM983-class device; production KV serving
puts many behind a routing layer.  This package composes two existing
subsystems into that layer: the sweep-execution engine (:mod:`repro.exec`,
one simulated device per process-pool worker) and the faults subsystem
(:mod:`repro.faults`, whose read-only degradation is the retirement
signal the router rebalances away from).

* :mod:`repro.cluster.ring` — consistent-hash ring with virtual nodes;
* :mod:`repro.cluster.spec` — declarative cluster/tenant configuration;
* :mod:`repro.cluster.router` — deterministic routing plan: replication,
  per-tenant quotas, degradation handling and drain traffic;
* :mod:`repro.cluster.shard` — one shard's simulation cell (the unit the
  process pool executes);
* :mod:`repro.cluster.run` — cluster execution and result assembly.
"""

from repro.cluster.ring import HashRing
from repro.cluster.run import ClusterResult, aggregate_device_stats, run_cluster
from repro.cluster.spec import ClusterSpec, DegradeEvent, TenantSpec

__all__ = [
    "ClusterResult",
    "ClusterSpec",
    "DegradeEvent",
    "HashRing",
    "TenantSpec",
    "aggregate_device_stats",
    "run_cluster",
]
