"""One shard's simulation cell: the unit the process pool executes.

:func:`run_shard` is a module-level function of ``(spec, shard)`` — the
shape the sweep engine requires for pickling and content-addressed
caching.  It re-derives the shard's routed program from the spec, builds
a fresh rig of the shard's personality, primes its partitions, plays the
program's segments at the configured queue depth (charging the simulated
router hop before every device operation), performs the planned
read-only degradation through the real fault machinery, and finally
verifies that every key the shard is still obligated to hold is
readable on the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterator, List, Optional, Tuple, Union

from repro.blockftl.config import BlockSSDConfig
from repro.cluster.router import PlannedOp, ShardProgram, shard_plan
from repro.cluster.spec import ClusterSpec
from repro.core.experiment import (
    BlockRig,
    KVRig,
    build_block_rig,
    build_kv_rig,
    lab_geometry,
)
from repro.errors import DeviceError, SimulationError
from repro.faults.model import FaultConfig
from repro.frontend.arrivals import ArrivalSpec, generate_arrivals
from repro.ftl.core import DeviceStats
from repro.kvbench.runner import BlockAdapter
from repro.kvbench.workload import Operation, OpType
from repro.kvftl.config import KVSSDConfig
from repro.kvftl.population import KeyScheme
from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.sim.engine import Environment, Event
from repro.trace.tracer import TraceCollector, TraceConfig, Tracer

#: Give up tripping read-only after this many sacrificial write rounds.
_DEGRADE_ATTEMPTS = 40
#: Settle time between sacrificial rounds (background retirement runs).
_DEGRADE_SETTLE_US = 50_000.0
#: Value size of sacrificial degrade writes.
_DEGRADE_VALUE_BYTES = 1024


@dataclass
class ShardResult:
    """Everything one shard's run produced (picklable, cacheable)."""

    shard: int
    name: str
    personality: str
    started_us: float = 0.0
    finished_us: float = 0.0
    completed_ops: int = 0
    failed_ops: int = 0
    #: Simulated time spent in the routing hop, for router-vs-device
    #: attribution (total op latency minus this is device time).
    router_us_total: float = 0.0
    #: Sum of recorded end-to-end op latencies (router hop included).
    op_time_us_total: float = 0.0
    #: Writes burned to exhaust the spare budget (never client traffic).
    sacrificial_writes: int = 0
    #: Open-loop reads shed by bounded admission (never executed).
    shed_ops: int = 0
    degraded: bool = False
    degrade_at_us: float = -1.0
    verify_checked: int = 0
    verify_missing: int = 0
    #: Latency summaries per phase label plus the "all" roll-up.
    latency: Dict[str, LatencySummary] = field(default_factory=dict)
    device_stats: Optional[DeviceStats] = None
    trace_spans: int = 0

    @property
    def elapsed_us(self) -> float:
        return self.finished_us - self.started_us

    def throughput_kops(self) -> float:
        """Completed device operations per millisecond of simulated time."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed_ops / (self.elapsed_us / 1000.0)


class _ShardCell:
    """Mutable execution state for one shard run."""

    def __init__(self, spec: ClusterSpec, program: ShardProgram) -> None:
        self.spec = spec
        self.program = program
        self.result = ShardResult(
            shard=program.shard,
            name=program.name,
            personality=program.personality,
        )
        self.recorder = LatencyRecorder(program.name)
        degrading = program.degrade_after is not None
        self.tracer: Optional[Tracer] = None
        if spec.trace:
            self.tracer = Tracer(
                TraceConfig(),
                TraceCollector(),
                pid=program.shard + 1,
                process_name=program.name,
            )
        geometry = lab_geometry(spec.blocks_per_plane)
        fault_config = FaultConfig() if degrading else None
        self.rig: Union[KVRig, BlockRig]
        if program.personality == "kv":
            kv_config = (
                KVSSDConfig(spare_block_limit=spec.degrade_spare_blocks)
                if degrading
                else None
            )
            self.rig = build_kv_rig(
                geometry,
                config=kv_config,
                tracer=self.tracer,
                fault_config=fault_config,
            )
        else:
            block_config = (
                BlockSSDConfig(spare_block_limit=spec.degrade_spare_blocks)
                if degrading
                else None
            )
            self.rig = build_block_rig(
                geometry,
                config=block_config,
                tracer=self.tracer,
                fault_config=fault_config,
            )
        self.env: Environment = self.rig.env
        self._schemes: Dict[Tuple[int, int], KeyScheme] = {}
        self._block_adapters: Dict[int, BlockAdapter] = {}

    # -- key plumbing ----------------------------------------------------

    def scheme(self, tenant: int, partition: int) -> KeyScheme:
        cached = self._schemes.get((tenant, partition))
        if cached is None:
            cached = self.spec.tenants[tenant].partition_scheme(partition)
            self._schemes[(tenant, partition)] = cached
        return cached

    def key_of(self, tenant: int, index: int) -> bytes:
        partition = index % self.spec.partitions
        return self.scheme(tenant, partition).key_for(
            index // self.spec.partitions
        )

    def block_adapter(self, tenant: int) -> BlockAdapter:
        adapter = self._block_adapters.get(tenant)
        if adapter is None:
            assert isinstance(self.rig, BlockRig)
            tenant_spec = self.spec.tenants[tenant]
            io_bytes = len(tenant_spec.tag) + 12 + tenant_spec.value_bytes
            adapter = self.rig.adapter(io_bytes)
            self._block_adapters[tenant] = adapter
        return adapter

    # -- priming ---------------------------------------------------------

    def prime(self) -> None:
        if isinstance(self.rig, KVRig):
            for directive in self.program.primes:
                tenant = self.spec.tenants[directive.tenant]
                self.rig.device.fast_fill(
                    directive.count,
                    tenant.value_bytes,
                    self.scheme(directive.tenant, directive.partition),
                )
        else:
            # Block personality: map the whole range once so every read
            # lands on a primed unit (the paper's pre-conditioned drive).
            device = self.rig.device
            device.prime_sequential_fill(device.n_units)

    # -- operation execution ---------------------------------------------

    def execute(self, planned: PlannedOp) -> Generator[Event, None, int]:
        if isinstance(self.rig, KVRig):
            op = Operation(
                planned.op,
                self.key_of(planned.tenant, planned.index),
                planned.index,
                planned.value_bytes,
            )
            return self.rig.adapter.execute(op)
        # Block personality: tenant-interleaved global slot index keeps
        # tenants from trivially aliasing each other's offsets.
        slot = planned.index * len(self.spec.tenants) + planned.tenant
        op = Operation(planned.op, b"", slot, planned.value_bytes)
        return self.block_adapter(planned.tenant).execute(op)

    def open_segment_driver(
        self, segment: List[PlannedOp]
    ) -> Generator[Event, None, None]:
        """Play one segment open-loop: seeded Poisson arrivals offer
        operations independently of completions (the serving-frontend
        regime), with reads past the bounded admission window shed.
        Latency is measured from the arrival instant, so queueing delay
        under overload is visible — exactly what the closed-loop driver
        cannot show.
        """
        env = self.env
        spec = self.spec
        result = self.result
        recorder = self.recorder
        arrival_spec = ArrivalSpec(
            rate_ops_s=spec.arrival_rate_ops_s,
            n_requests=len(segment),
            seed=spec.seed * 10_007 + self.program.shard,
        )
        origin = env.now
        in_flight = 0
        started: List[Event] = []

        def one(
            planned: PlannedOp, arrived: float
        ) -> Generator[Event, None, None]:
            nonlocal in_flight
            if spec.router_us > 0.0:
                yield env.timeout(spec.router_us)
            result.router_us_total += spec.router_us
            try:
                yield env.process(self.execute(planned))
            except DeviceError:
                result.failed_ops += 1
            else:
                latency = env.now - arrived
                recorder.record(latency, planned.label)
                result.op_time_us_total += latency
                result.completed_ops += 1
            in_flight -= 1

        for planned, at in zip(segment, generate_arrivals(arrival_spec)):
            target = origin + at
            if target > env.now:
                yield env.timeout(target - env.now)
            if (
                spec.admit_capacity
                and in_flight >= spec.admit_capacity
                and planned.op is OpType.READ
            ):
                result.shed_ops += 1
                continue
            in_flight += 1
            started.append(
                env.process(one(planned, env.now))
            )
        if started:
            yield env.all_of(started)

    def segment_driver(
        self, segment: List[PlannedOp]
    ) -> Generator[Event, None, None]:
        """Play one segment at queue depth, recording per-phase latency."""
        if self.spec.arrival_rate_ops_s > 0.0:
            yield from self.open_segment_driver(segment)
            return
        env = self.env
        spec = self.spec
        result = self.result
        recorder = self.recorder
        tracer = self.tracer
        stream: Iterator[PlannedOp] = iter(segment)

        def worker() -> Generator[Event, None, None]:
            for planned in stream:
                started = env.now
                if spec.router_us > 0.0:
                    yield env.timeout(spec.router_us)
                result.router_us_total += spec.router_us
                if tracer is not None and tracer.wants("host"):
                    tracer.complete(
                        "router", "route", "host", spec.router_us,
                        {"label": planned.label},
                    )
                try:
                    yield env.process(self.execute(planned))
                except DeviceError:
                    result.failed_ops += 1
                    continue
                latency = env.now - started
                recorder.record(latency, planned.label)
                result.op_time_us_total += latency
                result.completed_ops += 1

        workers = [
            env.process(worker(), name=f"{self.program.name}.w{i}")
            for i in range(spec.queue_depth)
        ]
        yield env.all_of(workers)

    # -- forced degradation ----------------------------------------------

    def degrade_driver(self) -> Generator[Event, None, None]:
        """Exhaust the spare budget until the device goes read-only.

        Runs only at a segment barrier, after a full device drain, so
        every acknowledged client write is on flash before the first
        scheduled program failure can land.
        """
        env = self.env
        device = self.rig.device
        injector = device.array.faults
        if injector is None:
            raise SimulationError(
                f"{self.program.name} planned a degradation but has no "
                "fault injector"
            )
        yield from device.drain()
        injector.schedule(
            "program_fail", count=self.spec.degrade_spare_blocks + 2
        )
        for attempt in range(_DEGRADE_ATTEMPTS):
            if device.core.read_only:
                break
            self.result.sacrificial_writes += 1
            try:
                if isinstance(self.rig, KVRig):
                    key = b"!deg" + str(attempt).zfill(12).encode("ascii")
                    yield from self.rig.api.store(key, _DEGRADE_VALUE_BYTES)
                else:
                    device_block = self.rig.device
                    yield from self.rig.api.write(
                        device_block.user_capacity_bytes
                        - device_block.map_unit,
                        device_block.map_unit,
                    )
                yield from device.drain()
            except DeviceError:
                pass
            yield env.timeout(_DEGRADE_SETTLE_US)
        if not device.core.read_only:
            raise SimulationError(
                f"{self.program.name} failed to degrade after "
                f"{_DEGRADE_ATTEMPTS} sacrificial writes"
            )
        self.result.degraded = True
        self.result.degrade_at_us = env.now

    # -- post-run verification -------------------------------------------

    def verify_driver(self) -> Generator[Event, None, None]:
        """Read back every key this shard is still obligated to hold."""
        env = self.env
        result = self.result
        partitions = self.spec.partitions

        def reads() -> Iterator[PlannedOp]:
            for entry in self.program.verify:
                for local in range(entry.count):
                    index = local * partitions + entry.partition
                    yield PlannedOp(OpType.READ, entry.tenant, index, 0, "verify")

        stream = reads()

        def worker() -> Generator[Event, None, None]:
            for planned in stream:
                result.verify_checked += 1
                try:
                    yield env.process(self.execute(planned))
                except DeviceError:
                    result.verify_missing += 1

        workers = [
            env.process(worker(), name=f"{self.program.name}.v{i}")
            for i in range(self.spec.queue_depth)
        ]
        yield env.all_of(workers)

    # -- whole-shard program ---------------------------------------------

    def driver(self) -> Generator[Event, None, None]:
        degrade_after = self.program.degrade_after
        if degrade_after == -1:
            yield from self.degrade_driver()
        for index, segment in enumerate(self.program.segments):
            if segment:
                yield from self.segment_driver(segment)
            if degrade_after == index:
                yield from self.degrade_driver()

    def run(self) -> ShardResult:
        env = self.env
        self.prime()
        result = self.result
        result.started_us = env.now
        process = env.process(self.driver(), name=f"{self.program.name}.main")
        env.run_until_complete(process)
        result.finished_us = env.now
        # Flush buffered writes to flash after the measured window so the
        # reported device telemetry (flash programs, WAF) reflects the
        # run's media traffic, not the buffer's final fill level.
        drain = env.process(
            self.rig.device.drain(), name=f"{self.program.name}.drain"
        )
        env.run_until_complete(drain, limit=env.now + 600e6)
        if self.program.personality == "kv" and self.program.verify:
            # Verification is untimed bookkeeping from the cluster's point
            # of view; it runs after the measured window closes.
            verify = env.process(
                self.verify_driver(), name=f"{self.program.name}.verify"
            )
            env.run_until_complete(verify)
        for label in self.recorder.labels():
            result.latency[label] = self.recorder.summary(label)
        if self.recorder.count():
            result.latency["all"] = self.recorder.summary()
        result.device_stats = self.rig.device.stats.snapshot()
        if self.tracer is not None:
            result.trace_spans = len(self.tracer.collector)
        return result


def run_shard(spec: ClusterSpec, shard: int) -> ShardResult:
    """Execute one shard of ``spec`` — the cluster's sweep-cell function."""
    return _ShardCell(spec, shard_plan(spec, shard)).run()
