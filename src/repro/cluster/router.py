"""Deterministic routing: from a :class:`ClusterSpec` to shard programs.

:func:`build_plan` is a *pure function* of the spec.  It merges the
tenants' YCSB streams with a seeded interleave, routes every operation
through the consistent-hash ring (write-all to the R holders of the
key's partition, read-one from the first holder), enforces tenant
quotas, and — at each planned :class:`~repro.cluster.spec.DegradeEvent`
— removes the shard from the ring, restores the replication factor by
scheduling drain traffic (reads on the retiring read-only device,
re-inserts on the newly added holders), and re-maps reads away from it.

The output is one :class:`ShardProgram` per shard: priming directives
plus an ordered list of operation segments, with barriers exactly at
degrade boundaries so no acknowledged client write can race the forced
media failures.  Workers re-derive the plan from ``(spec, shard)``;
nothing routed ever crosses a process boundary, which keeps cluster
cells cacheable by the same content hash as any other sweep cell.

Cross-shard semantics deserve one caveat: each shard is an *independent*
simulation (that is what makes the fan-out embarrassingly parallel), so
the plan expresses ordering as stream positions and segment barriers,
not as a global clock.  Replicated writes are acknowledged when every
holder has executed its copy — in plan terms, when the segment that
contains them completes on every holder — and the zero-lost-writes
guarantee is checked against exactly that definition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.ring import HashRing
from repro.cluster.spec import ClusterSpec, TenantSpec, shard_name
from repro.errors import ConfigurationError
from repro.kvbench.workload import OpType
from repro.kvbench.ycsb import YCSBOperation, YCSBSpec, generate_ycsb

#: Phase labels a planned operation may carry (latency buckets).
PHASES = ("pre", "rebalance", "post", "drain")


@dataclass(frozen=True)
class PlannedOp:
    """One device operation bound for one shard."""

    op: OpType
    #: Index into ``spec.tenants``.
    tenant: int
    #: Tenant-global key index (partition = ``index % partitions``).
    index: int
    value_bytes: int
    #: Phase label — the latency bucket this op records under.
    label: str


@dataclass(frozen=True)
class PrimeDirective:
    """Prefill one partition's pairs on a shard before the run."""

    tenant: int
    partition: int
    count: int


@dataclass(frozen=True)
class VerifyRange:
    """Keys a shard must still serve after the run: locals ``[0, count)``."""

    tenant: int
    partition: int
    count: int


@dataclass
class ShardProgram:
    """Everything one shard executes, in order."""

    shard: int
    name: str
    personality: str
    primes: List[PrimeDirective] = field(default_factory=list)
    #: Operation segments; a barrier (queue fully drained) sits between
    #: consecutive segments.
    segments: List[List[PlannedOp]] = field(default_factory=list)
    #: Trip the device read-only after segment index k (-1 = before the
    #: first segment; ``None`` = this shard never degrades).
    degrade_after: Optional[int] = None
    #: Post-run existence checks (KV personalities, ``spec.verify``).
    verify: List[VerifyRange] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(len(segment) for segment in self.segments)


@dataclass
class ClusterPlan:
    """The fully routed cluster run."""

    spec: ClusterSpec
    programs: List[ShardProgram]
    #: Client operations in the merged stream (scans/RMWs count once).
    client_ops: int
    #: Device operations routed to shards (replication fan-out included,
    #: drain excluded).
    routed_ops: int
    #: Drain operations scheduled by degradations.
    drain_ops: int
    #: Inserts rejected at the router by tenant quota, per tenant name.
    rejected_inserts: Dict[str, int]
    #: Reads/updates of keys the router knows don't exist (never
    #: accepted), answered at the router, per tenant name.
    router_not_found: Dict[str, int]
    #: partition token -> ordered holder names, before any degradation.
    initial_directory: Dict[str, Tuple[str, ...]]
    #: partition token -> ordered holder names, after all degradations.
    final_directory: Dict[str, Tuple[str, ...]]


def partition_count(total: int, partitions: int, partition: int) -> int:
    """Pairs of a dense ``total``-key namespace living in ``partition``.

    Global index ``i`` lives in partition ``i % partitions`` at local
    index ``i // partitions`` — dense per partition, forever, even as
    inserts extend the namespace.
    """
    return (total + partitions - 1 - partition) // partitions


def interleave(primary: List[PlannedOp], extra: List[PlannedOp]) -> List[PlannedOp]:
    """Merge ``extra`` evenly through ``primary``, preserving both orders.

    Used to spread drain traffic across a rebalance window's client
    operations so the two contend realistically instead of serializing.
    """
    if not extra:
        return primary
    if not primary:
        return extra
    merged: List[PlannedOp] = []
    pi = ei = 0
    while pi < len(primary) or ei < len(extra):
        take_extra = ei < len(extra) and (
            pi >= len(primary) or ei * len(primary) <= pi * len(extra)
        )
        if take_extra:
            merged.append(extra[ei])
            ei += 1
        else:
            merged.append(primary[pi])
            pi += 1
    return merged


class _Router:
    """Mutable routing state threaded through one plan construction."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.ring = HashRing(
            [shard_name(s) for s in range(spec.shards)], vnodes=spec.vnodes
        )
        self.programs = [
            ShardProgram(
                shard=s,
                name=shard_name(s),
                personality=spec.personality_of(s),
                segments=[[]],
            )
            for s in range(spec.shards)
        ]
        self._by_name = {program.name: program for program in self.programs}
        #: Accepted pairs per tenant (prefill + accepted inserts).
        self.accepted = [tenant.population for tenant in spec.tenants]
        #: token -> ordered holder names.
        self.directory: Dict[str, List[str]] = {}
        for t, tenant in enumerate(spec.tenants):
            for partition in range(spec.partitions):
                token = tenant.partition_token(partition)
                self.directory[token] = self.ring.preference(
                    token, spec.replication
                )
        self.initial_directory = {
            token: tuple(holders) for token, holders in self.directory.items()
        }
        #: Drain ops awaiting their window's interleave, per shard name.
        self.drain_buffer: Dict[str, List[PlannedOp]] = {}
        #: token -> (read here instead of holders[0], until client pos,
        #: only for local indices below this drain count).
        self.read_fallback: Dict[str, Tuple[str, int, int]] = {}
        #: Client position where the last rebalance window closes.
        self.window_until = -1
        self.saw_degrade = False
        self.routed_ops = 0
        self.drain_ops = 0
        self.rejected = {tenant.name: 0 for tenant in spec.tenants}
        self.not_found = {tenant.name: 0 for tenant in spec.tenants}

    # -- segment plumbing ------------------------------------------------

    def cut_segments(self) -> None:
        """Barrier: close the current segment on every shard.

        Windows close first — any buffered drain traffic is interleaved
        into the segment it belongs to before the cut.
        """
        self.flush_drain_buffers()
        for program in self.programs:
            if program.segments[-1]:
                program.segments.append([])

    def flush_drain_buffers(self) -> None:
        for name, drains in self.drain_buffer.items():
            program = self._by_name[name]
            program.segments[-1] = interleave(program.segments[-1], drains)
        self.drain_buffer.clear()

    def emit(self, name: str, planned: PlannedOp) -> None:
        self._by_name[name].segments[-1].append(planned)
        self.routed_ops += 1

    # -- client operations -----------------------------------------------

    def label(self, pos: int) -> str:
        if pos < self.window_until:
            return "rebalance"
        if self.saw_degrade:
            return "post"
        return "pre"

    def route_write(
        self, t: int, op: OpType, index: int, value_bytes: int, label: str
    ) -> None:
        tenant = self.spec.tenants[t]
        token = tenant.partition_token(index % self.spec.partitions)
        for holder in self.directory[token]:
            self.emit(holder, PlannedOp(op, t, index, value_bytes, label))

    def route_read(self, t: int, index: int, label: str, pos: int) -> bool:
        """Route one point read; False when answered at the router."""
        tenant = self.spec.tenants[t]
        if index >= self.accepted[t]:
            self.not_found[tenant.name] += 1
            return False
        token = tenant.partition_token(index % self.spec.partitions)
        fallback = self.read_fallback.get(token)
        local = index // self.spec.partitions
        if fallback is not None and pos < fallback[1] and local < fallback[2]:
            # Keys the retiring sole holder acknowledged stay readable
            # there until its drain window closes; newer inserts already
            # live on the replacement holder.
            reader = fallback[0]
        else:
            reader = self.directory[token][0]
        self.emit(reader, PlannedOp(OpType.READ, t, index, 0, label))
        return True

    def route_client(self, t: int, op: YCSBOperation, pos: int) -> None:
        tenant = self.spec.tenants[t]
        label = self.label(pos)
        if op.scan_length > 0:
            # No cluster-wide ordered iteration: a scan expands into its
            # run of point reads, each routed by its own partition.
            for step in range(op.scan_length):
                if not self.route_read(t, op.key_index + step, label, pos):
                    break
            return
        if op.scan_length == -1:  # read-modify-write
            if op.key_index >= self.accepted[t]:
                self.not_found[tenant.name] += 1
                return
            self.route_read(t, op.key_index, label, pos)
            self.route_write(
                t, OpType.UPDATE, op.key_index, op.value_bytes, label
            )
            return
        kind = op.op
        if kind is OpType.READ:
            self.route_read(t, op.key_index, label, pos)
            return
        if kind is OpType.INSERT:
            if tenant.quota_pairs and self.accepted[t] >= tenant.quota_pairs:
                self.rejected[tenant.name] += 1
                return
            # The generator allocates indices densely and quotas never
            # release, so an accepted insert is always the next index.
            self.accepted[t] += 1
            self.route_write(t, kind, op.key_index, op.value_bytes, label)
            return
        if kind is OpType.UPDATE:
            if op.key_index >= self.accepted[t]:
                self.not_found[tenant.name] += 1
                return
            self.route_write(t, kind, op.key_index, op.value_bytes, label)
            return
        raise ConfigurationError(f"unroutable operation kind {kind!r}")

    # -- degradation and drain -------------------------------------------

    def degrade(self, shard: int, pos: int) -> None:
        """Retire ``shard``: barrier, ring removal, drain scheduling."""
        name = shard_name(shard)
        self.cut_segments()
        program = self._by_name[name]
        program.degrade_after = len(program.segments) - 2
        self.ring.remove(name)
        self.saw_degrade = True
        window_end = pos + self.spec.rebalance_window_ops
        self.window_until = max(self.window_until, window_end)
        # With fewer survivors than R the cluster under-replicates rather
        # than refusing — the write-all set is capped at the membership.
        want = min(self.spec.replication, len(self.ring))
        for t, tenant in enumerate(self.spec.tenants):
            for partition in range(self.spec.partitions):
                token = tenant.partition_token(partition)
                holders = self.directory[token]
                if name not in holders:
                    continue
                survivors = [h for h in holders if h != name]
                preferred = self.ring.preference(token, want)
                additions = [n for n in preferred if n not in survivors]
                additions = additions[: want - len(survivors)]
                self.directory[token] = survivors + additions
                count = partition_count(
                    self.accepted[t], self.spec.partitions, partition
                )
                # The retiring device's obligation freezes here; it must
                # still serve everything it acknowledged.
                program.verify.append(VerifyRange(t, partition, count))
                if not survivors:
                    # R=1: the retiring replica keeps serving reads until
                    # the drain window closes and the new holder is whole.
                    self.read_fallback[token] = (name, window_end, count)
                for local in range(count):
                    index = local * self.spec.partitions + partition
                    self.drain_buffer.setdefault(name, []).append(
                        PlannedOp(OpType.READ, t, index, 0, "drain")
                    )
                    self.drain_ops += 1
                    for addition in additions:
                        self.drain_buffer.setdefault(addition, []).append(
                            PlannedOp(
                                OpType.INSERT,
                                t,
                                index,
                                tenant.value_bytes,
                                "drain",
                            )
                        )
                        self.drain_ops += 1


def _churn_stream(tenant: TenantSpec) -> Iterator[YCSBOperation]:
    """Working-set-rotation stream replayed as tenant operations.

    The churn generator emits trace records; the router only consumes
    (op kind, key index, value bytes) — keys are re-derived per
    partition — so the records replay through a
    :class:`~repro.kvbench.traces.TraceWorkload` keyed by the churn
    spec's own scheme to recover exact indices.
    """
    from repro.kvbench.generators import ChurnSpec, generate_churn
    from repro.kvbench.traces import TraceWorkload

    churn = ChurnSpec(
        n_ops=tenant.n_ops,
        population=tenant.population,
        working_set=tenant.churn_window,
        rotate_every_ops=tenant.churn_rotate_every_ops,
        value_bytes=tenant.value_bytes,
        seed=tenant.seed,
    )
    workload = TraceWorkload(
        tuple(generate_churn(churn)), key_scheme=churn.key_scheme
    )
    for op in workload.operations():
        if isinstance(op, YCSBOperation):
            yield op
        else:
            yield YCSBOperation(base=op)


def _tenant_stream(tenant: TenantSpec) -> Iterator[YCSBOperation]:
    """The tenant's operation stream (keys are re-derived from indices)."""
    if tenant.workload == "churn":
        return _churn_stream(tenant)
    ycsb = YCSBSpec(
        workload=tenant.workload,
        n_ops=tenant.n_ops,
        population=tenant.population,
        value_bytes=tenant.value_bytes,
        scan_length=tenant.scan_length,
        zipf_theta=tenant.zipf_theta,
        seed=tenant.seed,
    )
    return generate_ycsb(ycsb)


def build_plan(spec: ClusterSpec) -> ClusterPlan:
    """Route the whole cluster run; pure and deterministic in ``spec``."""
    router = _Router(spec)

    # Priming: every initial holder of a partition prefills its pairs.
    for t, tenant in enumerate(spec.tenants):
        for partition in range(spec.partitions):
            count = partition_count(tenant.population, spec.partitions, partition)
            if count == 0:
                continue
            token = tenant.partition_token(partition)
            for holder in router.initial_directory[token]:
                router._by_name[holder].primes.append(
                    PrimeDirective(t, partition, count)
                )

    streams = [_tenant_stream(tenant) for tenant in spec.tenants]
    remaining = [tenant.n_ops for tenant in spec.tenants]
    pending = list(spec.degrade)
    rng = random.Random(spec.seed)
    total = spec.total_client_ops

    window_open = False
    for pos in range(total):
        while pending and pending[0].at_op == pos:
            router.degrade(pending.pop(0).shard, pos)
            window_open = True
        if window_open and pos >= router.window_until:
            # Rebalance window over: interleave its drain traffic and put
            # a barrier behind it so "post" latencies are clean.
            router.cut_segments()
            window_open = False
        t = rng.choices(range(len(streams)), weights=remaining)[0]
        remaining[t] -= 1
        router.route_client(t, next(streams[t]), pos)
    router.flush_drain_buffers()

    # Post-run obligations of the shards still holding each partition.
    if spec.verify:
        for t, tenant in enumerate(spec.tenants):
            for partition in range(spec.partitions):
                token = tenant.partition_token(partition)
                count = partition_count(
                    router.accepted[t], spec.partitions, partition
                )
                if count == 0:
                    continue
                for holder in router.directory[token]:
                    router._by_name[holder].verify.append(
                        VerifyRange(t, partition, count)
                    )

    return ClusterPlan(
        spec=spec,
        programs=router.programs,
        client_ops=total,
        routed_ops=router.routed_ops,
        drain_ops=router.drain_ops,
        rejected_inserts=router.rejected,
        router_not_found=router.not_found,
        initial_directory=router.initial_directory,
        final_directory={
            token: tuple(holders)
            for token, holders in router.directory.items()
        },
    )


def shard_plan(spec: ClusterSpec, shard: int) -> ShardProgram:
    """The one shard program a worker needs (derived from the full plan).

    Plan construction is shared work repeated in every worker; it is pure
    Python over a few thousand operations, which stays far cheaper than
    shipping routed streams through pickles and cache keys.
    """
    if not 0 <= shard < spec.shards:
        raise ConfigurationError(f"shard {shard} outside [0, {spec.shards})")
    return build_plan(spec).programs[shard]
