"""Cluster execution: fan shards out, assemble one deterministic result.

:func:`run_cluster` turns a :class:`~repro.cluster.spec.ClusterSpec`
into one :class:`~repro.exec.spec.SweepPoint` per shard (the cell is
:func:`repro.cluster.shard.run_shard`, a pure function of ``(spec,
shard)``) and executes them through the sweep engine — serial inline,
process-pool parallel, and content-cached all produce the same
spec-order result list, so a cluster run inherits the engine's
byte-reproducibility guarantee wholesale.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.router import ClusterPlan, build_plan
from repro.cluster.shard import ShardResult, run_shard
from repro.cluster.spec import ClusterSpec
from repro.exec.cache import canonical
from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.ftl.core import DeviceStats


def aggregate_device_stats(stats: Sequence[DeviceStats]) -> DeviceStats:
    """Sum device telemetry across shards into one cluster-wide struct.

    Numeric fields add; list fields (per-event logs like GC victims)
    concatenate in shard order.  Mirrors the generic field walk of
    ``DeviceCounters.snapshot``/``delta`` so new telemetry aggregates
    without edits here.
    """
    total = DeviceStats()
    for entry in stats:
        for spec_field in fields(DeviceStats):
            value = getattr(entry, spec_field.name)
            if isinstance(value, list):
                getattr(total, spec_field.name).extend(value)
            else:
                setattr(
                    total,
                    spec_field.name,
                    getattr(total, spec_field.name) + value,
                )
    return total


@dataclass
class ClusterResult:
    """One cluster run: the plan's bookkeeping plus every shard's result."""

    spec: ClusterSpec
    shards: List[ShardResult]
    client_ops: int
    routed_ops: int
    drain_ops: int
    rejected_inserts: Dict[str, int]
    router_not_found: Dict[str, int]
    final_directory: Dict[str, Tuple[str, ...]]

    # -- cluster-wide roll-ups -------------------------------------------

    @property
    def completed_ops(self) -> int:
        return sum(shard.completed_ops for shard in self.shards)

    @property
    def failed_ops(self) -> int:
        return sum(shard.failed_ops for shard in self.shards)

    @property
    def shed_ops(self) -> int:
        return sum(shard.shed_ops for shard in self.shards)

    @property
    def verify_missing(self) -> int:
        return sum(shard.verify_missing for shard in self.shards)

    @property
    def verify_checked(self) -> int:
        return sum(shard.verify_checked for shard in self.shards)

    @property
    def degraded_shards(self) -> List[int]:
        return [shard.shard for shard in self.shards if shard.degraded]

    @property
    def elapsed_us(self) -> float:
        """Cluster makespan: the slowest shard bounds the run."""
        return max((shard.elapsed_us for shard in self.shards), default=0.0)

    def throughput_kops(self) -> float:
        """Completed device operations per millisecond of makespan."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed_ops / (self.elapsed_us / 1000.0)

    @property
    def zero_lost_writes(self) -> bool:
        """No acknowledged operation failed and every obligation verified."""
        return self.failed_ops == 0 and self.verify_missing == 0

    def router_share(self) -> float:
        """Fraction of total operation time spent in the routing hop."""
        op_time = sum(shard.op_time_us_total for shard in self.shards)
        if op_time <= 0:
            return 0.0
        return sum(shard.router_us_total for shard in self.shards) / op_time

    def device_stats(self) -> DeviceStats:
        """Aggregated telemetry across every shard device."""
        return aggregate_device_stats(
            [
                shard.device_stats
                for shard in self.shards
                if shard.device_stats is not None
            ]
        )

    def tail(self, label: str) -> Tuple[float, float]:
        """Worst-shard (p99, p999) latency for one phase label."""
        p99 = p999 = 0.0
        for shard in self.shards:
            summary = shard.latency.get(label)
            if summary is None:
                continue
            p99 = max(p99, summary.p99)
            p999 = max(p999, summary.p999)
        return p99, p999

    def fingerprint(self) -> str:
        """Content hash of the shard results (byte-reproducibility probe).

        Serial, parallel, and cache-served runs of the same spec must
        produce the same fingerprint — the acceptance property the
        cluster tests pin.  Results are reduced through the cache's
        :func:`~repro.exec.cache.canonical` form rather than pickled
        directly: pickle memoizes shared objects, so otherwise a live
        in-process result and its pickle-round-tripped twin would hash
        apart despite being value-identical.
        """
        payload = json.dumps(
            canonical(self.shards), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def cluster_sweep(spec: ClusterSpec) -> SweepSpec:
    """The sweep spec fanning ``spec`` out one shard per worker."""
    points = tuple(
        SweepPoint(
            label=f"shard{shard}",
            fn=run_shard,
            kwargs={"spec": spec, "shard": shard},
            seed=spec.seed,
        )
        for shard in range(spec.shards)
    )
    return SweepSpec(
        name=f"cluster.{spec.shards}x{spec.replication}", points=points
    )


def run_cluster(
    spec: ClusterSpec, runner: Optional[SweepRunner] = None
) -> ClusterResult:
    """Execute every shard of ``spec`` and assemble the cluster result.

    ``runner=None`` runs shards inline (serial, uncached); a
    :class:`~repro.exec.runner.SweepRunner` adds process-pool fan-out and
    the on-disk result cache.  Results are identical either way.
    """
    plan: ClusterPlan = build_plan(spec)
    shards: List[ShardResult] = execute_spec(cluster_sweep(spec), runner)
    return ClusterResult(
        spec=spec,
        shards=shards,
        client_ops=plan.client_ops,
        routed_ops=plan.routed_ops,
        drain_ops=plan.drain_ops,
        rejected_inserts=plan.rejected_inserts,
        router_not_found=plan.router_not_found,
        final_directory=plan.final_directory,
    )
