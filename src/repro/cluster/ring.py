"""Consistent-hash ring with virtual nodes.

The router's placement function.  Each node contributes ``vnodes``
points on a 64-bit ring; a token (here: a partition name) is owned by
the first point at or clockwise-after its hash, and a replica set is the
first ``n`` *distinct* nodes along that walk.

Two properties the cluster leans on, both guaranteed by construction and
pinned by the hypothesis suite (``tests/test_cluster_ring.py``):

* **Determinism** — points are MD5 hashes of ``"node#vnode"`` strings,
  so the ring is a pure function of the member names.  Python's salted
  ``hash()`` never participates.
* **Minimal disruption** — removing a node deletes only that node's
  points.  Tokens whose walk never met those points keep their exact
  replica order; tokens that did meet them keep the surviving prefix of
  their replica set and extend it with the next distinct nodes.  Adding
  the node back re-inserts the identical points, restoring the exact
  prior assignment.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


def stable_hash(token: bytes) -> int:
    """64-bit position of ``token`` on the ring (process-independent)."""
    return int.from_bytes(hashlib.md5(token).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping tokens to member nodes."""

    def __init__(self, nodes: Sequence[str], vnodes: int = 16) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        if not nodes:
            raise ConfigurationError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError(f"duplicate ring nodes in {list(nodes)!r}")
        self.vnodes = vnodes
        #: Insertion-ordered member registry (points are derived from it).
        self._members: Dict[str, bool] = {node: True for node in nodes}
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._rebuild()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current members, in insertion order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add(self, node: str) -> None:
        """Add ``node``; its points are a pure function of its name."""
        if node in self._members:
            raise ConfigurationError(f"node {node!r} already on the ring")
        self._members[node] = True
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove ``node``, deleting only its own points."""
        if node not in self._members:
            raise ConfigurationError(f"node {node!r} not on the ring")
        if len(self._members) == 1:
            raise ConfigurationError("cannot remove the last ring node")
        del self._members[node]
        self._rebuild()

    def _rebuild(self) -> None:
        points: List[Tuple[int, str]] = []
        for node in self._members:
            for vnode in range(self.vnodes):
                token = f"{node}#{vnode}".encode("ascii")
                points.append((stable_hash(token), node))
        # Ties (astronomically unlikely) break on the node name so the
        # ring never depends on dict or construction order.
        points.sort()
        self._points = points
        self._hashes = [position for position, _ in points]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def primary(self, token: str) -> str:
        """The node owning ``token``."""
        return self.preference(token, 1)[0]

    def preference(self, token: str, n: int) -> List[str]:
        """First ``n`` distinct nodes clockwise from ``token``'s hash.

        The order is the replica preference list: index 0 is the
        primary.  ``n`` may not exceed the member count.
        """
        if n < 1:
            raise ConfigurationError(f"replica count must be >= 1, got {n}")
        if n > len(self._members):
            raise ConfigurationError(
                f"cannot pick {n} replicas from {len(self._members)} nodes"
            )
        start = bisect_right(self._hashes, stable_hash(token.encode("ascii")))
        picked: List[str] = []
        seen: Dict[str, bool] = {}
        total = len(self._points)
        for step in range(total):
            node = self._points[(start + step) % total][1]
            if node not in seen:
                seen[node] = True
                picked.append(node)
                if len(picked) == n:
                    break
        return picked

    def assignment(self, tokens: Sequence[str]) -> Dict[str, str]:
        """Primary owner of every token (test/analysis helper)."""
        return {token: self.primary(token) for token in tokens}
