"""Deterministic discrete-event simulation substrate.

Exports the engine (:class:`Environment`, :class:`Event`, :class:`Process`)
and the contention primitives (:class:`Resource`, :class:`TokenBucket`) used
by every timed component in the SSD models.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    ProcessGenerator,
    Timeout,
)
from repro.sim.resources import Request, Resource, TokenBucket

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "ProcessGenerator",
    "Request",
    "Resource",
    "Timeout",
    "TokenBucket",
]
