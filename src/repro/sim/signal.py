"""Broadcast signal: a re-armable condition variable for processes.

A :class:`Signal` lets any number of processes wait for "something
changed" notifications — the flusher waits for new dirty data, the GC
worker waits for low-space announcements.  Unlike an :class:`Event`, a
signal can be notified repeatedly; each notification wakes everyone who
was waiting at that moment.
"""

from __future__ import annotations

from typing import List

from repro.sim.engine import Environment, Event


class Signal:
    """Re-armable broadcast wakeup."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._waiters: List[Event] = []
        self._notify_count = 0

    @property
    def notify_count(self) -> int:
        """Number of notifications delivered (diagnostic)."""
        return self._notify_count

    @property
    def waiting(self) -> int:
        """Number of processes currently parked on the signal."""
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`notify_all`."""
        waiter = Event(self.env)
        self._waiters.append(waiter)
        return waiter

    def notify_all(self) -> None:
        """Wake every process currently waiting."""
        self._notify_count += 1
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(None)
