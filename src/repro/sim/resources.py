"""Shared-resource primitives for the simulation engine.

Two primitives cover every contention point in the SSD models:

* :class:`Resource` — a counted server with a FIFO wait queue.  Flash
  channels, dies, controller cores, and NVMe submission slots are all
  Resources with different capacities.
* :class:`TokenBucket` — a counted pool of indistinguishable tokens with
  blocking ``get``/non-blocking ``put``.  Device write-buffer slots and
  free-space reservations are token buckets; exhaustion is how write stalls
  (and therefore foreground-GC bandwidth collapse) emerge in the model.

Both hand out grants strictly in request order, preserving the engine's
determinism guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class Request(Event):
    """The event granted to a :class:`Resource` user; release via the resource."""

    __slots__ = ()


class Resource:
    """A server with ``capacity`` concurrent slots and a FIFO queue.

    Typical usage inside a process::

        request = resource.request()
        yield request
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(request)

    or, more compactly, ``yield from resource.serve(service_time)``.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_service = 0
        self._waiting: Deque[Request] = deque()
        # Utilization accounting: busy slot-time integrated over the run.
        self._busy_slot_time = 0.0
        self._last_change = 0.0

    @property
    def in_service(self) -> int:
        """Number of grants currently outstanding."""
        return self._in_service

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def busy_fraction(self) -> float:
        """Mean fraction of slots busy since construction."""
        elapsed = self.env.now
        if elapsed <= 0.0:
            return 0.0
        self._account()
        return self._busy_slot_time / (elapsed * self.capacity)

    def busy_slot_us(self) -> float:
        """Integrated busy slot-time; diff two readings for an interval."""
        self._account()
        return self._busy_slot_time

    def _account(self) -> None:
        now = self.env._now
        self._busy_slot_time += self._in_service * (now - self._last_change)
        self._last_change = now

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when the slot is granted."""
        grant = Request(self.env)
        if self._in_service < self.capacity and not self._waiting:
            # _account(), inlined: request/release bracket every flash op.
            now = self.env._now
            self._busy_slot_time += self._in_service * (now - self._last_change)
            self._last_change = now
            self._in_service += 1
            grant.succeed(self)
        else:
            self._waiting.append(grant)
        return grant

    def release(self, request: Request) -> None:
        """Return a previously granted slot, waking the next waiter if any."""
        if not request._triggered:
            raise SimulationError("cannot release a request that was never granted")
        now = self.env._now
        self._busy_slot_time += self._in_service * (now - self._last_change)
        self._last_change = now
        if self._waiting:
            successor = self._waiting.popleft()
            successor.succeed(self)
        else:
            self._in_service -= 1

    def serve(self, duration: float) -> Generator[Event, None, None]:
        """Acquire a slot, hold it for ``duration``, then release it.

        Designed for ``yield from`` inside a process generator.
        """
        grant = self.request()
        yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(grant)


class TokenBucket:
    """A pool of ``capacity`` tokens with blocking acquisition.

    ``get(n)`` returns an event that fires once ``n`` tokens are available
    and removes them; ``put(n)`` returns tokens immediately.  Waiters are
    served in strict FIFO order — a large request at the head of the queue
    blocks smaller requests behind it, which mirrors how an SSD write
    buffer admits requests in arrival order.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        initial: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"token capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._available = capacity if initial is None else initial
        if not 0 <= self._available <= capacity:
            raise SimulationError(
                f"initial tokens {self._available} outside [0, {capacity}]"
            )
        self._waiting: Deque[tuple] = deque()  # (event, amount)

    @property
    def available(self) -> int:
        """Tokens currently free for taking."""
        return self._available

    @property
    def queue_length(self) -> int:
        """Number of blocked ``get`` requests."""
        return len(self._waiting)

    def get(self, amount: int = 1) -> Event:
        """Take ``amount`` tokens; the event fires when they are granted."""
        if amount < 1:
            raise SimulationError(f"token amount must be >= 1, got {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"requested {amount} tokens but capacity is {self.capacity}"
            )
        grant = Event(self.env)
        if not self._waiting and self._available >= amount:
            self._available -= amount
            grant.succeed(amount)
        else:
            self._waiting.append((grant, amount))
        return grant

    def put(self, amount: int = 1) -> None:
        """Return ``amount`` tokens and serve any waiters now satisfiable."""
        if amount < 1:
            raise SimulationError(f"token amount must be >= 1, got {amount}")
        self._available += amount
        if self._available > self.capacity:
            raise SimulationError(
                f"token bucket overflow: {self._available} > {self.capacity}"
            )
        while self._waiting and self._available >= self._waiting[0][1]:
            grant, need = self._waiting.popleft()
            self._available -= need
            grant.succeed(need)
