"""A small deterministic discrete-event simulation engine.

The engine follows the familiar generator-coroutine style of SimPy: model
code is written as generator functions that ``yield`` events (timeouts,
resource requests, other processes), and the :class:`Environment` advances a
virtual clock from event to event.

Only the features the SSD models need are implemented, which keeps the
engine small enough to reason about and test exhaustively:

* :class:`Event` — one-shot triggerable with callbacks and a value.
* :class:`Timeout` — an event scheduled a fixed delay in the future.
* :class:`Process` — drives a generator; is itself an event that triggers
  when the generator returns, carrying the generator's return value.
* :class:`AnyOf` / :class:`AllOf` — composite events.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so repeated
runs of the same model produce identical traces.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return "done at %.0f" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 5'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Type alias for model coroutines driven by :class:`Process`.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it, records its value, and schedules its
    callbacks to run at the current simulation time.  Waiting processes are
    resumed through those callbacks.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_value", "_failed", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it fires.
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._failed = False
        # True once the environment has drained this event's callbacks; a
        # process yielding an already-processed event must resume via a
        # relay event rather than by appending a callback nobody will run.
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the environment has already run this event's callbacks."""
        return self._processed

    @property
    def failed(self) -> bool:
        """Whether the event fired through :meth:`fail`."""
        return self._failed

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception, if failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        self.env._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._failed = True
        self._value = exception
        self.env._enqueue_triggered(self)
        return self


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Runs a generator coroutine; triggers when the generator returns.

    The process resumes its generator every time the event the generator
    yielded fires.  Successful events send their value into the generator;
    failed events throw their exception into it, so model code can use
    ordinary ``try/except`` around ``yield``.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                "process() requires a generator; did you forget to call "
                "the generator function?"
            )
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the generator at the current time via an immediate event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        try:
            if event.failed:
                target = self._generator.throw(event.value)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # model raised: propagate to waiters
            if not self.callbacks:
                # Nobody is waiting (e.g. a background worker): surface the
                # failure loudly instead of swallowing it.
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        if target.processed:
            # The event fired in the past and its callbacks already ran;
            # resume through a fresh relay event so we still wake up.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target.failed:
                relay.fail(target.value)
            else:
                relay.succeed(target.value)
        else:
            target.callbacks.append(self._resume)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: Tuple[Event, ...] = tuple(events)
        for child in self.events:
            if child.env is not env:
                raise SimulationError(
                    "condition mixes events from different environments"
                )
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for child in self.events:
            if child.processed:
                # Callbacks already drained: deliver the outcome directly.
                self._child_fired(child)
            else:
                child.callbacks.append(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if event.failed:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(Condition):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if event.failed:
            self.fail(event.value)
            return
        self.succeed(event.value)


class Environment:
    """Holds the event queue and the simulation clock.

    The clock starts at 0.0 microseconds and only moves when :meth:`run`
    processes events.  All model components sharing an environment observe
    the same clock.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._processed_events = 0

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._processed_events

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process driving ``generator``; returns its event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals -------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def _enqueue_triggered(self, event: Event) -> None:
        """Schedule an already-triggered event's callbacks for 'now'."""
        if not isinstance(event, Timeout):
            self._schedule(event, 0.0)

    def _step(self) -> None:
        """Process exactly one event from the queue."""
        fire_at, _seq, event = heapq.heappop(self._queue)
        self._now = fire_at
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        self._processed_events += 1
        for callback in callbacks:
            callback(event)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue empties or the clock passes ``until``.

        ``until`` is an absolute simulation time.  When provided, the clock
        is advanced exactly to ``until`` even if the last processed event
        fired earlier, so bandwidth windows measured against ``env.now``
        have the expected width.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self._now}"
            )
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self._step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; return its value (raise if it failed).

        ``limit`` bounds the simulated time as a safety net against model
        deadlocks; exceeding it raises :class:`SimulationError`.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(
                    "event queue drained before the awaited event fired "
                    "(model deadlock?)"
                )
            if self._now > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            self._step()
        if event.failed:
            raise event.value
        return event.value
